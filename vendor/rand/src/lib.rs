//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the `rand 0.8`
//! surface it actually uses: `StdRng` (xoshiro256++ seeded via
//! SplitMix64), `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` and `seq::SliceRandom::shuffle`.
//!
//! The streams differ from upstream `rand`, but every consumer in this
//! workspace treats the generator as an arbitrary deterministic source,
//! so only reproducibility (same seed, same sequence) matters.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Seed type (kept for API compatibility).
    type Seed;

    /// Creates a generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable within bounds (backs [`Rng::gen_range`]).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)` (`[low, high]` when
    /// `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                low + u * (high - low)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
///
/// Blanket impls over [`SampleUniform`] (like upstream rand) so type
/// inference can flow from the expected result type into the range's
/// literals.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// High-level sampling helpers (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the only `SliceRandom` method the workspace uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-0.15f32..0.15);
            assert!((-0.15..0.15).contains(&v));
            let i = rng.gen_range(0..10usize);
            assert!(i < 10);
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
