//! Offline stand-in for `serde_derive`.
//!
//! Because the build environment cannot fetch syn/quote, these derives
//! parse `proc_macro::TokenStream` by hand and emit code as strings.
//! They target the vendored Value-based `serde` stub, covering exactly
//! the shapes this workspace uses:
//!
//! - named-field structs
//! - enums with unit, named-field, and tuple variants
//! - container attributes `tag = "..."` (internally tagged enums) and
//!   `rename_all = "snake_case" | "lowercase" | "UPPERCASE" | "kebab-case"`
//! - field attributes `default` and `rename = "..."`
//! - `Option<T>` fields are optional in input (missing => `None`),
//!   matching serde's behaviour; all other missing fields are errors
//!   unless marked `#[serde(default)]`
//!
//! Generics, tuple structs, and untagged enums are rejected with a
//! compile-time panic rather than silently miscompiling.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct Attrs {
    tag: Option<String>,
    rename_all: Option<String>,
    rename: Option<String>,
    default: bool,
}

struct Field {
    name: String,
    ty: String,
    rename: Option<String>,
    default: bool,
}

impl Field {
    fn is_option(&self) -> bool {
        self.ty.trim_start().starts_with("Option")
    }
}

enum VariantData {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    data: VariantData,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    body: Body,
    tag: Option<String>,
    rename_all: Option<String>,
}

/// Derives `serde::Serialize` (vendored Value-based flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_serialize(&container)
        .parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (vendored Value-based flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_deserialize(&container)
        .parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = Attrs::default();
    let mut i = 0;
    let mut kind: Option<String> = None;

    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_attr_group(g, &mut attrs);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    i += 1;
                    break;
                }
                i += 1;
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
            }
            _ => i += 1,
        }
    }

    let kind = kind.expect("serde_derive stub: expected `struct` or `enum`");
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }

    let body_group = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.clone()),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive stub: tuple struct `{name}` is not supported")
            }
            _ => None,
        })
        .unwrap_or_else(|| panic!("serde_derive stub: `{name}` has no braced body"));

    let body = if kind == "struct" {
        Body::Struct(parse_named_fields(&body_group))
    } else {
        Body::Enum(parse_variants(&body_group))
    };

    Container {
        name,
        body,
        tag: attrs.tag,
        rename_all: attrs.rename_all,
    }
}

/// Parses one `#[...]` attribute group, folding any `serde(...)` items
/// into `attrs`. Non-serde attributes (doc comments etc.) are ignored.
fn parse_attr_group(group: &Group, attrs: &mut Attrs) {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.clone(),
        _ => return,
    };
    let items: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut j = 0;
    while j < items.len() {
        if let TokenTree::Ident(id) = &items[j] {
            let key = id.to_string();
            let mut value = None;
            if let Some(TokenTree::Punct(p)) = items.get(j + 1) {
                if p.as_char() == '=' {
                    if let Some(tok) = items.get(j + 2) {
                        value = Some(strip_quotes(&tok.to_string()));
                        j += 2;
                    }
                }
            }
            match key.as_str() {
                "tag" => attrs.tag = value,
                "rename_all" => attrs.rename_all = value,
                "rename" => attrs.rename = value,
                "default" => attrs.default = true,
                // deny_unknown_fields and friends: accepted, no-op.
                _ => {}
            }
        }
        j += 1;
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_named_fields(group: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;

    while i < toks.len() {
        let mut fattrs = Attrs::default();
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                parse_attr_group(g, &mut fattrs);
            }
            i += 2;
        }
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        };
        i += 1; // field name
        i += 1; // ':'

        let mut depth = 0i32;
        let mut ty = String::new();
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && depth == 0 {
                        i += 1;
                        break;
                    }
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    }
                    ty.push(c);
                }
                other => {
                    ty.push_str(&other.to_string());
                    ty.push(' ');
                }
            }
            i += 1;
        }

        fields.push(Field {
            name,
            ty,
            rename: fattrs.rename,
            default: fattrs.default,
        });
    }
    fields
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;

    while i < toks.len() {
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2; // '#' + bracket group (variant-level serde attrs unused)
        }
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, got {other:?}"),
        };
        i += 1;

        let mut data = VariantData::Unit;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    data = VariantData::Named(parse_named_fields(g));
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    data = VariantData::Tuple(tuple_arity(g));
                    i += 1;
                }
                _ => {}
            }
        }

        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }

        variants.push(Variant { name, data });
    }
    variants
}

fn tuple_arity(group: &Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing = false;
    for t in &toks {
        trailing = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing = true;
                }
                _ => {}
            }
        }
    }
    if trailing {
        commas
    } else {
        commas + 1
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn rename(name: &str, explicit: Option<&str>, rule: Option<&str>) -> String {
    if let Some(r) = explicit {
        return r.to_string();
    }
    match rule {
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        Some("snake_case") => case_convert(name, '_'),
        Some("kebab-case") => case_convert(name, '-'),
        Some(other) => panic!("serde_derive stub: unsupported rename_all rule `{other}`"),
        None => name.to_string(),
    }
}

fn case_convert(name: &str, sep: char) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push(sep);
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.body {
        Body::Struct(fields) => {
            let mut out = String::from("let mut map = ::serde::Map::new();\n");
            for f in fields {
                let key = rename(&f.name, f.rename.as_deref(), c.rename_all.as_deref());
                out.push_str(&format!(
                    "map.insert({key:?}.to_string(), ::serde::Serialize::to_value(&self.{}));\n",
                    f.name
                ));
            }
            out.push_str("::serde::Value::Object(map)");
            out
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vkey = rename(&v.name, None, c.rename_all.as_deref());
                match &v.data {
                    VariantData::Unit => {
                        if let Some(tag) = &c.tag {
                            arms.push_str(&format!(
                                "{name}::{vn} => {{ let mut map = ::serde::Map::new(); \
                                 map.insert({tag:?}.to_string(), \
                                 ::serde::Value::String({vkey:?}.to_string())); \
                                 ::serde::Value::Object(map) }}\n",
                                vn = v.name
                            ));
                        } else {
                            arms.push_str(&format!(
                                "{name}::{vn} => ::serde::Value::String({vkey:?}.to_string()),\n",
                                vn = v.name
                            ));
                        }
                    }
                    VariantData::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        if let Some(tag) = &c.tag {
                            inner.push_str(&format!(
                                "inner.insert({tag:?}.to_string(), \
                                 ::serde::Value::String({vkey:?}.to_string()));\n"
                            ));
                        }
                        for f in fields {
                            let key = rename(&f.name, f.rename.as_deref(), c.rename_all.as_deref());
                            inner.push_str(&format!(
                                "inner.insert({key:?}.to_string(), \
                                 ::serde::Serialize::to_value({fname}));\n",
                                fname = f.name
                            ));
                        }
                        let wrap = if c.tag.is_some() {
                            "::serde::Value::Object(inner)".to_string()
                        } else {
                            format!(
                                "{{ let mut map = ::serde::Map::new(); \
                                 map.insert({vkey:?}.to_string(), ::serde::Value::Object(inner)); \
                                 ::serde::Value::Object(map) }}"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{ {inner} {wrap} }}\n",
                            vn = v.name,
                            pat = binds.join(", ")
                        ));
                    }
                    VariantData::Tuple(n) => {
                        if c.tag.is_some() {
                            panic!(
                                "serde_derive stub: tuple variant `{name}::{}` \
                                 cannot be internally tagged",
                                v.name
                            );
                        }
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Array(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({pat}) => {{ let mut map = ::serde::Map::new(); \
                             map.insert({vkey:?}.to_string(), {payload}); \
                             ::serde::Value::Object(map) }}\n",
                            vn = v.name,
                            pat = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

/// Expression that reads one named field out of the object expression
/// `obj_expr` (a `&serde::Map`).
fn field_read_expr(c: &Container, f: &Field, obj_expr: &str) -> String {
    let key = rename(&f.name, f.rename.as_deref(), c.rename_all.as_deref());
    let missing = if f.default {
        "::core::default::Default::default()".to_string()
    } else if f.is_option() {
        "::core::option::Option::None".to_string()
    } else {
        format!(
            "return ::core::result::Result::Err(::serde::Error::custom(\
             \"{name}: missing field `{key}`\"))",
            name = c.name
        )
    };
    format!(
        "match {obj_expr}.get({key:?}) {{ \
         ::core::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?, \
         ::core::option::Option::None => {missing}, }}"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.body {
        Body::Struct(fields) => {
            let mut out = format!(
                "let obj = value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"{name}: expected object\"))?;\n"
            );
            out.push_str(&format!("::core::result::Result::Ok({name} {{\n"));
            for f in fields {
                out.push_str(&format!(
                    "{fname}: {expr},\n",
                    fname = f.name,
                    expr = field_read_expr(c, f, "obj")
                ));
            }
            out.push_str("})");
            out
        }
        Body::Enum(variants) => {
            if let Some(tag) = &c.tag {
                // Internally tagged: variant fields live beside the tag.
                let mut arms = String::new();
                for v in variants {
                    let vkey = rename(&v.name, None, c.rename_all.as_deref());
                    match &v.data {
                        VariantData::Unit => {
                            arms.push_str(&format!(
                                "{vkey:?} => ::core::result::Result::Ok({name}::{vn}),\n",
                                vn = v.name
                            ));
                        }
                        VariantData::Named(fields) => {
                            let mut init = String::new();
                            for f in fields {
                                init.push_str(&format!(
                                    "{fname}: {expr},\n",
                                    fname = f.name,
                                    expr = field_read_expr(c, f, "obj")
                                ));
                            }
                            arms.push_str(&format!(
                                "{vkey:?} => ::core::result::Result::Ok({name}::{vn} {{\n\
                                 {init}}}),\n",
                                vn = v.name
                            ));
                        }
                        VariantData::Tuple(_) => panic!(
                            "serde_derive stub: tuple variant `{name}::{}` \
                             cannot be internally tagged",
                            v.name
                        ),
                    }
                }
                format!(
                    "let obj = value.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}: expected object\"))?;\n\
                     let tag = obj.get({tag:?}).and_then(|t| t.as_str()).ok_or_else(|| \
                     ::serde::Error::custom(\"{name}: missing tag `{tag}`\"))?;\n\
                     match tag {{\n{arms}\
                     other => ::core::result::Result::Err(::serde::Error::custom(\
                     format!(\"{name}: unknown variant `{{other}}`\"))),\n}}"
                )
            } else {
                // Externally tagged: "Variant" or {"Variant": payload}.
                let mut out = String::new();
                let unit_arms: String = variants
                    .iter()
                    .filter(|v| matches!(v.data, VariantData::Unit))
                    .map(|v| {
                        let vkey = rename(&v.name, None, c.rename_all.as_deref());
                        format!(
                            "{vkey:?} => ::core::result::Result::Ok({name}::{vn}),\n",
                            vn = v.name
                        )
                    })
                    .collect();
                if !unit_arms.is_empty() {
                    out.push_str(&format!(
                        "if let ::core::option::Option::Some(s) = value.as_str() {{\n\
                         return match s {{\n{unit_arms}\
                         other => ::core::result::Result::Err(::serde::Error::custom(\
                         format!(\"{name}: unknown variant `{{other}}`\"))),\n}};\n}}\n"
                    ));
                }
                let payload_variants: Vec<&Variant> = variants
                    .iter()
                    .filter(|v| !matches!(v.data, VariantData::Unit))
                    .collect();
                if payload_variants.is_empty() {
                    out.push_str(&format!(
                        "::core::result::Result::Err(::serde::Error::custom(\
                         \"{name}: expected variant name string\"))"
                    ));
                } else {
                    let mut arms = String::new();
                    for v in payload_variants {
                        let vkey = rename(&v.name, None, c.rename_all.as_deref());
                        match &v.data {
                            VariantData::Unit => unreachable!(),
                            VariantData::Named(fields) => {
                                let mut init = String::new();
                                for f in fields {
                                    init.push_str(&format!(
                                        "{fname}: {expr},\n",
                                        fname = f.name,
                                        expr = field_read_expr(c, f, "vobj")
                                    ));
                                }
                                arms.push_str(&format!(
                                    "{vkey:?} => {{ let vobj = payload.as_object()\
                                     .ok_or_else(|| ::serde::Error::custom(\
                                     \"{name}::{vn}: expected object payload\"))?; \
                                     ::core::result::Result::Ok({name}::{vn} {{\n{init}}}) }}\n",
                                    vn = v.name
                                ));
                            }
                            VariantData::Tuple(n) => {
                                if *n == 1 {
                                    arms.push_str(&format!(
                                        "{vkey:?} => ::core::result::Result::Ok({name}::{vn}(\
                                         ::serde::Deserialize::from_value(payload)?)),\n",
                                        vn = v.name
                                    ));
                                } else {
                                    let elems: Vec<String> = (0..*n)
                                        .map(|k| {
                                            format!("::serde::Deserialize::from_value(&arr[{k}])?")
                                        })
                                        .collect();
                                    arms.push_str(&format!(
                                        "{vkey:?} => {{ let arr = payload.as_array()\
                                         .ok_or_else(|| ::serde::Error::custom(\
                                         \"{name}::{vn}: expected array payload\"))?; \
                                         if arr.len() != {n} {{ \
                                         return ::core::result::Result::Err(\
                                         ::serde::Error::custom(\
                                         \"{name}::{vn}: wrong tuple arity\")); }} \
                                         ::core::result::Result::Ok({name}::{vn}({elems})) }}\n",
                                        vn = v.name,
                                        elems = elems.join(", ")
                                    ));
                                }
                            }
                        }
                    }
                    out.push_str(&format!(
                        "let obj = value.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"{name}: expected object or string\"))?;\n\
                         let (key, payload) = obj.iter().next().ok_or_else(|| \
                         ::serde::Error::custom(\"{name}: empty variant object\"))?;\n\
                         match key.as_str() {{\n{arms}\
                         other => ::core::result::Result::Err(::serde::Error::custom(\
                         format!(\"{name}: unknown variant `{{other}}`\"))),\n}}"
                    ));
                }
                out
            }
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}
