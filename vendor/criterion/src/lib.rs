//! Offline stand-in for the `criterion` crate.
//!
//! Implements the criterion 0.5 API subset this workspace's benches
//! use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `sample_size`, `criterion_group!`/`criterion_main!`)
//! as a simple wall-clock harness: each benchmark runs a short warmup
//! plus `sample_size` timed iterations and prints mean/min per-iteration
//! time. No statistics, plots, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// The top-level harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one("", &id.into(), self.sample_size, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, samples: usize, mut f: F) {
    // Warmup pass: one untimed batch so lazy setup is excluded.
    let mut warm = Bencher {
        iters: 1,
        samples: Vec::new(),
    };
    f(&mut warm);

    let mut bencher = Bencher {
        iters: samples.max(1) as u64,
        samples: Vec::with_capacity(samples),
    };
    f(&mut bencher);

    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "  {label}: mean {mean:?}, min {min:?} over {} iterations",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &21u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            });
        });
        group.finish();
        assert!(runs >= 3, "bencher closure never ran");
    }
}
