//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (lock acquisition recovers from poisoning instead of returning a
//! `Result`). Only the surface this workspace uses is provided.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard, TryLockError};

/// Non-poisoning mutex backed by `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock backed by `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(*m.lock(), vec![1, 2, 3, 4]);
    }
}
