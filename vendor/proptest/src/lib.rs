//! Offline stand-in for the `proptest` crate.
//!
//! Implements deterministic strategy *sampling* (seeded per test from
//! the test's module path, so runs are reproducible) without proptest's
//! shrinking machinery. Covers the surface this workspace uses:
//! `proptest!` with `#![proptest_config(...)]`, range / tuple / `Just`
//! / `prop_oneof!` / `collection::vec` / `bool::ANY` strategies, and
//! the `prop_assert*` / `prop_assume!` macros.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a
    /// strategy simply samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!` so heterogeneous
    /// strategy types unify).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Creates a union; panics when empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty, $bits:expr, $denom:expr);*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = (rng.next_u64() >> (64 - $bits)) as $t / $denom;
                    self.start + u * (self.end - self.start)
                }
            }
        )*};
    }

    float_strategy!(f32, 24, (1u64 << 24) as f32; f64, 53, (1u64 << 53) as f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a `Vec` strategy with the given element strategy and
    /// size (exact `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over both boolean values.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Failure or rejection of a single generated case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case's inputs were rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Creates a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// True for rejections (skipped, not failed).
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Deterministic per-test RNG (xorshift-style, seeded from the
    /// test's module path so every run sees the same cases).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a, then force non-zero.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: if h == 0 { 0x9E37_79B9_7F4A_7C15 } else { h },
            }
        }

        /// Returns the next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `config.cases` sampled
/// cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal: expands each test fn inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(10).max(100);
            while executed < config.cases && attempts < max_attempts {
                attempts += 1;
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::sample(&($strat), &mut rng);
                        )*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => executed += 1,
                    ::core::result::Result::Err(e) if e.is_reject() => {}
                    ::core::result::Result::Err(e) =>

                        panic!("proptest {} failed (case {}): {}", stringify!($name), executed, e),
                }
            }
            assert!(
                executed > 0,
                "proptest {}: every generated case was rejected",
                stringify!($name)
            );
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Rejects (skips) the current case when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples(
            x in 0u64..100,
            (a, b) in (0u8..32, 0u8..32),
            v in crate::collection::vec(1usize..5, 2..6),
            flag in crate::bool::ANY,
            pick in prop_oneof![Just(8u64), Just(16), Just(64)],
        ) {
            prop_assert!(x < 100);
            prop_assert!(a < 32 && b < 32);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (1..5).contains(&e)));
            let _ = flag;
            prop_assert!(pick == 8 || pick == 16 || pick == 64);
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_between_runs() {
        let mut a = TestRng::from_name("fixed");
        let mut b = TestRng::from_name("fixed");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
