//! Offline stand-in for the `serde_json` crate.
//!
//! Text parsing/printing over the vendored `serde` stub's [`Value`]
//! model. Covers the API surface this workspace uses: `from_str`,
//! `to_string`, `to_string_pretty`, `to_value`, `from_value`, the
//! [`json!`] macro, and `Value`/`Map`/`Number` re-exports.

pub use serde::{Map, Number, Value};

use std::fmt;

/// JSON error (parse or conversion).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Deserializes a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value to a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Converts a [`Value`] tree into a concrete type.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

/// Builds a [`Value`] from JSON-ish literal syntax.
///
/// Supports `null`, object literals with literal keys, array literals,
/// and arbitrary expressions convertible via `Into<Value>` — the subset
/// the workspace uses (no nested braces inside a single invocation;
/// nest `json!` calls instead).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                byte as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn keyword(&mut self, word: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pair handling for completeness.
                        if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            out.push(
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = json!({
            "name": "esp4ml",
            "count": 42u64,
            "ratio": 0.5f64,
            "flags": json!([1u64, 2u64, 3u64]),
            "nested": json!({"deep": true}),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back_pretty);
    }

    #[test]
    fn large_u64_survives() {
        let v = json!({"big": u64::MAX});
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back["big"].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("a\"b\\c\nd\te\u{1F600}".to_string());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn missing_index_is_null() {
        let v = json!({"a": 1u64});
        assert!(v["nope"].is_null());
        assert_eq!(v["a"].as_u64(), Some(1));
    }
}
