//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework with the same *spelling*
//! as serde (`Serialize` / `Deserialize` traits plus derive macros) but
//! a much simpler design: instead of serde's visitor-based data model,
//! everything funnels through an owned JSON-like [`Value`] tree.
//!
//! `Serialize` converts a type to a [`Value`]; `Deserialize` converts a
//! [`Value`] reference back. The companion `serde_json` stub handles
//! text parsing/printing of [`Value`]. The derive macros (hand-written
//! in `serde_derive`, no syn/quote) support named structs and enums
//! with unit / named-field / tuple variants, plus the container
//! attributes this workspace uses: `tag = "..."`,
//! `rename_all = "snake_case" | "lowercase"`, and field-level
//! `default` / `rename = "..."`.

mod value;

pub use value::{Map, Number, Value};

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts a [`Value`] back to `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {value:?}")))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), value)))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), value)))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom(format!("expected f32, got {value:?}")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, got {value:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {value:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(std::path::PathBuf::from)
            .ok_or_else(|| Error::custom(format!("expected path string, got {value:?}")))
    }
}

impl Serialize for std::path::Path {
    fn to_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {value:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Vec::from_value(value)?;
        let len = vec.len();
        vec.try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {value:?}")))?;
                let expected = [$($idx,)+].len();
                if arr.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, got {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = Map::new();
        for k in keys {
            map.insert(k.clone(), self[k].to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {value:?}")))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.clone(), v.to_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {value:?}")))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

// Integer-keyed maps serialize like real serde_json: keys become their
// decimal string form, in the map's (numeric) iteration order.
macro_rules! impl_int_key_btreemap {
    ($($k:ty),*) => {$(
        impl<V: Serialize> Serialize for std::collections::BTreeMap<$k, V> {
            fn to_value(&self) -> Value {
                let mut map = Map::new();
                for (k, v) in self {
                    map.insert(k.to_string(), v.to_value());
                }
                Value::Object(map)
            }
        }

        impl<V: Deserialize> Deserialize for std::collections::BTreeMap<$k, V> {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let obj = value
                    .as_object()
                    .ok_or_else(|| Error::custom(format!("expected object, got {value:?}")))?;
                obj.iter()
                    .map(|(k, v)| {
                        let key: $k = k
                            .parse()
                            .map_err(|e| Error::custom(format!("bad integer key {k:?}: {e}")))?;
                        Ok((key, V::from_value(v)?))
                    })
                    .collect()
            }
        }
    )*};
}

impl_int_key_btreemap!(u32, u64, usize);
