//! The JSON-like data model shared by the vendored `serde` and
//! `serde_json` stubs.

use std::fmt;
use std::ops::Index;

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float, see [`Number`]).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map),
}

/// A JSON number. Integers are kept exact (`u64`/`i64`) so that large
/// counters survive a round-trip; floats use `f64`.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Creates a float number.
    pub fn from_f64(f: f64) -> Self {
        Number::Float(f)
    }

    /// Returns the value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Returns the value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// Returns the value as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }

    /// True when the number is an integer representable as `u64`.
    pub fn is_u64(&self) -> bool {
        matches!(self, Number::PosInt(_))
    }

    /// True when the number is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            // Mixed integer/float: compare numerically, matching
            // serde_json's arbitrary-precision-off behaviour closely
            // enough for round-trips.
            (a, b) => a.as_f64() == b.as_f64() && a.as_f64().is_some(),
        }
    }
}

impl From<u64> for Number {
    fn from(n: u64) -> Self {
        Number::PosInt(n)
    }
}

impl From<i64> for Number {
    fn from(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        // Match serde_json: whole floats print as "1.0".
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no NaN/inf; serde_json prints null.
                    f.write_str("null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key-value pair, replacing any existing entry in place.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Looks up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::vec::IntoIter<(&'a String, &'a Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries
            .iter()
            .map(|(k, v)| (k, v))
            .collect::<Vec<_>>()
            .into_iter()
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Returns the boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Returns the number as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Returns the number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Returns the string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object payload, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup that returns `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Mutable object field lookup that returns `None` for non-objects.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(m) => m.get_mut(key),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Mirrors serde_json: missing keys (or non-objects) index to `Null`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::Float(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Number(Number::Float(f as f64))
    }
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(Number::PosInt(n as u64))
            }
        }
    )*};
}

value_from_uint!(u8, u16, u32, u64, usize);

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(Number::from(n as i64))
            }
        }
    )*};
}

value_from_int!(i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
