//! Cycle-exactness equivalence suite: the event-driven fast-forward
//! engine must be indistinguishable from the naive cycle-by-cycle engine
//! on every workload of the evaluation — same metrics, same cycle counts,
//! same outputs. The naive engine is the oracle; any divergence is a bug
//! in a `progress`/`advance` implementation, never a tolerance issue.

use esp4ml::apps::TrainedModels;
use esp4ml::experiments::{AppRun, Fig7, Fig8, GridPoint, Table1};
use esp4ml::soc::SocEngine;
use esp4ml::TraceSession;
use esp4ml_runtime::ExecMode;
use proptest::prelude::*;

fn assert_engines_agree(point: &GridPoint, models: &TrainedModels, frames: u64) {
    let naive = point
        .run(models, frames, SocEngine::Naive)
        .unwrap_or_else(|e| panic!("{} naive failed: {e}", point.label()));
    let event = point
        .run(models, frames, SocEngine::EventDriven)
        .unwrap_or_else(|e| panic!("{} event-driven failed: {e}", point.label()));
    assert_eq!(
        naive.metrics,
        event.metrics,
        "{} @ {frames} frames: metrics diverged between engines",
        point.label()
    );
    assert_eq!(
        naive.predictions,
        event.predictions,
        "{} @ {frames} frames: outputs diverged between engines",
        point.label()
    );
}

/// Every Fig. 7 grid point — all five accelerator configurations of all
/// three application clusters, in all three execution modes. The Table I
/// and Fig. 8 grids are subsets of this one (best configs × p2p, best
/// configs × {pipe, p2p}), so this single sweep covers every workload of
/// the evaluation.
#[test]
fn engines_agree_on_every_fig7_grid_point() {
    let models = TrainedModels::untrained();
    let fig7 = Fig7::grid();
    for point in &fig7 {
        assert_engines_agree(point, &models, 2);
    }
    // Sanity: the claimed subset relationships actually hold.
    for point in Table1::grid().iter().chain(Fig8::grid().iter()) {
        assert!(
            fig7.contains(point),
            "{} not covered by the fig7 sweep",
            point.label()
        );
    }
}

/// Runs `point` with the online profiler attached and returns the
/// serialized profile report list.
fn profile_json(
    point: &GridPoint,
    models: &TrainedModels,
    frames: u64,
    engine: SocEngine,
) -> String {
    let mut session = TraceSession::profiled(None);
    AppRun::execute_traced_on(&point.app, models, frames, point.mode, engine, &mut session)
        .unwrap_or_else(|e| panic!("{} profiled run failed: {e}", point.label()));
    serde_json::to_string(session.profiles()).expect("profile serialization")
}

/// The profiler consumes the trace stream online, so it is only
/// engine-safe if both engines emit identical event streams. Prove it
/// end-to-end: on every Fig. 7 grid point the full profile report —
/// frame-latency histograms, per-stage time-in-state breakdowns,
/// bottleneck analysis, and the per-link NoC heatmap — must serialize
/// byte-identically under both engines.
#[test]
fn engines_agree_on_profile_reports() {
    let models = TrainedModels::untrained();
    for point in &Fig7::grid() {
        let naive = profile_json(point, &models, 2, SocEngine::Naive);
        let event = profile_json(point, &models, 2, SocEngine::EventDriven);
        assert!(
            !naive.is_empty() && naive != "[]",
            "{}: profiled run produced no report",
            point.label()
        );
        assert_eq!(
            naive,
            event,
            "{}: profile reports diverged between engines",
            point.label()
        );
    }
}

/// Runs `point` with the span collector (and its agreement profiler)
/// attached and returns the serialized span report list.
fn span_json(point: &GridPoint, models: &TrainedModels, frames: u64, engine: SocEngine) -> String {
    let mut session = TraceSession::spanned(None, true);
    AppRun::execute_traced_on(&point.app, models, frames, point.mode, engine, &mut session)
        .unwrap_or_else(|e| panic!("{} spanned run failed: {e}", point.label()));
    serde_json::to_string(session.span_reports()).expect("span serialization")
}

/// The span assembler is event-derived exactly like the profiler, so
/// its reports — per-frame span trees, critical links, and the
/// aggregated critical path — must also serialize byte-identically
/// under both engines on every Fig. 7 grid point.
#[test]
fn engines_agree_on_span_reports() {
    let models = TrainedModels::untrained();
    for point in &Fig7::grid() {
        let naive = span_json(point, &models, 2, SocEngine::Naive);
        let event = span_json(point, &models, 2, SocEngine::EventDriven);
        assert!(
            !naive.is_empty() && naive != "[]",
            "{}: spanned run produced no report",
            point.label()
        );
        assert_eq!(
            naive,
            event,
            "{}: span reports diverged between engines",
            point.label()
        );
    }
}

/// On every Fig. 7 grid point the aggregated critical path must name
/// the same limiting stage as the independently-fed profiler's
/// bottleneck report — the agreement `espspan` checks at runtime.
#[test]
fn span_critical_path_matches_profiler_on_every_fig7_point() {
    let models = TrainedModels::untrained();
    for point in &Fig7::grid() {
        let mut session = TraceSession::spanned(None, true);
        AppRun::execute_traced_on(
            &point.app,
            &models,
            2,
            point.mode,
            SocEngine::EventDriven,
            &mut session,
        )
        .unwrap_or_else(|e| panic!("{} spanned run failed: {e}", point.label()));
        let report = session.span_reports().first().expect("span report");
        let bottleneck = session
            .profiles()
            .first()
            .and_then(|p| p.run.bottleneck.as_ref())
            .unwrap_or_else(|| panic!("{}: no bottleneck report", point.label()));
        let cp = report
            .critical_path
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no critical path", point.label()));
        assert_eq!(
            cp.limiting_stage,
            bottleneck.limiting_stage,
            "{}: critical path disagrees with the profiler",
            point.label()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random (configuration, mode, frame count) points: the engines must
    /// agree off the figure grids too, including frame counts that don't
    /// divide evenly across multi-instance stages.
    #[test]
    fn engines_agree_on_random_points(
        config in 0usize..5,
        mode_idx in 0usize..3,
        frames in 1u64..6,
    ) {
        let models = TrainedModels::untrained();
        let app = esp4ml::CaseApp::all_fig7_configs()[config];
        let mode = ExecMode::ALL[mode_idx];
        assert_engines_agree(&GridPoint { app, mode }, &models, frames);
    }

    /// The attribution invariant — every cycle of a frame's end-to-end
    /// latency lands in exactly one span — must hold on arbitrary
    /// (configuration, mode, frame count) points of the Fig. 7 space,
    /// under both engines.
    #[test]
    fn span_attribution_is_exact_on_fig7_points(
        config in 0usize..5,
        mode_idx in 0usize..3,
        frames in 1u64..6,
    ) {
        let models = TrainedModels::untrained();
        let app = esp4ml::CaseApp::all_fig7_configs()[config];
        let mode = ExecMode::ALL[mode_idx];
        let point = GridPoint { app, mode };
        for engine in [SocEngine::Naive, SocEngine::EventDriven] {
            let mut session = TraceSession::spanned(None, false);
            AppRun::execute_traced_on(&app, &models, frames, mode, engine, &mut session)
                .unwrap_or_else(|e| panic!("{} spanned run failed: {e}", point.label()));
            let report = session.span_reports().first().expect("span report");
            prop_assert_eq!(
                report.frames.len() as u64,
                frames,
                "{}: expected one span tree per frame",
                point.label()
            );
            if let Err(e) = report.check_attribution() {
                panic!("{} ({engine:?}): {e}", point.label());
            }
        }
    }
}
