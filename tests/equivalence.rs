//! Cycle-exactness equivalence suite: the event-driven fast-forward
//! engine must be indistinguishable from the naive cycle-by-cycle engine
//! on every workload of the evaluation — same metrics, same cycle counts,
//! same outputs. The naive engine is the oracle; any divergence is a bug
//! in a `progress`/`advance` implementation, never a tolerance issue.

use esp4ml::apps::TrainedModels;
use esp4ml::experiments::{Fig7, Fig8, GridPoint, Table1};
use esp4ml::soc::SocEngine;
use esp4ml_runtime::ExecMode;
use proptest::prelude::*;

fn assert_engines_agree(point: &GridPoint, models: &TrainedModels, frames: u64) {
    let naive = point
        .run(models, frames, SocEngine::Naive)
        .unwrap_or_else(|e| panic!("{} naive failed: {e}", point.label()));
    let event = point
        .run(models, frames, SocEngine::EventDriven)
        .unwrap_or_else(|e| panic!("{} event-driven failed: {e}", point.label()));
    assert_eq!(
        naive.metrics,
        event.metrics,
        "{} @ {frames} frames: metrics diverged between engines",
        point.label()
    );
    assert_eq!(
        naive.predictions,
        event.predictions,
        "{} @ {frames} frames: outputs diverged between engines",
        point.label()
    );
}

/// Every Fig. 7 grid point — all five accelerator configurations of all
/// three application clusters, in all three execution modes. The Table I
/// and Fig. 8 grids are subsets of this one (best configs × p2p, best
/// configs × {pipe, p2p}), so this single sweep covers every workload of
/// the evaluation.
#[test]
fn engines_agree_on_every_fig7_grid_point() {
    let models = TrainedModels::untrained();
    let fig7 = Fig7::grid();
    for point in &fig7 {
        assert_engines_agree(point, &models, 2);
    }
    // Sanity: the claimed subset relationships actually hold.
    for point in Table1::grid().iter().chain(Fig8::grid().iter()) {
        assert!(
            fig7.contains(point),
            "{} not covered by the fig7 sweep",
            point.label()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random (configuration, mode, frame count) points: the engines must
    /// agree off the figure grids too, including frame counts that don't
    /// divide evenly across multi-instance stages.
    #[test]
    fn engines_agree_on_random_points(
        config in 0usize..5,
        mode_idx in 0usize..3,
        frames in 1u64..6,
    ) {
        let models = TrainedModels::untrained();
        let app = esp4ml::CaseApp::all_fig7_configs()[config];
        let mode = ExecMode::ALL[mode_idx];
        assert_engines_agree(&GridPoint { app, mode }, &models, frames);
    }
}
