//! End-to-end observability tests: the tracer threaded through the whole
//! stack, the Perfetto export of a real run, and the counter registry
//! against the legacy aggregate stats.

use esp4ml::apps::{CaseApp, TrainedModels};
use esp4ml::experiments::AppRun;
use esp4ml::noc::Coord;
use esp4ml::runtime::{Dataflow, EspRuntime, ExecMode, RunSpec};
use esp4ml::soc::{ScaleKernel, SocBuilder};
use esp4ml::trace::perfetto::{self, tile_tid};
use esp4ml::trace::{RingBufferSink, SpanCollector, TileCoord, TraceEvent, Tracer};
use esp4ml::TraceSession;
use proptest::prelude::*;

/// A full case-study run exports a valid Chrome trace: parseable JSON,
/// monotonically non-decreasing `ts`, one named track per accelerator
/// tile, and at least one event per simulated frame.
#[test]
fn perfetto_export_round_trips_from_e2e_run() {
    let models = TrainedModels::untrained();
    let app = CaseApp::DenoiserClassifier;
    let frames = 3u64;
    let mut session = TraceSession::with_sampling(Tracer::ring_buffer(), 500);
    let run =
        AppRun::execute_traced(&app, &models, frames, ExecMode::P2p, &mut session).expect("run");
    assert_eq!(run.metrics.frames, frames);

    // The counter time-series and NoC summary were collected on the way.
    assert_eq!(session.series().len(), 1);
    assert!(session.counters_csv().lines().count() > 1);
    assert!(session.noc_summary().contains("dma-req"));

    let events = session.tracer().drain();
    let completions = events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::FrameComplete { .. }))
        .count();
    assert!(
        completions >= frames as usize,
        "{completions} frame completions for {frames} frames"
    );

    let text = perfetto::chrome_trace_json(&events);
    let doc: serde_json::Value =
        serde_json::from_str(&text).expect("exporter emitted invalid JSON");
    let rows = doc["traceEvents"].as_array().expect("traceEvents array");

    // ts is monotonic across data rows and every data row carries pid 1
    // (a single RunStart means a single process).
    let mut last_ts = 0u64;
    let mut data_rows = 0usize;
    for row in rows {
        if row["ph"].as_str() == Some("M") {
            continue;
        }
        let ts = row["ts"].as_u64().expect("data row missing ts");
        assert!(ts >= last_ts, "ts went backwards: {ts} < {last_ts}");
        last_ts = ts;
        assert_eq!(row["pid"].as_u64(), Some(1));
        data_rows += 1;
    }
    assert!(data_rows as u64 >= frames, "fewer events than frames");

    // The single process is named after the run.
    let process = rows
        .iter()
        .find(|r| r["name"].as_str() == Some("process_name"))
        .expect("process_name metadata");
    let expected = format!("{} p2p", app.label());
    assert_eq!(process["args"]["name"].as_str(), Some(expected.as_str()));

    // One named accel track per accelerator tile that ran. (Floorplans
    // may contain sockets a given app/mode never invokes; idle tiles
    // emit no events and therefore get no track.)
    let thread_names: Vec<(String, u64)> = rows
        .iter()
        .filter(|r| r["name"].as_str() == Some("thread_name"))
        .map(|r| {
            (
                r["args"]["name"].as_str().unwrap().to_string(),
                r["tid"].as_u64().unwrap(),
            )
        })
        .collect();
    let active: std::collections::BTreeSet<TileCoord> = events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::AccelPhaseChange { .. }))
        .map(|e| e.source)
        .collect();
    assert!(active.len() >= 2, "pipeline should use at least two accels");
    for coord in active {
        let tid = tile_tid(coord);
        assert!(
            thread_names
                .iter()
                .any(|(name, t)| *t == tid && name.starts_with("accel ")),
            "no accel track for tile {coord}: {thread_names:?}"
        );
    }
}

fn two_stage_runtime() -> EspRuntime {
    let soc = SocBuilder::new(3, 2)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0))
        .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("x2", 16, 2)))
        .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("x3", 16, 3)))
        .build()
        .expect("floorplan");
    EspRuntime::new(soc).expect("runtime")
}

fn run_frames(rt: &mut EspRuntime, frames: u64, mode: ExecMode) -> esp4ml::runtime::RunMetrics {
    let df = Dataflow::linear(&[&["x2"], &["x3"]]);
    let buf = rt.prepare(&df, frames).expect("prepare");
    for f in 0..frames {
        rt.write_frame(&buf, f, &[f + 1; 16]).expect("write");
    }
    rt.run(&RunSpec::new(&df).mode(mode), &buf)
        .expect("esp_run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(9))]

    /// The counter registry accumulated by `esp_run` reports exactly the
    /// same numbers as the legacy `RunMetrics` aggregates, for any frame
    /// count and execution mode.
    #[test]
    fn counters_match_run_metrics_exactly(frames in 1u64..5, mode_idx in 0usize..3) {
        let mode = ExecMode::ALL[mode_idx];
        let mut rt = two_stage_runtime();
        let m = run_frames(&mut rt, frames, mode);
        let snap = rt.counters().snapshot();
        prop_assert_eq!(snap.get("runtime.frames"), m.frames);
        prop_assert_eq!(snap.get("runtime.invocations"), m.invocations);
        prop_assert_eq!(snap.get("soc.cycles"), m.cycles);
        prop_assert_eq!(snap.get("soc.dram_reads"), m.dram_reads);
        prop_assert_eq!(snap.get("soc.dram_writes"), m.dram_writes);
        prop_assert_eq!(snap.get("noc.flit_hops"), m.noc_flit_hops);
    }
}

/// Counters keep accumulating across consecutive `esp_run` calls.
#[test]
fn counters_accumulate_across_runs() {
    let mut rt = two_stage_runtime();
    let m1 = run_frames(&mut rt, 2, ExecMode::Base);
    let m2 = run_frames(&mut rt, 3, ExecMode::P2p);
    let snap = rt.counters().snapshot();
    assert_eq!(snap.get("runtime.frames"), m1.frames + m2.frames);
    assert_eq!(
        snap.get("runtime.invocations"),
        m1.invocations + m2.invocations
    );
    assert_eq!(snap.get("soc.dram_reads"), m1.dram_reads + m2.dram_reads);
    assert_eq!(snap.get("soc.dram_writes"), m1.dram_writes + m2.dram_writes);
    assert_eq!(
        snap.get("noc.flit_hops"),
        m1.noc_flit_hops + m2.noc_flit_hops
    );
}

/// A saturated ring buffer must not corrupt span assembly: the online
/// collector sees every event before the buffer evicts it, so the
/// report stays exact — but carrying over the sink's dropped-span count
/// flags it as partial, and replaying the truncated buffer offline
/// (having lost the `RunStart`) yields no half-open run rather than a
/// panic.
#[test]
fn saturated_ring_buffer_yields_consistent_partial_spans() {
    let spans = SpanCollector::new();
    // 64 events is far below what a 4-frame two-stage run emits.
    let tracer = Tracer::with_sink(Box::new(spans.sink(Box::new(RingBufferSink::new(64)))));
    tracer.emit(0, TileCoord::new(0, 0), || TraceEvent::RunStart {
        label: "saturated".into(),
    });
    let mut rt = two_stage_runtime();
    rt.set_tracer(tracer.clone());
    run_frames(&mut rt, 4, ExecMode::Pipe);
    assert!(tracer.dropped() > 0, "buffer was not saturated");
    assert!(
        tracer.dropped_spans() > 0,
        "no span-relevant events were evicted"
    );

    spans.note_dropped_spans(tracer.dropped_spans());
    let end = rt.soc().cycle();
    let report = spans.close_run(end).expect("open run closes");
    assert!(report.partial, "dropped spans must flag the report partial");
    assert_eq!(report.dropped_spans, tracer.dropped_spans());
    assert_eq!(report.frames.len(), 4);
    // The collector observed the full stream online, so attribution
    // stays exact even though the buffered copy is truncated.
    report.check_attribution().expect("attribution");

    // Offline replay of the truncated buffer: the RunStart marker was
    // the oldest event and is long evicted, so a fresh collector opens
    // no run — and must say so instead of panicking or fabricating one.
    let drained = tracer.drain();
    assert!(drained.len() <= 64);
    let fresh = SpanCollector::new();
    fresh.observe_all(&drained);
    assert!(fresh.close_run(end).is_none());
}

/// The tracer observes the full event taxonomy during a DMA-mode run:
/// ioctls, DMA bursts, NoC traffic, phase changes and frame completions.
#[test]
fn tracer_sees_all_event_kinds_in_dma_mode() {
    let mut rt = two_stage_runtime();
    let tracer = Tracer::ring_buffer();
    rt.set_tracer(tracer.clone());
    run_frames(&mut rt, 2, ExecMode::Base);
    let events = tracer.drain();
    let has = |pred: &dyn Fn(&TraceEvent) -> bool| events.iter().any(|e| pred(&e.event));
    assert!(has(&|e| matches!(e, TraceEvent::IoctlIssue { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::DmaBurst { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::NocPacketInject { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::NocPacketEject { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::AccelPhaseChange { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::FrameComplete { .. })));
}
