//! End-to-end integration tests: the full design flow from models to SoC
//! execution, across crates.

use esp4ml::apps::{CaseApp, TrainedModels};
use esp4ml::experiments::AppRun;
use esp4ml::runtime::ExecMode;

fn models() -> TrainedModels {
    TrainedModels::untrained()
}

#[test]
fn every_case_app_runs_in_every_mode() {
    let m = models();
    for app in CaseApp::all_fig7_configs() {
        for mode in ExecMode::ALL {
            let run = AppRun::execute(&app, &m, 4, mode)
                .unwrap_or_else(|e| panic!("{} {}: {e}", app.label(), mode.label()));
            assert_eq!(run.metrics.frames, 4, "{} {}", app.label(), mode.label());
            assert!(run.metrics.cycles > 0);
            assert!(run.predictions.iter().all(|&p| p < 10));
        }
    }
}

#[test]
fn predictions_are_mode_invariant() {
    // The communication mode must never change the computed result.
    let m = models();
    for app in [
        CaseApp::NightVisionClassifier { nv: 4, cl: 4 },
        CaseApp::DenoiserClassifier,
        CaseApp::MultiTileClassifier,
    ] {
        let base = AppRun::execute(&app, &m, 5, ExecMode::Base).expect("base");
        let pipe = AppRun::execute(&app, &m, 5, ExecMode::Pipe).expect("pipe");
        let p2p = AppRun::execute(&app, &m, 5, ExecMode::P2p).expect("p2p");
        assert_eq!(base.predictions, pipe.predictions, "{}", app.label());
        assert_eq!(pipe.predictions, p2p.predictions, "{}", app.label());
    }
}

#[test]
fn pipe_not_slower_base_and_p2p_not_slower_pipe() {
    let m = models();
    for app in [
        CaseApp::NightVisionClassifier { nv: 4, cl: 4 },
        CaseApp::MultiTileClassifier,
    ] {
        let base = AppRun::execute(&app, &m, 8, ExecMode::Base).expect("base");
        let pipe = AppRun::execute(&app, &m, 8, ExecMode::Pipe).expect("pipe");
        let p2p = AppRun::execute(&app, &m, 8, ExecMode::P2p).expect("p2p");
        assert!(
            pipe.metrics.cycles < base.metrics.cycles,
            "{}: pipe {} !< base {}",
            app.label(),
            pipe.metrics.cycles,
            base.metrics.cycles
        );
        assert!(
            p2p.metrics.cycles <= pipe.metrics.cycles,
            "{}: p2p {} !<= pipe {}",
            app.label(),
            p2p.metrics.cycles,
            pipe.metrics.cycles
        );
    }
}

#[test]
fn p2p_dram_reduction_is_in_the_paper_band() {
    // Fig. 8: reductions between 2x and 3x for the evaluated apps.
    let m = models();
    for (app, lo, hi) in [
        (CaseApp::NightVisionClassifier { nv: 4, cl: 4 }, 2.5, 3.2),
        (CaseApp::DenoiserClassifier, 2.5, 3.2),
        (CaseApp::MultiTileClassifier, 1.7, 2.2),
    ] {
        let pipe = AppRun::execute(&app, &m, 6, ExecMode::Pipe).expect("pipe");
        let p2p = AppRun::execute(&app, &m, 6, ExecMode::P2p).expect("p2p");
        let reduction = pipe.metrics.dram_accesses as f64 / p2p.metrics.dram_accesses as f64;
        assert!(
            (lo..=hi).contains(&reduction),
            "{}: reduction {reduction:.2} outside [{lo}, {hi}]",
            app.label()
        );
    }
}

#[test]
fn esp4ml_beats_baselines_in_frames_per_joule() {
    use esp4ml::baseline::{Platform, Workload};
    let m = models();
    let i7 = Platform::intel_i7_8700k();
    let tx1 = Platform::jetson_tx1();
    let cases: [(CaseApp, Workload); 3] = [
        (
            CaseApp::NightVisionClassifier { nv: 4, cl: 4 },
            Workload::night_vision().then(Workload::classifier()),
        ),
        (
            CaseApp::DenoiserClassifier,
            Workload::denoiser().then(Workload::classifier()),
        ),
        (CaseApp::MultiTileClassifier, Workload::classifier()),
    ];
    for (app, workload) in cases {
        let run = AppRun::execute(&app, &m, 8, ExecMode::P2p).expect("p2p run");
        let fpj = run.frames_per_joule();
        assert!(
            fpj > i7.frames_per_joule(&workload),
            "{}: {fpj:.0} f/J does not beat the i7 line",
            app.label()
        );
        assert!(
            fpj > tx1.frames_per_joule(&workload),
            "{}: {fpj:.0} f/J does not beat the Jetson line",
            app.label()
        );
    }
}

#[test]
fn nv_instance_scaling_increases_throughput() {
    // The Fig. 7 left cluster story: adding NV instances to feed the
    // classifier raises pipeline throughput.
    let m = models();
    let fps = |nv: usize, cl: usize| {
        AppRun::execute(
            &CaseApp::NightVisionClassifier { nv, cl },
            &m,
            8,
            ExecMode::P2p,
        )
        .expect("run")
        .metrics
        .frames_per_second()
    };
    let one = fps(1, 1);
    let four_one = fps(4, 1);
    let four_four = fps(4, 4);
    assert!(
        four_one > 2.0 * one,
        "4NV+1Cl {four_one:.0} vs 1NV+1Cl {one:.0}"
    );
    assert!(four_four >= four_one * 0.95, "4NV+4Cl should not regress");
}

#[test]
fn balance_advisor_suggests_the_papers_configuration() {
    // Probe the real SoC-1 kernels and let the §V balancing rule pick the
    // stage widths: the Night-Vision kernel is ~6x slower than the
    // classifier, so the advisor lands on the paper's 4NV+1Cl shape.
    use esp4ml::runtime::balance::suggest_stage_widths;
    use esp4ml::runtime::DeviceRegistry;
    let m = models();
    let soc = esp4ml::apps::build_soc1(&m).expect("soc1");
    let registry = DeviceRegistry::probe(&soc);
    let nv = registry.lookup("nv0").expect("nv0");
    let cl = registry.lookup("cl0").expect("cl0");
    assert!(nv.initiation_interval > cl.initiation_interval);
    let widths = suggest_stage_widths(&[nv.initiation_interval, cl.initiation_interval], 4);
    assert_eq!(
        widths,
        vec![4, 1],
        "IIs {} / {}",
        nv.initiation_interval,
        cl.initiation_interval
    );
}
