//! Integration tests of the fault-injection and fault-tolerance layer:
//! seeded campaigns are byte-identical under both simulation engines,
//! Fig. 7 pipelines survive injected hangs through retry/failover, and
//! the whole machinery is zero-cost when no faults are configured.

use esp4ml::apps::{CaseApp, TrainedModels};
use esp4ml::experiments::AppRun;
use esp4ml::faults::{CampaignReport, FaultConfig, CAMPAIGN_WATCHDOG_CYCLES};
use esp4ml::runtime::ExecMode;
use esp4ml::trace::SpanKind;
use esp4ml::TraceSession;
use esp4ml_fault::{FaultPlan, FaultSpec};
use esp4ml_soc::SocEngine;

fn models() -> TrainedModels {
    TrainedModels::untrained()
}

fn hang_config(plan: FaultPlan) -> FaultConfig {
    FaultConfig::from_plan(plan).with_watchdog(CAMPAIGN_WATCHDOG_CYCLES)
}

/// The acceptance scenario of the fault-tolerance work: a Fig. 7
/// three-stage pipeline (input → NV → classifier) with a permanently
/// hung classifier completes via retry + failover to the spare
/// classifier instance, with the degraded throughput visible in the
/// metrics.
#[test]
fn fig7_pipeline_survives_permanent_hang_via_failover() {
    let m = models();
    let app = CaseApp::NightVisionClassifier { nv: 2, cl: 2 };
    let healthy = AppRun::execute(&app, &m, 3, ExecMode::Pipe).unwrap();
    let config = hang_config(FaultPlan::new(0).with(FaultSpec::permanent_hang("cl0")));
    let run = AppRun::execute_faulted(&app, &m, 3, ExecMode::Pipe, SocEngine::EventDriven, &config)
        .unwrap();
    assert!(!run.software_fallback, "spares should absorb the hang");
    assert!(run.metrics.retries >= 1, "{:?}", run.metrics);
    assert!(run.metrics.failovers >= 1, "{:?}", run.metrics);
    assert!(run.metrics.faults_injected >= 1, "{:?}", run.metrics);
    // Same answers as the healthy pipeline, honestly slower.
    assert_eq!(run.predictions, healthy.predictions);
    assert!(
        run.metrics.frames_per_second() < healthy.metrics.frames_per_second(),
        "recovered run must report degraded throughput ({} vs {} f/s)",
        run.metrics.frames_per_second(),
        healthy.metrics.frames_per_second(),
    );
}

/// A pipeline stage with no spare (the lone denoiser) degrades to the
/// processor-tile software path instead of failing, and reports the
/// much lower software throughput.
#[test]
fn denoiser_hang_degrades_to_software_fallback() {
    let m = models();
    let app = CaseApp::DenoiserClassifier;
    let healthy = AppRun::execute(&app, &m, 3, ExecMode::Pipe).unwrap();
    let config = hang_config(FaultPlan::new(0).with(FaultSpec::permanent_hang("denoiser")));
    let run = AppRun::execute_faulted(&app, &m, 3, ExecMode::Pipe, SocEngine::EventDriven, &config)
        .unwrap();
    assert!(run.software_fallback);
    assert_eq!(run.metrics.frames, 3);
    assert_eq!(run.predictions.len(), 3);
    assert!(run.metrics.faults_injected >= 1);
    assert!(
        run.metrics.frames_per_second() < healthy.metrics.frames_per_second() / 10.0,
        "software fallback must be honestly slow ({} vs {} f/s)",
        run.metrics.frames_per_second(),
        healthy.metrics.frames_per_second(),
    );
}

/// A transient hang heals with retries alone — no failover, correct
/// output.
#[test]
fn transient_hang_recovers_with_retries_only() {
    let m = models();
    let app = CaseApp::DenoiserClassifier;
    let healthy = AppRun::execute(&app, &m, 3, ExecMode::P2p).unwrap();
    let config = hang_config(FaultPlan::new(0).with(FaultSpec::transient_hang("denoiser", 0)));
    let run = AppRun::execute_faulted(&app, &m, 3, ExecMode::P2p, SocEngine::EventDriven, &config)
        .unwrap();
    assert!(!run.software_fallback);
    assert!(run.metrics.retries >= 1);
    assert_eq!(run.metrics.failovers, 0);
    assert_eq!(run.predictions, healthy.predictions);
}

/// The same seeded campaign produces a byte-identical JSON artifact
/// under the naive oracle and the event-driven engine: every fault
/// trigger counts architectural events, never engine artifacts.
#[test]
fn campaign_json_is_byte_identical_across_engines() {
    let m = models();
    let seeds = [1];
    let naive = CampaignReport::generate(&m, &seeds, 3, SocEngine::Naive).unwrap();
    let event = CampaignReport::generate(&m, &seeds, 3, SocEngine::EventDriven).unwrap();
    assert_eq!(
        naive.to_json().unwrap(),
        event.to_json().unwrap(),
        "campaign must be engine-independent"
    );
    // The campaign exercises the recovery machinery, not just clean runs.
    assert!(!naive.cases.is_empty());
    assert!(
        naive
            .cases
            .iter()
            .any(|c| c.status == "recovered" || c.status == "degraded"),
        "expected at least one recovery across the sweep:\n{naive}"
    );
    assert!(
        naive.cases.iter().all(|c| c.status != "failed"),
        "recovery must absorb every injected fault:\n{naive}"
    );
}

/// Recovery cycles are not lost by the span layer: retry backoff
/// windows land in [`SpanKind::Retry`] spans, failovers appear as
/// marker spans, and the attribution invariant (every latency cycle in
/// exactly one span) survives both — the degraded frames are exactly
/// as long as their spans say.
#[test]
fn recovery_cycles_appear_as_retry_and_failover_spans() {
    let m = models();

    // Transient hang: heals with retries alone, so the stretched
    // frame's extra latency must be visible as Retry-attributed cycles.
    let app = CaseApp::DenoiserClassifier;
    let config = hang_config(FaultPlan::new(0).with(FaultSpec::transient_hang("denoiser", 0)));
    let mut session = TraceSession::spanned(None, false);
    let run = AppRun::execute_faulted_traced(
        &app,
        &m,
        3,
        ExecMode::P2p,
        SocEngine::EventDriven,
        &config,
        &mut session,
    )
    .unwrap();
    assert!(run.metrics.retries >= 1, "{:?}", run.metrics);
    let report = session.span_reports().first().expect("span report");
    report
        .check_attribution()
        .expect("attribution must stay exact under retries");
    let retry_cycles: u64 = report
        .frames
        .iter()
        .flat_map(|f| &f.stages)
        .flat_map(|s| &s.spans)
        .filter(|s| s.kind == SpanKind::Retry)
        .map(|s| s.cycles())
        .sum();
    assert!(
        retry_cycles > 0,
        "retry backoff must be attributed as Retry spans:\n{}",
        report.render_text()
    );

    // Permanent hang: retry exhaustion remaps the stage to the spare
    // classifier — the remap must leave a Failover marker in the tree
    // without breaking attribution.
    let app = CaseApp::NightVisionClassifier { nv: 2, cl: 2 };
    let config = hang_config(FaultPlan::new(0).with(FaultSpec::permanent_hang("cl0")));
    let mut session = TraceSession::spanned(None, false);
    let run = AppRun::execute_faulted_traced(
        &app,
        &m,
        3,
        ExecMode::Pipe,
        SocEngine::EventDriven,
        &config,
        &mut session,
    )
    .unwrap();
    assert!(run.metrics.failovers >= 1, "{:?}", run.metrics);
    let report = session.span_reports().first().expect("span report");
    report
        .check_attribution()
        .expect("attribution must stay exact under failover");
    let failover_markers = report
        .frames
        .iter()
        .flat_map(|f| &f.stages)
        .flat_map(|s| &s.spans)
        .filter(|s| s.kind == SpanKind::Failover)
        .count();
    assert!(
        failover_markers >= 1,
        "failover must appear as a marker span:\n{}",
        report.render_text()
    );
}

/// With no fault plan installed and no recovery policy configured, the
/// new machinery must be invisible: metrics identical to a plain run.
#[test]
fn no_faults_is_zero_cost() {
    let m = models();
    for mode in [ExecMode::Pipe, ExecMode::P2p] {
        let plain = AppRun::execute(&CaseApp::DenoiserClassifier, &m, 3, mode).unwrap();
        let armed = AppRun::execute_faulted(
            &CaseApp::DenoiserClassifier,
            &m,
            3,
            mode,
            SocEngine::EventDriven,
            &FaultConfig::default(),
        )
        .unwrap();
        assert_eq!(plain.metrics, armed.metrics, "{mode:?}");
        assert_eq!(plain.predictions, armed.predictions, "{mode:?}");
        assert!(!armed.software_fallback);
    }
}
