//! Integration tests of the `esp4ml-check` front end: the static linter
//! over configurations/dataflows and the fault-injection hooks that
//! prove the runtime sanitizer actually fires.

use esp4ml::apps::CaseApp;
use esp4ml::check::{lint_all, lint_config, FloorplanView};
use esp4ml::soc_config::{MlModelRef, SocConfigFile, TileSpec, TileSpecKind};
use esp4ml::TrainedModels;
use esp4ml_check::codes;
use proptest::prelude::*;

/// The five Fig. 7 applications that map onto the SoC-1 floorplan.
fn soc1_apps() -> Vec<CaseApp> {
    CaseApp::all_fig7_configs()
        .into_iter()
        .filter(|a| !matches!(a, CaseApp::MultiTileClassifier))
        .collect()
}

#[test]
fn clean_builtin_configs_produce_zero_findings() {
    let cfg = SocConfigFile::soc1();
    assert!(lint_config(&cfg).is_clean());
    for app in soc1_apps() {
        let report = lint_all(&cfg, &app.dataflow());
        assert!(report.is_clean(), "{}: {report}", app.label());
    }
}

#[test]
fn diagnostic_codes_are_stable() {
    // These literals are the published contract: CI and downstream
    // tooling match on them, so renames are breaking changes.
    assert_eq!(codes::DUPLICATE_TILE, "E0101");
    assert_eq!(codes::MISSING_REQUIRED_TILE, "E0103");
    assert_eq!(codes::EMPTY_STAGE, "E0202");
    assert_eq!(codes::UNMAPPED_DEVICE, "E0301");
    assert_eq!(codes::PLM_OVERFLOW, "E0304");
    assert_eq!(codes::CREDIT_CONSERVATION, "E0401");
    assert_eq!(codes::DMA_ACCOUNTING, "E0404");
    assert_eq!(codes::DEADLOCK, "E0501");
}

#[test]
fn committed_example_configs_match_the_linter() {
    let clean = std::fs::read_to_string("configs/soc1.json").expect("configs/soc1.json");
    let clean = SocConfigFile::from_json(&clean).expect("clean config parses");
    assert!(lint_config(&clean).is_clean());

    let broken =
        std::fs::read_to_string("configs/broken_dup_tile.json").expect("broken config file");
    let broken = SocConfigFile::from_json(&broken).expect("broken config still parses");
    let report = lint_config(&broken);
    let codes_found: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes_found.contains(&codes::DUPLICATE_TILE), "{report}");
    assert!(codes_found.contains(&codes::PLM_OVERFLOW), "{report}");
}

/// The corruption kinds the proptest below applies to a clean pair.
#[derive(Debug, Clone)]
enum Corruption {
    /// Remove the accelerator tile a dataflow stage maps to (`E0301`).
    DropDevice(usize),
    /// Empty one stage of the dataflow (`E0202`).
    DropStageDevices(usize),
    /// Add a second tile claiming an existing device name (`E0104`).
    DuplicateDevice(usize),
    /// Shrink a declared PLM budget below the model footprint (`E0304`).
    ShrinkPlm(usize, u64),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any of the corruption kinds applied to any clean (config,
    /// dataflow) pair yields at least one *error* diagnostic — the
    /// linter never waves a broken input through.
    #[test]
    fn corrupted_configs_always_produce_an_error(
        app_idx in 0usize..4,
        kind in 0usize..4,
        idx in 0usize..16,
        words in 1u64..512,
    ) {
        let corruption = match kind {
            0 => Corruption::DropDevice(idx),
            1 => Corruption::DropStageDevices(idx),
            2 => Corruption::DuplicateDevice(idx),
            _ => Corruption::ShrinkPlm(idx, words),
        };
        let apps = soc1_apps();
        let app = &apps[app_idx % apps.len()];
        let mut cfg = SocConfigFile::soc1();
        let mut dataflow = app.dataflow();
        // Indices select among the accelerator tiles / dataflow devices,
        // wrapping so every random draw lands on a real target.
        let accel_idx = |cfg: &SocConfigFile, i: usize| {
            let accels: Vec<usize> = cfg
                .tiles
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    matches!(
                        t.kind,
                        TileSpecKind::NightVision { .. } | TileSpecKind::MlModel { .. }
                    )
                })
                .map(|(i, _)| i)
                .collect();
            accels[i % accels.len()]
        };
        match corruption {
            Corruption::DropDevice(i) => {
                // Drop a device the dataflow actually uses.
                let stage = i % dataflow.stages.len();
                let dev = dataflow.stages[stage].devices[i % dataflow.stages[stage].devices.len()]
                    .clone();
                cfg.tiles.retain(|t| match &t.kind {
                    TileSpecKind::NightVision { name } | TileSpecKind::MlModel { name, .. } => {
                        *name != dev
                    }
                    _ => true,
                });
            }
            Corruption::DropStageDevices(i) => {
                let stage = i % dataflow.stages.len();
                dataflow.stages[stage].devices.clear();
            }
            Corruption::DuplicateDevice(i) => {
                let src = accel_idx(&cfg, i);
                let name = match &cfg.tiles[src].kind {
                    TileSpecKind::NightVision { name } | TileSpecKind::MlModel { name, .. } => {
                        name.clone()
                    }
                    _ => unreachable!(),
                };
                cfg.tiles.push(TileSpec::new(
                    4,
                    2,
                    TileSpecKind::MlModel {
                        name,
                        model: MlModelRef::Classifier,
                        reuse: vec![64],
                    },
                ));
            }
            Corruption::ShrinkPlm(i, words) => {
                let idx = accel_idx(&cfg, i);
                // Every built-in model needs >= 515 words of PLM, so any
                // budget below that must be flagged.
                cfg.tiles[idx].plm_words = Some(words.min(514));
            }
        }
        let report = lint_all(&cfg, &dataflow);
        prop_assert!(
            report.has_errors(),
            "corruption {corruption:?} on {} produced no error:\n{report}",
            app.label()
        );
    }
}

#[test]
fn sanitizer_catches_a_deliberately_leaked_credit() {
    // Fault injection through the public API: steal one credit from a
    // router port and let the conservation audit notice.
    use esp4ml::noc::{Coord, Plane};
    use esp4ml::soc::SanitizerConfig;

    let models = TrainedModels::untrained();
    let mut soc = SocConfigFile::soc1().build(&models).expect("soc1 builds");
    soc.enable_sanitizer(SanitizerConfig::all());
    soc.fault_leak_credit(Coord::new(1, 0), Plane::DmaReq);
    soc.run_cycles(5);
    let report = soc.sanitizer_report().expect("sanitizer armed");
    assert!(report.has_errors());
    assert_eq!(report.diagnostics[0].code, codes::CREDIT_CONSERVATION);
}

#[test]
fn floorplan_view_matches_between_config_and_built_soc() {
    let models = TrainedModels::untrained();
    let cfg = SocConfigFile::soc1();
    let soc = cfg.build(&models).expect("soc1 builds");
    let a = FloorplanView::from_config(&cfg);
    let b = FloorplanView::from_soc(&soc);
    let mut names_a: Vec<&str> = a.devices.iter().map(|d| d.name.as_str()).collect();
    let mut names_b: Vec<&str> = b.devices.iter().map(|d| d.name.as_str()).collect();
    names_a.sort_unstable();
    names_b.sort_unstable();
    assert_eq!(names_a, names_b);
    assert_eq!(a.memories, b.memories);
}
