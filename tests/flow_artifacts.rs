//! Integration tests of the design-flow artifacts: model files, compiler
//! outputs, descriptors, utilization and power reports.

use esp4ml::apps::{build_soc1, build_soc2, TrainedModels, CLASSIFIER_REUSE};
use esp4ml::flow::Esp4mlFlow;
use esp4ml::hls4ml::{Hls4mlCompiler, Hls4mlConfig};
use esp4ml::nn::{Activation, LayerSpec, ModelFile, Sequential};

#[test]
fn file_based_flow_matches_in_memory_flow() {
    let mut model = Sequential::with_seed(32, 5);
    model.push(LayerSpec::dense(16, Activation::Relu));
    model.push(LayerSpec::Dropout { rate: 0.2 });
    model.push(LayerSpec::dense(10, Activation::Softmax));

    let dir = std::env::temp_dir().join("esp4ml_flow_artifacts");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let topo = dir.join("m.json");
    let weights = dir.join("m.espw");
    ModelFile::save(&model, &topo, &weights).expect("save");

    let cfg = Hls4mlConfig::with_reuse(32).named("m");
    let from_files = Hls4mlCompiler::compile_files(&topo, &weights, &cfg).expect("files");
    let in_memory = Hls4mlCompiler::compile(&model, &cfg).expect("memory");
    let x = vec![0.3f32; 32];
    assert_eq!(from_files.infer(&x), in_memory.infer(&x));
    assert_eq!(from_files.estimate(), in_memory.estimate());
}

#[test]
fn descriptors_for_every_soc1_accelerator() {
    let models = TrainedModels::untrained();
    let flow = Esp4mlFlow::new();
    let nn = flow
        .compile_ml(&models.classifier, "cl", &CLASSIFIER_REUSE)
        .expect("compile");
    let desc = flow.descriptor(&nn);
    assert_eq!(desc.input_words, 1024);
    assert_eq!(desc.output_words, 10);
    let xml = desc.to_xml();
    assert!(xml.contains("LOCATION_REG"));
    assert!(xml.contains("P2P_REG"));
}

#[test]
fn soc_reports_fit_the_target_device() {
    let models = TrainedModels::untrained();
    let flow = Esp4mlFlow::new();
    let soc1 = build_soc1(&models).expect("soc1");
    let soc2 = build_soc2(&models).expect("soc2");
    // Both SoCs must fit the paper's Ultrascale+ class device.
    assert!(soc1.resources().fits(&flow.device), "SoC-1 does not fit");
    assert!(soc2.resources().fits(&flow.device), "SoC-2 does not fit");
    // SoC-1 is the bigger design on every axis the paper reports.
    let u1 = flow.utilization(&soc1);
    let u2 = flow.utilization(&soc2);
    assert!(u1.lut_pct > u2.lut_pct);
    assert!(u1.bram_pct > u2.bram_pct);
    // Power ordering matches Table I (1.70 W vs 0.98 W).
    let p1 = flow.estimate_power(&soc1).total_watts();
    let p2 = flow.estimate_power(&soc2).total_watts();
    assert!(p1 > p2);
    assert!(p1 > 1.0 && p1 < 2.5, "SoC-1 power {p1:.2} W");
    assert!(p2 > 0.5 && p2 < 1.5, "SoC-2 power {p2:.2} W");
}

#[test]
fn utilization_tracks_paper_bands() {
    // Table I reproduction bands (generous: the resource model is
    // analytic): SoC-1 LUTs ~48%, SoC-2 ~19%.
    let models = TrainedModels::untrained();
    let flow = Esp4mlFlow::new();
    let u1 = flow.utilization(&build_soc1(&models).expect("soc1"));
    let u2 = flow.utilization(&build_soc2(&models).expect("soc2"));
    assert!(
        (40.0..=56.0).contains(&u1.lut_pct),
        "SoC-1 LUT {:.0}%",
        u1.lut_pct
    );
    assert!(
        (15.0..=27.0).contains(&u2.lut_pct),
        "SoC-2 LUT {:.0}%",
        u2.lut_pct
    );
    assert!(
        (45.0..=65.0).contains(&u1.bram_pct),
        "SoC-1 BRAM {:.0}%",
        u1.bram_pct
    );
}

#[test]
fn reuse_factor_trades_throughput_for_area() {
    // The central HLS4ML knob, end to end through the flow.
    let models = TrainedModels::untrained();
    let flow = Esp4mlFlow::new();
    let fast = flow
        .compile_ml(&models.classifier, "f", &[256, 128, 64, 32, 16])
        .expect("fast");
    let slow = flow
        .compile_ml(&models.classifier, "s", &[4096, 2048, 1024, 512, 64])
        .expect("slow");
    assert!(fast.latency() < slow.latency());
    assert!(fast.resources().dsps > slow.resources().dsps);
    // Identical function regardless of the schedule.
    let x = vec![0.2f32; 1024];
    assert_eq!(fast.infer(&x), slow.infer(&x));
}
