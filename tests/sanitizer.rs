//! Runtime-sanitizer integration tests: the full Fig. 7 grid runs clean
//! under the invariant sanitizer, and both simulation engines return
//! byte-identical verdicts.

use esp4ml::experiments::Fig7;
use esp4ml::TrainedModels;
use esp4ml_soc::SocEngine;

/// Every Fig. 7 grid point, sanitized, on both engines: the runs
/// complete (no invariant fires on a healthy SoC) and the attached
/// verdicts serialize byte-identically across engines.
#[test]
fn fig7_grid_sanitized_clean_and_engine_identical() {
    let models = TrainedModels::untrained();
    for point in Fig7::grid() {
        let naive = point
            .run_sanitized(&models, 2, SocEngine::Naive)
            .unwrap_or_else(|e| panic!("{} naive: {e}", point.label()));
        let event = point
            .run_sanitized(&models, 2, SocEngine::EventDriven)
            .unwrap_or_else(|e| panic!("{} event: {e}", point.label()));
        let nv = naive.sanitizer.as_ref().expect("sanitized run has verdict");
        let ev = event.sanitizer.as_ref().expect("sanitized run has verdict");
        assert!(nv.is_clean(), "{}: {nv}", point.label());
        assert_eq!(
            serde_json::to_string(nv).unwrap(),
            serde_json::to_string(ev).unwrap(),
            "{}: sanitizer verdicts differ between engines",
            point.label()
        );
        // Sanitizing must not perturb the simulation itself.
        assert_eq!(naive.metrics, event.metrics, "{}", point.label());
        assert_eq!(naive.predictions, event.predictions, "{}", point.label());
    }
}

/// A sanitized run produces the same metrics as an unsanitized one —
/// the audits observe, they don't interfere.
#[test]
fn sanitizer_does_not_perturb_results() {
    use esp4ml::apps::CaseApp;
    use esp4ml::experiments::AppRun;
    use esp4ml::runtime::ExecMode;

    let models = TrainedModels::untrained();
    let app = CaseApp::DenoiserClassifier;
    let plain = AppRun::execute_on(&app, &models, 3, ExecMode::P2p, SocEngine::EventDriven)
        .expect("plain run");
    let sanitized =
        AppRun::execute_sanitized(&app, &models, 3, ExecMode::P2p, SocEngine::EventDriven)
            .expect("sanitized run");
    assert_eq!(plain.metrics, sanitized.metrics);
    assert_eq!(plain.predictions, sanitized.predictions);
    assert!(plain.sanitizer.is_none());
    assert!(sanitized.sanitizer.expect("verdict").is_clean());
}
