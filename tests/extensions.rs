//! Integration tests for the platform extensions built beyond the paper's
//! minimum: LLC-coherent memory tiles, multi-memory interleaving, input
//! double buffering, the balance advisor, and the declarative SoC config.

use esp4ml::mem::{CacheConfig, DramConfig};
use esp4ml::noc::Coord;
use esp4ml::runtime::{Dataflow, EspRuntime, ExecMode, RunSpec};
use esp4ml::soc::{AccelConfig, ScaleKernel, Soc, SocBuilder};

fn pipeline_soc(llc: bool, mems: usize) -> Soc {
    let mut b = SocBuilder::new(3, 2).processor(Coord::new(0, 0));
    b = if llc {
        b.memory_llc(
            Coord::new(1, 0),
            DramConfig::default(),
            CacheConfig::default(),
        )
    } else {
        b.memory(Coord::new(1, 0))
    };
    if mems == 2 {
        b = b.memory(Coord::new(2, 0));
    }
    b.accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("a", 1024, 2)))
        .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("b", 1024, 3)))
        .build()
        .expect("valid floorplan")
}

fn run_pipeline(soc: Soc, mode: ExecMode, frames: u64) -> (Vec<Vec<u64>>, u64, u64) {
    let mut rt = EspRuntime::new(soc).expect("runtime");
    let df = Dataflow::linear(&[&["a"], &["b"]]);
    let buf = rt.prepare(&df, frames).expect("buffers");
    for f in 0..frames {
        rt.write_frame(&buf, f, &vec![f + 1; 1024]).expect("write");
    }
    let m = rt.run(&RunSpec::new(&df).mode(mode), &buf).expect("run");
    let outs = (0..frames)
        .map(|f| rt.read_frame(&buf, f).expect("read"))
        .collect();
    (outs, m.cycles, m.dram_accesses)
}

#[test]
fn llc_reduces_off_chip_traffic_with_same_results() {
    let (out_plain, _, dram_plain) = run_pipeline(pipeline_soc(false, 1), ExecMode::Pipe, 4);
    let (out_llc, _, dram_llc) = run_pipeline(pipeline_soc(true, 1), ExecMode::Pipe, 4);
    assert_eq!(out_plain, out_llc, "LLC must be functionally invisible");
    assert!(
        dram_llc < dram_plain,
        "LLC {dram_llc} accesses !< plain {dram_plain}"
    );
    // p2p still beats even the LLC-coherent organisation.
    let (_, _, dram_p2p) = run_pipeline(pipeline_soc(false, 1), ExecMode::P2p, 4);
    assert!(dram_p2p < dram_llc);
}

#[test]
fn two_memory_tiles_same_results() {
    let (out_one, cycles_one, dram_one) = run_pipeline(pipeline_soc(false, 1), ExecMode::Pipe, 4);
    let (out_two, cycles_two, dram_two) = run_pipeline(pipeline_soc(false, 2), ExecMode::Pipe, 4);
    assert_eq!(
        out_one, out_two,
        "interleaving must be functionally invisible"
    );
    assert_eq!(dram_one, dram_two, "same words cross the boundary");
    // Striping across tiles must not slow things down.
    assert!(cycles_two <= cycles_one + cycles_one / 10);
}

#[test]
fn double_buffer_composes_with_the_runtime_modes() {
    // Drive the SoC directly with dbuf on both pipeline stages under p2p
    // and compare against the runtime's plain p2p execution.
    let frames = 4u64;
    let (plain, _, _) = run_pipeline(pipeline_soc(false, 1), ExecMode::P2p, frames);

    let mut soc = pipeline_soc(false, 1);
    let (a, b) = (Coord::new(0, 1), Coord::new(1, 1));
    // Mirror the runtime's buffer layout: inputs at 0 (256 words/frame),
    // outputs right after the two regions.
    for f in 0..frames {
        soc.dram_write_values(f * 256, &vec![f + 1; 1024], 16)
            .expect("init");
    }
    for t in [a, b] {
        soc.map_contiguous(t, 0, 1 << 20).expect("map");
    }
    soc.configure_accel(a, &AccelConfig::dma_to_p2p(0, frames).with_double_buffer())
        .expect("cfg a");
    soc.configure_accel(
        b,
        &AccelConfig::p2p_to_dma(vec![a], 100_000, frames).with_double_buffer(),
    )
    .expect("cfg b");
    soc.start_accel(a).expect("start a");
    soc.start_accel(b).expect("start b");
    assert!(soc.run_until_idle(10_000_000).is_idle());
    for f in 0..frames {
        let out = soc
            .dram_read_values(100_000 + f * 256, 1024, 16)
            .expect("read");
        assert_eq!(out, plain[f as usize], "frame {f}");
    }
}

#[test]
fn socgen_config_runs_an_application() {
    // Build an SoC purely from JSON and run a dataflow on it.
    use esp4ml::apps::TrainedModels;
    use esp4ml::soc_config::SocConfigFile;
    let json = r#"{
        "name": "it", "cols": 3, "rows": 2, "clock_mhz": 78.0,
        "tiles": [
            { "x": 0, "y": 0, "kind": { "type": "processor" } },
            { "x": 1, "y": 0, "kind": { "type": "memory" } },
            { "x": 0, "y": 1, "kind": { "type": "night_vision", "name": "nv" } },
            { "x": 1, "y": 1, "kind": { "type": "ml_model", "name": "clf",
                "model": { "source": "classifier" },
                "reuse": [1024, 512, 256, 128, 32] } }
        ]
    }"#;
    let config = SocConfigFile::from_json(json).expect("parses");
    let soc = config.build(&TrainedModels::untrained()).expect("builds");
    let mut rt = EspRuntime::new(soc).expect("runtime");
    let df = Dataflow::linear(&[&["nv"], &["clf"]]);
    let buf = rt.prepare(&df, 2).expect("buffers");
    for f in 0..2 {
        rt.write_frame(&buf, f, &vec![100; 1024]).expect("write");
    }
    let m = rt
        .run(&RunSpec::new(&df).mode(ExecMode::P2p), &buf)
        .expect("run");
    assert_eq!(m.frames, 2);
    assert_eq!(rt.read_frame(&buf, 0).expect("read").len(), 10);
}

#[test]
fn device_stats_expose_the_monitors_view() {
    // The ESP monitors analog: after a run, per-device hardware counters
    // are visible through the runtime by device name.
    let soc = pipeline_soc(false, 1);
    let mut rt = EspRuntime::new(soc).expect("runtime");
    let df = Dataflow::linear(&[&["a"], &["b"]]);
    let buf = rt.prepare(&df, 3).expect("buffers");
    for f in 0..3 {
        rt.write_frame(&buf, f, &vec![2; 1024]).expect("write");
    }
    rt.run(&RunSpec::new(&df).mode(ExecMode::P2p), &buf)
        .expect("run");
    let a = rt.device_stats("a").expect("device a");
    let b = rt.device_stats("b").expect("device b");
    assert_eq!(a.frames_done, 3);
    assert_eq!(b.frames_done, 3);
    // Producer did DMA loads and p2p stores; consumer the inverse.
    assert_eq!(a.dma_words_loaded, 3 * 256);
    assert_eq!(a.p2p_words_sent, 3 * 256);
    assert_eq!(b.dma_words_stored, 3 * 256);
    assert!(a.compute_cycles > 0 && b.compute_cycles > 0);
    assert!(rt.device_stats("nope").is_none());
}

#[test]
fn shallow_noc_queues_never_deadlock_a_full_app() {
    // Robustness: run the 4NV+4Cl p2p pipeline — the heaviest traffic
    // pattern — and make sure it completes (the consumption assumption
    // and plane decoupling are what guarantee this).
    use esp4ml::apps::{CaseApp, TrainedModels};
    use esp4ml::experiments::AppRun;
    let run = AppRun::execute(
        &CaseApp::NightVisionClassifier { nv: 4, cl: 4 },
        &TrainedModels::untrained(),
        12,
        ExecMode::P2p,
    )
    .expect("must drain without deadlock");
    assert_eq!(run.metrics.frames, 12);
}
