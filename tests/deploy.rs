//! End-to-end validation of the multi-tenant deployment analyzer.
//!
//! The seeded `configs/deploy_ok.json` must be admitted with zero
//! findings and its static bandwidth model must *dominate* the
//! cycle-level simulator — on every DMA-plane link and on every
//! per-tenant slowdown bound, under both simulation engines. The
//! seeded `configs/deploy_conflict.json` must be refuted with the
//! full `E07xx` family.

use esp4ml::deploy::{lint_deployment, validate_against_simulator, Deployment};
use esp4ml::soc::SocEngine;

fn load(name: &str) -> Deployment {
    let path = format!("{}/configs/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("seeded deployment file");
    Deployment::from_json(&text).expect("deployment parses")
}

#[test]
fn seeded_ok_deployment_is_admitted_clean() {
    let d = load("deploy_ok.json");
    let analysis = lint_deployment(&d);
    assert!(
        analysis.report.is_clean(),
        "deploy_ok.json must lint clean:\n{}",
        analysis.report
    );
    let bw = analysis.bandwidth.expect("bandwidth analysis present");
    assert_eq!(bw.tenants.len(), 3);
    for bound in &bw.tenants {
        assert!(
            bound.slowdown_bound.is_finite() && bound.slowdown_bound >= 1.0,
            "feasible deployment has a finite slowdown bound >= 1: {bound:?}"
        );
    }
}

#[test]
fn seeded_conflict_deployment_is_refuted_with_every_e07xx() {
    let d = load("deploy_conflict.json");
    let analysis = lint_deployment(&d);
    let codes: Vec<&str> = analysis
        .report
        .diagnostics
        .iter()
        .map(|diag| diag.code)
        .collect();
    for expected in ["E0701", "E0702", "E0703", "E0704", "W0706"] {
        assert!(
            codes.contains(&expected),
            "deploy_conflict.json must trip {expected}; got {codes:?}"
        );
    }
    assert!(analysis.report.has_errors());
}

/// The soundness claim behind `E0704`/the slowdown bounds: the static
/// per-frame demand model over-approximates what the simulator actually
/// moves, so the statically-computed worst-case slowdown bound
/// dominates the bound recomputed from measured traffic — for every
/// tenant, on every link, under either engine.
fn assert_conservative(engine: SocEngine) {
    let d = load("deploy_ok.json");
    let frames = 4;
    let validation = validate_against_simulator(&d, frames, engine).expect("tenants simulate");
    assert_eq!(validation.tenants.len(), d.tenants.len());
    for tenant in &validation.tenants {
        for link in &tenant.links {
            assert!(
                tenant.frames as f64 * link.static_flits_per_frame + 1e-9
                    >= link.measured_flits as f64,
                "tenant {} plane {} link {:?}: static {}/frame x {} frames \
                 under-approximates measured {} flits",
                tenant.tenant,
                link.plane,
                link.link,
                link.static_flits_per_frame,
                tenant.frames,
                link.measured_flits
            );
        }
        assert!(tenant.conservative, "tenant {} link check", tenant.tenant);
    }
    for (stat, meas) in validation
        .static_bounds
        .iter()
        .zip(&validation.measured_bounds)
    {
        assert_eq!(stat.name, meas.name);
        assert!(
            stat.slowdown_bound + 1e-9 >= meas.slowdown_bound,
            "tenant {}: static bound {} < measured bound {}",
            stat.name,
            stat.slowdown_bound,
            meas.slowdown_bound
        );
    }
    assert!(validation.conservative());
}

#[test]
fn static_bounds_dominate_the_naive_engine() {
    assert_conservative(SocEngine::Naive);
}

#[test]
fn static_bounds_dominate_the_event_engine() {
    assert_conservative(SocEngine::EventDriven);
}
