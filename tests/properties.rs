//! Cross-crate property-based tests of the core invariants.

use esp4ml::hls::FixedSpec;
use esp4ml::mem::ContigAlloc;
use esp4ml::noc::{Coord, Mesh, MeshConfig, MsgKind, Packet, Plane};
use esp4ml::runtime::{Dataflow, EspRuntime, ExecMode, RunSpec};
use esp4ml::soc::{ScaleKernel, SocBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every injected packet is eventually delivered, exactly once, with
    /// its payload intact — on random mesh sizes and random traffic.
    #[test]
    fn noc_delivers_all_packets(
        cols in 2usize..5,
        rows in 2usize..4,
        packets in proptest::collection::vec(
            (0u8..4, 0u8..3, 0u8..4, 0u8..3, 1usize..24), 1..12),
    ) {
        let mut mesh = Mesh::new(MeshConfig::new(cols, rows)).expect("mesh");
        let mut sent = Vec::new();
        for (i, (sx, sy, dx, dy, len)) in packets.into_iter().enumerate() {
            let src = Coord::new(sx % cols as u8, sy % rows as u8);
            let dst = Coord::new(dx % cols as u8, dy % rows as u8);
            let payload: Vec<u64> = (0..len as u64).map(|w| w + 1000 * i as u64).collect();
            let pkt = Packet::new(src, dst, Plane::DmaRsp, MsgKind::DmaData, payload.clone());
            // Retry injection under back-pressure.
            let mut pkt = Some(pkt);
            let mut guard = 0;
            while let Some(p) = pkt.take() {
                match mesh.inject(p) {
                    Ok(()) => {}
                    Err(esp4ml::noc::NocError::InjectQueueFull { .. }) => {
                        mesh.tick();
                        guard += 1;
                        prop_assert!(guard < 10_000);
                        // Re-create since inject consumed it... re-build:
                        pkt = Some(Packet::new(
                            src, dst, Plane::DmaRsp, MsgKind::DmaData, payload.clone()));
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
            sent.push((dst, payload));
        }
        // Drain with a generous budget, ejecting as we go.
        let mut received: Vec<(Coord, Vec<u64>)> = Vec::new();
        for _ in 0..200_000 {
            mesh.tick();
            for y in 0..rows as u8 {
                for x in 0..cols as u8 {
                    let c = Coord::new(x, y);
                    while let Some(p) = mesh.eject(c, Plane::DmaRsp) {
                        received.push((c, p.into_payload()));
                    }
                }
            }
            if received.len() == sent.len() && mesh.is_idle() {
                break;
            }
        }
        prop_assert_eq!(received.len(), sent.len());
        let norm = |mut v: Vec<(Coord, Vec<u64>)>| { v.sort(); v };
        prop_assert_eq!(norm(received), norm(sent));
    }

    /// The allocator never hands out overlapping regions and always reuses
    /// freed space after full cleanup.
    #[test]
    fn allocator_regions_are_disjoint(sizes in proptest::collection::vec(1u64..64, 1..20)) {
        let mut alloc = ContigAlloc::new(0, 2048);
        let mut live = Vec::new();
        for s in sizes {
            if let Ok(h) = alloc.alloc(s) {
                live.push(h);
            }
        }
        for (i, a) in live.iter().enumerate() {
            for b in &live[i + 1..] {
                let disjoint = a.base + a.len <= b.base || b.base + b.len <= a.base;
                prop_assert!(disjoint, "{a:?} overlaps {b:?}");
            }
        }
        alloc.free_all();
        prop_assert_eq!(alloc.alloc(2048).expect("all free").base, 0);
    }

    /// Fixed-point quantization error never exceeds half an LSB inside the
    /// representable range, for every supported format.
    #[test]
    fn quantization_error_bounded(
        total in 8u32..=24,
        int_bits in 2u32..=8,
        value in -20.0f64..20.0,
    ) {
        prop_assume!(int_bits < total);
        let spec = FixedSpec::new(total, int_bits).expect("valid spec");
        let max_val = spec.dequantize(spec.max_raw());
        let min_val = spec.dequantize(spec.min_raw());
        prop_assume!(value < max_val && value > min_val);
        let err = (spec.dequantize(spec.quantize(value)) - value).abs();
        prop_assert!(err <= spec.resolution() / 2.0 + 1e-12, "err {err}");
    }

    /// A two-stage accelerator pipeline computes identically in all three
    /// execution modes, for random frame counts and values-per-frame.
    #[test]
    fn modes_agree_on_random_pipelines(
        frames in 1u64..6,
        values in prop_oneof![Just(8u64), Just(16), Just(64)],
        seed_vals in proptest::collection::vec(1u64..100, 1..4),
    ) {
        let build = || {
            SocBuilder::new(3, 2)
                .processor(Coord::new(0, 0))
                .memory(Coord::new(1, 0))
                .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("a", values, 2)))
                .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("b", values, 3)))
                .build()
                .expect("floorplan")
        };
        let mut outputs: Vec<Vec<Vec<u64>>> = Vec::new();
        for mode in ExecMode::ALL {
            let mut rt = EspRuntime::new(build()).expect("runtime");
            let df = Dataflow::linear(&[&["a"], &["b"]]);
            let buf = rt.prepare(&df, frames).expect("buffers");
            for f in 0..frames {
                let base = seed_vals[f as usize % seed_vals.len()];
                let vals: Vec<u64> = (0..values).map(|i| (base + i) % 1000).collect();
                rt.write_frame(&buf, f, &vals).expect("write");
            }
            rt.run(&RunSpec::new(&df).mode(mode), &buf).expect("run");
            outputs.push(
                (0..frames)
                    .map(|f| rt.read_frame(&buf, f).expect("read"))
                    .collect(),
            );
        }
        prop_assert_eq!(&outputs[0], &outputs[1]);
        prop_assert_eq!(&outputs[1], &outputs[2]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// P2P_REG encoding round-trips for every source-count and coordinate
    /// combination the register supports.
    #[test]
    fn p2p_reg_roundtrip(
        store in proptest::bool::ANY,
        n_sources in 0usize..=4,
        coords in proptest::collection::vec((0u8..32, 0u8..32), 4),
    ) {
        use esp4ml::soc::P2pConfig;
        let sources: Vec<Coord> = coords[..n_sources]
            .iter()
            .map(|&(x, y)| Coord::new(x, y))
            .collect();
        let cfg = P2pConfig {
            store_enabled: store,
            load_enabled: !sources.is_empty(),
            sources,
        };
        let decoded = P2pConfig::from_reg(cfg.to_reg());
        prop_assert_eq!(decoded, cfg);
    }

    /// The memory-tile interleave map is a bijection: distinct addresses
    /// never share a (tile, local) slot, and split ranges cover exactly
    /// the requested words in order.
    #[test]
    fn mem_map_splits_cover_ranges(
        tiles in 1usize..=4,
        interleave_pow in 2u32..=9,
        addr in 0u64..5000,
        len in 1u64..2000,
    ) {
        use esp4ml::soc::MemMap;
        let coords: Vec<Coord> = (0..tiles).map(|i| Coord::new(i as u8, 0)).collect();
        let map = MemMap::new(coords, 1 << interleave_pow, 1 << 20);
        let chunks = map.split_range(addr, len);
        let covered: u64 = chunks.iter().map(|&(_, _, l)| l).sum();
        prop_assert_eq!(covered, len);
        // Chunk starts must agree with the per-address owner function.
        let mut a = addr;
        for &(tile, local, l) in &chunks {
            prop_assert_eq!(map.owner(a), (tile, local));
            a += l;
        }
    }

    /// Saturating fixed-point addition is commutative and bounded.
    #[test]
    fn fixed_add_commutative_and_bounded(
        a in -40.0f64..40.0,
        b in -40.0f64..40.0,
    ) {
        let spec = FixedSpec::HLS4ML_DEFAULT;
        let (ra, rb) = (spec.quantize(a), spec.quantize(b));
        prop_assert_eq!(spec.add(ra, rb), spec.add(rb, ra));
        let sum = spec.add(ra, rb);
        prop_assert!(sum <= spec.max_raw() && sum >= spec.min_raw());
    }

    /// Model (topology + weights) serialization round-trips to an
    /// identical function for random small architectures.
    #[test]
    fn model_files_roundtrip_functionally(
        hidden in 1usize..12,
        out in 1usize..6,
        seed in 0u64..1000,
    ) {
        use esp4ml::nn::{Activation, LayerSpec, Matrix, ModelFile, Sequential};
        let mut model = Sequential::with_seed(6, seed);
        model.push(LayerSpec::dense(hidden, Activation::Relu));
        model.push(LayerSpec::Dropout { rate: 0.1 });
        model.push(LayerSpec::dense(out, Activation::Sigmoid));
        let mut rebuilt =
            ModelFile::from_topology_json(&ModelFile::topology_json(&model)).expect("topo");
        ModelFile::load_weights_bytes(&mut rebuilt, &ModelFile::weights_bytes(&model))
            .expect("weights");
        let x = Matrix::from_vec(1, 6, vec![0.3, -0.1, 0.9, 0.0, -0.7, 0.5]);
        prop_assert_eq!(model.forward(&x), rebuilt.forward(&x));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `suggest_stage_widths` returns a wiring-legal width vector that
    /// meets the balancing target with the minimum number of accelerator
    /// instances, verified against an independent exhaustive search over
    /// every legal vector.
    #[test]
    fn suggested_stage_widths_are_optimal(
        iis in proptest::collection::vec(1u64..20_000, 1..5),
        max_width in 1usize..5,
    ) {
        use esp4ml::runtime::balance::{pipeline_interval, suggest_stage_widths};

        let suggested = suggest_stage_widths(&iis, max_width);

        // Shape and wiring legality: one width per stage, each within
        // 1..=max_width, and each transition either keeps the width or
        // fans in to a single instance.
        prop_assert_eq!(suggested.len(), iis.len());
        prop_assert!(suggested.iter().all(|&k| (1..=max_width).contains(&k)));
        for pair in suggested.windows(2) {
            prop_assert!(pair[0] == pair[1] || pair[1] == 1);
        }

        // The suggestion meets the target interval: the fastest stage's
        // single-instance II, floored by what max_width can achieve on
        // the slowest stage.
        let fastest = *iis.iter().min().unwrap();
        let floor = iis
            .iter()
            .map(|&ii| ii.div_ceil(max_width as u64))
            .max()
            .unwrap();
        let target = fastest.max(floor);
        prop_assert!(pipeline_interval(&iis, &suggested) <= target);

        // Exhaustive search: enumerate every wiring-legal width vector
        // and find the cheapest one meeting the target. The suggestion
        // must tie it on total instance count.
        let n = iis.len();
        let mut best = usize::MAX;
        let mut widths = vec![1usize; n];
        loop {
            let legal = widths
                .windows(2)
                .all(|p| p[0] == p[1] || p[1] == 1);
            if legal && pipeline_interval(&iis, &widths) <= target {
                best = best.min(widths.iter().sum());
            }
            // Odometer increment over {1..=max_width}^n.
            let mut i = 0;
            loop {
                if i == n {
                    break;
                }
                widths[i] += 1;
                if widths[i] <= max_width {
                    break;
                }
                widths[i] = 1;
                i += 1;
            }
            if i == n {
                break;
            }
        }
        prop_assert!(best != usize::MAX);
        prop_assert_eq!(suggested.iter().sum::<usize>(), best);
    }
}
