//! The versioned v1 REST surface: URL routing, tenant extraction and
//! JSON encoding on top of the transport-agnostic [`JobEngine`].
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | submit a [`RunRequest`] (201 queued, 200 cache hit) |
//! | `GET /v1/jobs/{id}` | job status snapshot |
//! | `GET /v1/jobs/{id}/artifacts/{kind}` | one artifact body |
//! | `DELETE /v1/jobs/{id}` | cancel (200 queued, 202 running, 409 finished) |
//! | `GET /v1/healthz` | engine health, enveloped (kind `healthz`) |
//! | `GET /v1/metrics` | Prometheus text exposition of the service metrics |
//!
//! `GET /v1/jobs/{id}?wait_ms=N` long-polls: the response is held until
//! the job's state or progress changes (or `N` ms elapse), so pollers
//! see every transition without a tight loop. Any numeric `N` is
//! accepted — values past [`MAX_WAIT_MS`] (even past `u64::MAX`) clamp
//! to it, never 400 — and `wait_ms=0` answers immediately.
//!
//! The tenant is the `X-Api-Key` header (default `anonymous`); quotas
//! and job visibility are scoped to it. Every JSON body carries
//! `schema_version` like all other machine-readable output in the
//! repo.

use crate::engine::{
    ArtifactResult, CancelOutcome, JobEngine, JobState, JobStatus, Priority, SubmitError,
};
use crate::http::{HttpRequest, HttpResponse};
use esp4ml::trace::schema::envelope_json;
use esp4ml_bench::request::{RunRequest, SCHEMA_VERSION};
use serde::{Deserialize, Map, Value};
use serde_json::json;
use std::time::Duration;

/// Upper bound on one `wait_ms` long-poll hold; longer waits must
/// re-poll (keeps a dead client from pinning a thread for minutes).
pub const MAX_WAIT_MS: u64 = 30_000;

/// The body of `POST /v1/jobs`.
#[derive(Debug, Clone, Deserialize)]
pub struct JobRequest {
    /// `high`, `normal` (default) or `low`.
    #[serde(default)]
    pub priority: String,
    /// The simulation request itself.
    pub request: RunRequest,
}

/// Encoding a [`Value`] tree cannot fail; keep the call sites terse.
fn encode(value: &Value) -> String {
    serde_json::to_string(value).expect("a Value always serializes")
}

fn error_body(message: &str) -> String {
    encode(&json!({
        "schema_version": SCHEMA_VERSION,
        "error": message,
    }))
}

fn status_value(status: &JobStatus) -> Value {
    let mut map = Map::new();
    map.insert("schema_version".to_string(), Value::from(SCHEMA_VERSION));
    map.insert("job_id".to_string(), Value::from(status.id));
    map.insert("state".to_string(), Value::from(status.state.name()));
    map.insert("priority".to_string(), Value::from(status.priority.name()));
    map.insert("workload".to_string(), Value::from(status.workload.clone()));
    map.insert("cached".to_string(), Value::from(status.cached));
    map.insert(
        "cache_key".to_string(),
        Value::from(format!("{:016x}", status.cache_key)),
    );
    map.insert(
        "error".to_string(),
        status.error.clone().map(Value::from).unwrap_or(Value::Null),
    );
    map.insert(
        "artifacts".to_string(),
        Value::Array(
            status
                .artifacts
                .iter()
                .map(|k| Value::from(k.as_str()))
                .collect(),
        ),
    );
    map.insert(
        "verdict_ok".to_string(),
        status.verdict_ok.map(Value::from).unwrap_or(Value::Null),
    );
    map.insert(
        "progress".to_string(),
        status
            .progress
            .as_ref()
            .and_then(|p| serde_json::to_value(p).ok())
            .unwrap_or(Value::Null),
    );
    map.insert("version".to_string(), Value::from(status.version));
    Value::Object(map)
}

fn tenant(req: &HttpRequest) -> String {
    match req.header("x-api-key") {
        Some(key) if !key.is_empty() => key.to_string(),
        _ => "anonymous".to_string(),
    }
}

fn submit(engine: &JobEngine, req: &HttpRequest) -> HttpResponse {
    let job: JobRequest = match serde_json::from_str(&req.body) {
        Ok(job) => job,
        Err(e) => {
            return HttpResponse::json(400, error_body(&format!("malformed job request: {e}")))
        }
    };
    let priority = match Priority::from_name(&job.priority) {
        Ok(p) => p,
        Err(msg) => return HttpResponse::json(400, error_body(&msg)),
    };
    match engine.submit(&tenant(req), priority, &job.request) {
        Ok(outcome) => {
            let status = if outcome.cached { 200 } else { 201 };
            HttpResponse::json(
                status,
                encode(&json!({
                    "schema_version": SCHEMA_VERSION,
                    "job_id": outcome.id,
                    "state": outcome.state.name(),
                    "cached": outcome.cached,
                    "cache_key": format!("{:016x}", outcome.cache_key),
                })),
            )
        }
        Err(SubmitError::Invalid(msg)) => HttpResponse::json(400, error_body(&msg)),
        Err(SubmitError::Rejected(report)) => {
            let diagnostics = match serde_json::to_value(&report.diagnostics) {
                Ok(v) => v,
                Err(e) => return HttpResponse::json(500, error_body(&e.to_string())),
            };
            HttpResponse::json(
                422,
                encode(&json!({
                    "schema_version": SCHEMA_VERSION,
                    "error": format!(
                        "rejected by the admission lint: {} error(s); nothing was simulated",
                        report.error_count()
                    ),
                    "diagnostics": diagnostics,
                })),
            )
        }
        Err(SubmitError::QuotaExceeded { queued, limit }) => HttpResponse::json(
            429,
            encode(&json!({
                "schema_version": SCHEMA_VERSION,
                "error": format!(
                    "tenant queue quota exceeded: {queued} job(s) queued, limit {limit}"
                ),
            })),
        ),
    }
}

fn job_status(engine: &JobEngine, req: &HttpRequest, id: u64) -> HttpResponse {
    let tenant = tenant(req);
    let status = match req.query_param("wait_ms") {
        None => engine.job(&tenant, id),
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => {
                engine.wait_for_update(&tenant, id, Duration::from_millis(ms.min(MAX_WAIT_MS)))
            }
            // Any all-digit value is a valid wait: one past `u64::MAX`
            // is still just "longer than MAX_WAIT_MS", so overflow
            // clamps like every other oversized value instead of
            // 400ing. Only non-numeric input is malformed.
            Err(_) if !raw.is_empty() && raw.bytes().all(|b| b.is_ascii_digit()) => {
                engine.wait_for_update(&tenant, id, Duration::from_millis(MAX_WAIT_MS))
            }
            Err(_) => {
                return HttpResponse::json(400, error_body(&format!("bad wait_ms value {raw}")))
            }
        },
    };
    match status {
        Some(status) => HttpResponse::json(200, encode(&status_value(&status))),
        None => HttpResponse::json(404, error_body(&format!("no such job {id}"))),
    }
}

fn job_artifact(engine: &JobEngine, req: &HttpRequest, id: u64, kind: &str) -> HttpResponse {
    match engine.artifact(&tenant(req), id, kind) {
        ArtifactResult::NoSuchJob => {
            HttpResponse::json(404, error_body(&format!("no such job {id}")))
        }
        ArtifactResult::NotReady(state) => HttpResponse::json(
            409,
            error_body(&format!(
                "job {id} is {}; artifacts exist only once it is done",
                state.name()
            )),
        ),
        ArtifactResult::NoSuchKind(kinds) => HttpResponse::json(
            404,
            error_body(&format!(
                "job {id} has no {kind} artifact; available: {}",
                kinds.join(", ")
            )),
        ),
        // Artifacts are served verbatim — for the metrics artifact this
        // is the byte-identity contract with the CLI `--metrics` file.
        ArtifactResult::Body(body) => {
            if kind == "metrics"
                || kind == "report"
                || kind == "campaign"
                || kind == "trace"
                || kind == "spans"
            {
                HttpResponse::json(200, body)
            } else {
                HttpResponse {
                    status: 200,
                    content_type: "text/plain; charset=utf-8".to_string(),
                    body,
                }
            }
        }
    }
}

fn cancel(engine: &JobEngine, req: &HttpRequest, id: u64) -> HttpResponse {
    let body = |state: &str, note: &str| {
        encode(&json!({
            "schema_version": SCHEMA_VERSION,
            "job_id": id,
            "state": state,
            "note": note,
        }))
    };
    match engine.cancel(&tenant(req), id) {
        None => HttpResponse::json(404, error_body(&format!("no such job {id}"))),
        Some(CancelOutcome::Cancelled) => HttpResponse::json(
            200,
            body(JobState::Cancelled.name(), "removed from the queue"),
        ),
        Some(CancelOutcome::CancelRequested) => HttpResponse::json(
            202,
            body(
                JobState::Running.name(),
                "cancellation requested; the result will be discarded when the worker finishes",
            ),
        ),
        Some(CancelOutcome::AlreadyFinished) => HttpResponse::json(
            409,
            error_body(&format!("job {id} already finished; nothing to cancel")),
        ),
    }
}

fn healthz(engine: &JobEngine) -> HttpResponse {
    let health = engine.health();
    HttpResponse::json(
        200,
        envelope_json(
            "healthz",
            json!({
                "status": "ok",
                "queued": health.queued,
                "running": health.running,
                "finished": health.finished,
                "cache_entries": health.cache_entries,
                "workers": health.workers,
                "uptime_secs": health.uptime_secs,
                "version": health.version,
                "cache_hits": health.cache_hits,
                "cache_misses": health.cache_misses,
                "cache_evictions": health.cache_evictions,
            }),
        ),
    )
}

fn metrics(engine: &JobEngine) -> HttpResponse {
    HttpResponse {
        status: 200,
        content_type: "text/plain; version=0.0.4; charset=utf-8".to_string(),
        body: engine.render_metrics(),
    }
}

/// Routes one parsed request to the engine and encodes the response.
///
/// Every request increments `espserve_http_requests_total` labeled by
/// the matched route *pattern* (`/v1/jobs/{id}`, not the literal path
/// — literal ids would make the label set unbounded), method and
/// response status.
pub fn route(engine: &JobEngine, req: &HttpRequest) -> HttpResponse {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let (pattern, response) = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => ("/v1/healthz", healthz(engine)),
        ("GET", ["v1", "metrics"]) => ("/v1/metrics", metrics(engine)),
        ("POST", ["v1", "jobs"]) => ("/v1/jobs", submit(engine, req)),
        ("GET", ["v1", "jobs", id]) => (
            "/v1/jobs/{id}",
            match id.parse() {
                Ok(id) => job_status(engine, req, id),
                Err(_) => HttpResponse::json(400, error_body(&format!("bad job id {id}"))),
            },
        ),
        ("GET", ["v1", "jobs", id, "artifacts", kind]) => (
            "/v1/jobs/{id}/artifacts/{kind}",
            match id.parse() {
                Ok(id) => job_artifact(engine, req, id, kind),
                Err(_) => HttpResponse::json(400, error_body(&format!("bad job id {id}"))),
            },
        ),
        ("DELETE", ["v1", "jobs", id]) => (
            "/v1/jobs/{id}",
            match id.parse() {
                Ok(id) => cancel(engine, req, id),
                Err(_) => HttpResponse::json(400, error_body(&format!("bad job id {id}"))),
            },
        ),
        ("POST" | "DELETE", ["v1", "healthz"]) | ("DELETE" | "PUT", ["v1", "jobs"]) => (
            "other",
            HttpResponse::json(405, error_body("method not allowed")),
        ),
        _ => (
            "other",
            HttpResponse::json(
                404,
                error_body(&format!("no route for {} {}", req.method, req.path)),
            ),
        ),
    };
    engine
        .metrics()
        .incr_http(pattern, &req.method, response.status);
    response
}
