//! The transport-agnostic job engine: a FIFO-within-priority queue of
//! [`RunRequest`]s, a worker pool draining it through
//! [`esp4ml_bench::request::execute`], per-tenant quotas, cooperative
//! cancellation, and a deterministic result cache.
//!
//! The cache is sound because requests have a deterministic identity:
//! [`RunRequest::cache_key`] hashes the canonical normalized form
//! (worker count excluded — it never changes results), and the
//! simulator is seeded and engine-byte-identical, so two requests with
//! equal keys produce byte-equal responses. A cache hit therefore
//! returns a job that is `done` before any worker touches it.

use esp4ml::apps::TrainedModels;
use esp4ml_bench::request::{self, RequestError, RunRequest, RunResponse};
use esp4ml_check::Report;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Scheduling priority: jobs drain high → normal → low, FIFO within a
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Drained first.
    High,
    /// The default class.
    Normal,
    /// Drained last.
    Low,
}

impl Priority {
    /// Parses the wire name; empty means [`Priority::Normal`].
    ///
    /// # Errors
    ///
    /// A printable message on unknown names.
    pub fn from_name(name: &str) -> Result<Priority, String> {
        match name {
            "high" => Ok(Priority::High),
            "" | "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!(
                "unknown priority {other}; expected high, normal or low"
            )),
        }
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted and waiting for a worker.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished successfully; artifacts are available.
    Done,
    /// The run failed; see the job's `error`.
    Failed,
    /// Cancelled before (or while) running; no artifacts.
    Cancelled,
}

impl JobState {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Engine sizing and per-tenant quotas.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; 0 means jobs only run when
    /// [`JobEngine::run_next`] is called (deterministic test mode).
    pub workers: usize,
    /// Maximum `queued` jobs one tenant may hold (submission returns
    /// quota-exceeded beyond it).
    pub max_queued_per_tenant: usize,
    /// Maximum jobs of one tenant simulating concurrently; further
    /// jobs stay queued until one finishes.
    pub max_running_per_tenant: usize,
    /// Result-cache capacity in responses (oldest evicted first).
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            max_queued_per_tenant: 16,
            max_running_per_tenant: 2,
            cache_capacity: 64,
        }
    }
}

/// Why a submission was refused (no job was created).
#[derive(Debug)]
pub enum SubmitError {
    /// The request is malformed — HTTP 400.
    Invalid(String),
    /// The espcheck admission lint found errors — HTTP 422, diagnostics
    /// with their `E`-codes in the report.
    Rejected(Report),
    /// The tenant's queued-job quota is exhausted — HTTP 429.
    QuotaExceeded {
        /// Jobs the tenant already has queued.
        queued: usize,
        /// The per-tenant limit.
        limit: usize,
    },
}

/// What a successful submission created.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The job id.
    pub id: u64,
    /// `queued`, or `done` immediately on a cache hit.
    pub state: JobState,
    /// Whether the result came from the deterministic cache.
    pub cached: bool,
    /// The request's deterministic cache key.
    pub cache_key: u64,
}

/// A point-in-time snapshot of one job, safe to serialize.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job id.
    pub id: u64,
    /// Owning tenant (API key).
    pub tenant: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Current state.
    pub state: JobState,
    /// Workload label of the request.
    pub workload: String,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// The request's deterministic cache key.
    pub cache_key: u64,
    /// Failure detail when `state == failed`.
    pub error: Option<String>,
    /// Artifact kinds available once `state == done`.
    pub artifacts: Vec<String>,
    /// The workload verdict (`ok` flag), when done.
    pub verdict_ok: Option<bool>,
}

/// Outcome of a cancellation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued and is now cancelled.
    Cancelled,
    /// The job is mid-simulation; it will be marked cancelled when the
    /// worker finishes (simulation itself is not interruptible) and its
    /// result discarded.
    CancelRequested,
    /// The job had already finished; nothing to cancel.
    AlreadyFinished,
}

/// Engine health counters for `/v1/healthz`.
#[derive(Debug, Clone)]
pub struct EngineHealth {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently simulating.
    pub running: usize,
    /// Jobs in a terminal state.
    pub finished: usize,
    /// Responses held by the result cache.
    pub cache_entries: usize,
    /// Worker threads configured.
    pub workers: usize,
}

/// Fetching an artifact from a job.
#[derive(Debug)]
pub enum ArtifactResult {
    /// The job id does not exist (or belongs to another tenant).
    NoSuchJob,
    /// The job exists but is not `done`.
    NotReady(JobState),
    /// The job is done but has no artifact of that kind; the available
    /// kinds ride along.
    NoSuchKind(Vec<String>),
    /// The artifact body.
    Body(String),
}

struct Job {
    tenant: String,
    priority: Priority,
    state: JobState,
    request: RunRequest,
    cache_key: u64,
    cached: bool,
    cancel_requested: bool,
    error: Option<String>,
    response: Option<Arc<RunResponse>>,
}

struct EngineState {
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
    queues: [VecDeque<u64>; 3],
    cache: HashMap<u64, Arc<RunResponse>>,
    cache_order: VecDeque<u64>,
}

/// The job engine. Wrap it in an [`Arc`] and call [`JobEngine::start`]
/// to spawn the worker pool, or drive it manually with
/// [`JobEngine::run_next`].
pub struct JobEngine {
    state: Mutex<EngineState>,
    ready: Condvar,
    models: TrainedModels,
    config: EngineConfig,
    shutdown: AtomicBool,
}

impl JobEngine {
    /// A fresh engine with untrained (deterministic) models.
    pub fn new(config: EngineConfig) -> JobEngine {
        JobEngine {
            state: Mutex::new(EngineState {
                next_id: 1,
                jobs: BTreeMap::new(),
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                cache: HashMap::new(),
                cache_order: VecDeque::new(),
            }),
            ready: Condvar::new(),
            models: TrainedModels::untrained(),
            config,
            shutdown: AtomicBool::new(false),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Spawns the configured worker threads. Threads exit when
    /// [`JobEngine::stop`] is called.
    pub fn start(self: &Arc<Self>) {
        for _ in 0..self.config.workers {
            let engine = Arc::clone(self);
            std::thread::spawn(move || engine.worker_loop());
        }
    }

    /// Asks the worker threads to exit after their current job.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// Validates, admission-lints and enqueues one request for
    /// `tenant`. A cache hit creates the job directly in `done` with
    /// the cached response attached — no simulation, no queue slot.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]; no job is created on any error.
    pub fn submit(
        &self,
        tenant: &str,
        priority: Priority,
        request: &RunRequest,
    ) -> Result<SubmitOutcome, SubmitError> {
        let normalized = request.normalized();
        normalized.validate().map_err(SubmitError::Invalid)?;
        let report = request::admission(&normalized);
        if report.has_errors() {
            return Err(SubmitError::Rejected(report));
        }
        let cache_key = normalized.cache_key();
        let mut st = self.state.lock().expect("engine lock");
        if let Some(resp) = st.cache.get(&cache_key).cloned() {
            let id = st.next_id;
            st.next_id += 1;
            st.jobs.insert(
                id,
                Job {
                    tenant: tenant.to_string(),
                    priority,
                    state: JobState::Done,
                    request: normalized,
                    cache_key,
                    cached: true,
                    cancel_requested: false,
                    error: None,
                    response: Some(resp),
                },
            );
            return Ok(SubmitOutcome {
                id,
                state: JobState::Done,
                cached: true,
                cache_key,
            });
        }
        let queued = st
            .jobs
            .values()
            .filter(|j| j.tenant == tenant && j.state == JobState::Queued)
            .count();
        if queued >= self.config.max_queued_per_tenant {
            return Err(SubmitError::QuotaExceeded {
                queued,
                limit: self.config.max_queued_per_tenant,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            Job {
                tenant: tenant.to_string(),
                priority,
                state: JobState::Queued,
                request: normalized,
                cache_key,
                cached: false,
                cancel_requested: false,
                error: None,
                response: None,
            },
        );
        st.queues[priority.index()].push_back(id);
        drop(st);
        self.ready.notify_one();
        Ok(SubmitOutcome {
            id,
            state: JobState::Queued,
            cached: false,
            cache_key,
        })
    }

    /// Picks the next runnable job — highest priority class first, FIFO
    /// within a class, skipping jobs whose tenant is already at its
    /// concurrent-run quota — and removes it from its queue.
    fn next_runnable(&self, st: &mut EngineState) -> Option<u64> {
        for class in 0..st.queues.len() {
            for pos in 0..st.queues[class].len() {
                let id = st.queues[class][pos];
                let tenant = st.jobs[&id].tenant.clone();
                let running = st
                    .jobs
                    .values()
                    .filter(|j| j.tenant == tenant && j.state == JobState::Running)
                    .count();
                if running < self.config.max_running_per_tenant {
                    st.queues[class].remove(pos);
                    return Some(id);
                }
            }
        }
        None
    }

    /// Dequeues and executes one job on the calling thread. Returns
    /// `false` when nothing was runnable. This is the whole execution
    /// path — worker threads just call it in a loop — so tests can
    /// drive the engine deterministically with `workers: 0`.
    pub fn run_next(&self) -> bool {
        let (id, request) = {
            let mut st = self.state.lock().expect("engine lock");
            let Some(id) = self.next_runnable(&mut st) else {
                return false;
            };
            let job = st.jobs.get_mut(&id).expect("queued job exists");
            job.state = JobState::Running;
            (id, job.request.clone())
        };
        let result = request::execute(&request, &self.models);
        let mut st = self.state.lock().expect("engine lock");
        let cache_capacity = self.config.cache_capacity;
        let job = st.jobs.get_mut(&id).expect("running job exists");
        if job.cancel_requested {
            // The submitter walked away mid-run: discard the result
            // (don't even cache it — a cancelled job must leave no
            // observable artifacts).
            job.state = JobState::Cancelled;
        } else {
            match result {
                Ok(response) => {
                    let response = Arc::new(response);
                    job.state = JobState::Done;
                    job.response = Some(Arc::clone(&response));
                    let key = job.cache_key;
                    if cache_capacity > 0 && !st.cache.contains_key(&key) {
                        st.cache.insert(key, response);
                        st.cache_order.push_back(key);
                        while st.cache.len() > cache_capacity {
                            if let Some(old) = st.cache_order.pop_front() {
                                st.cache.remove(&old);
                            }
                        }
                    }
                }
                Err(e) => {
                    job.state = JobState::Failed;
                    job.error = Some(match e {
                        RequestError::Invalid(msg) => msg,
                        RequestError::Rejected(report) => format!(
                            "rejected by admission lint ({} error(s))",
                            report.error_count()
                        ),
                        RequestError::Run(err) => err.to_string(),
                    });
                }
            }
        }
        drop(st);
        self.ready.notify_all();
        true
    }

    fn worker_loop(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            if !self.run_next() {
                let st = self.state.lock().expect("engine lock");
                // Timeout so shutdown is noticed even without traffic.
                let _ = self
                    .ready
                    .wait_timeout(st, Duration::from_millis(50))
                    .expect("engine lock");
            }
        }
    }

    /// Snapshot of one job, if it exists and belongs to `tenant`.
    pub fn job(&self, tenant: &str, id: u64) -> Option<JobStatus> {
        let st = self.state.lock().expect("engine lock");
        let job = st.jobs.get(&id)?;
        if job.tenant != tenant {
            return None;
        }
        Some(JobStatus {
            id,
            tenant: job.tenant.clone(),
            priority: job.priority,
            state: job.state,
            workload: job.request.workload.label().to_string(),
            cached: job.cached,
            cache_key: job.cache_key,
            error: job.error.clone(),
            artifacts: job
                .response
                .as_ref()
                .map(|r| r.artifacts.keys().cloned().collect())
                .unwrap_or_default(),
            verdict_ok: job.response.as_ref().map(|r| r.verdict.ok),
        })
    }

    /// The full response of a `done` job.
    pub fn response(&self, tenant: &str, id: u64) -> Option<Arc<RunResponse>> {
        let st = self.state.lock().expect("engine lock");
        let job = st.jobs.get(&id)?;
        if job.tenant != tenant {
            return None;
        }
        job.response.clone()
    }

    /// One named artifact of a `done` job.
    pub fn artifact(&self, tenant: &str, id: u64, kind: &str) -> ArtifactResult {
        let st = self.state.lock().expect("engine lock");
        let Some(job) = st.jobs.get(&id) else {
            return ArtifactResult::NoSuchJob;
        };
        if job.tenant != tenant {
            return ArtifactResult::NoSuchJob;
        }
        let Some(response) = &job.response else {
            return ArtifactResult::NotReady(job.state);
        };
        match response.artifacts.get(kind) {
            Some(body) => ArtifactResult::Body(body.clone()),
            None => ArtifactResult::NoSuchKind(response.artifacts.keys().cloned().collect()),
        }
    }

    /// Cancels a job: queued jobs are removed immediately, running jobs
    /// are flagged (their result is discarded when the worker returns),
    /// finished jobs are left alone. `None` when the id does not exist
    /// or belongs to another tenant.
    pub fn cancel(&self, tenant: &str, id: u64) -> Option<CancelOutcome> {
        let mut st = self.state.lock().expect("engine lock");
        let job = st.jobs.get(&id)?;
        if job.tenant != tenant {
            return None;
        }
        let outcome = match job.state {
            JobState::Queued => {
                let class = job.priority.index();
                st.queues[class].retain(|&q| q != id);
                st.jobs.get_mut(&id).expect("job exists").state = JobState::Cancelled;
                CancelOutcome::Cancelled
            }
            JobState::Running => {
                st.jobs.get_mut(&id).expect("job exists").cancel_requested = true;
                CancelOutcome::CancelRequested
            }
            _ => CancelOutcome::AlreadyFinished,
        };
        Some(outcome)
    }

    /// Engine health counters.
    pub fn health(&self) -> EngineHealth {
        let st = self.state.lock().expect("engine lock");
        let queued = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .count();
        let running = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count();
        let finished = st.jobs.values().filter(|j| j.state.is_terminal()).count();
        EngineHealth {
            queued,
            running,
            finished,
            cache_entries: st.cache.len(),
            workers: self.config.workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_bench::request::WorkloadKind;

    fn test_engine() -> JobEngine {
        JobEngine::new(EngineConfig {
            workers: 0,
            max_queued_per_tenant: 2,
            max_running_per_tenant: 1,
            cache_capacity: 4,
        })
    }

    fn small_request() -> RunRequest {
        let mut r = RunRequest::new(WorkloadKind::Fig8);
        r.frames = 2;
        r.configs = vec![0];
        r
    }

    #[test]
    fn submit_run_fetch_roundtrip() {
        let engine = test_engine();
        let out = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        assert_eq!(out.state, JobState::Queued);
        assert!(!out.cached);
        assert!(engine.run_next());
        let status = engine.job("alice", out.id).expect("visible");
        assert_eq!(status.state, JobState::Done);
        assert!(status.artifacts.contains(&"metrics".to_string()));
        match engine.artifact("alice", out.id, "metrics") {
            ArtifactResult::Body(body) => assert!(body.contains("schema_version")),
            other => panic!("expected body, got {other:?}"),
        }
        // Foreign tenants can't see the job.
        assert!(engine.job("mallory", out.id).is_none());
        assert!(matches!(
            engine.artifact("mallory", out.id, "metrics"),
            ArtifactResult::NoSuchJob
        ));
    }

    #[test]
    fn identical_resubmission_hits_the_cache() {
        let engine = test_engine();
        let first = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        assert!(engine.run_next());
        let again = engine
            .submit("bob", Priority::Normal, &small_request())
            .expect("submits");
        assert_eq!(again.state, JobState::Done, "cache hit is instantly done");
        assert!(again.cached);
        assert_eq!(again.cache_key, first.cache_key);
        let a = engine.response("alice", first.id).expect("response");
        let b = engine.response("bob", again.id).expect("response");
        assert_eq!(a.to_json(), b.to_json(), "cached bytes are identical");
        assert!(!engine.run_next(), "nothing left to simulate");
    }

    #[test]
    fn queued_quota_is_enforced_per_tenant() {
        let engine = test_engine();
        for _ in 0..2 {
            // Vary frames so the cache never collapses the submissions.
            engine
                .submit("alice", Priority::Normal, &small_request())
                .expect("within quota");
        }
        // Both submissions above dedupe to... no: both are identical and
        // both queued (cache only fills after a run) — quota now full.
        match engine.submit("alice", Priority::Normal, &small_request()) {
            Err(SubmitError::QuotaExceeded { queued, limit }) => {
                assert_eq!((queued, limit), (2, 2));
            }
            other => panic!("expected quota error, got {other:?}"),
        }
        // A different tenant still has its own quota.
        engine
            .submit("bob", Priority::Normal, &small_request())
            .expect("separate quota");
    }

    #[test]
    fn priority_classes_drain_high_first() {
        let engine = test_engine();
        let mut low = small_request();
        low.frames = 3;
        let low_id = engine
            .submit("alice", Priority::Low, &low)
            .expect("submits")
            .id;
        let mut high = small_request();
        high.frames = 4;
        let high_id = engine
            .submit("bob", Priority::High, &high)
            .expect("submits")
            .id;
        assert!(engine.run_next());
        assert_eq!(
            engine.job("bob", high_id).unwrap().state,
            JobState::Done,
            "high-priority job ran first despite later submission"
        );
        assert_eq!(engine.job("alice", low_id).unwrap().state, JobState::Queued);
    }

    #[test]
    fn cancel_mid_queue_removes_the_job() {
        let engine = test_engine();
        let out = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        assert_eq!(
            engine.cancel("alice", out.id),
            Some(CancelOutcome::Cancelled)
        );
        assert_eq!(
            engine.job("alice", out.id).unwrap().state,
            JobState::Cancelled
        );
        assert!(!engine.run_next(), "cancelled job never runs");
        assert_eq!(
            engine.cancel("alice", out.id),
            Some(CancelOutcome::AlreadyFinished)
        );
        assert!(engine.cancel("mallory", out.id).is_none());
    }

    #[test]
    fn invalid_and_rejected_submissions_create_no_job() {
        let engine = test_engine();
        let mut bad = small_request();
        bad.engine = "warp".into();
        assert!(matches!(
            engine.submit("alice", Priority::Normal, &bad),
            Err(SubmitError::Invalid(_))
        ));
        let mut rejected = small_request();
        rejected.fault_plan = Some(
            esp4ml_fault::FaultPlan::new(1)
                .with(esp4ml_fault::FaultSpec::transient_hang("no-such-device", 0)),
        );
        match engine.submit("alice", Priority::Normal, &rejected) {
            Err(SubmitError::Rejected(report)) => assert!(report.has_errors()),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(engine.health().queued, 0, "no job slots consumed");
    }

    #[test]
    fn failed_runs_surface_the_error() {
        // An empty-selection faults campaign can't fail deterministically
        // here, so exercise Failed via a request that passes validation
        // and admission but dies in the simulator: nothing in the current
        // workload set does, so assert health bookkeeping instead.
        let engine = test_engine();
        let out = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        assert_eq!(engine.health().queued, 1);
        assert!(engine.run_next());
        let health = engine.health();
        assert_eq!(health.queued, 0);
        assert_eq!(health.finished, 1);
        assert_eq!(health.cache_entries, 1);
        assert_eq!(engine.job("alice", out.id).unwrap().error, None);
    }
}
