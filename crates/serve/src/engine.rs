//! The transport-agnostic job engine: a FIFO-within-priority queue of
//! [`RunRequest`]s, a worker pool draining it through
//! [`esp4ml_bench::request::execute`], per-tenant quotas, cooperative
//! cancellation, and a deterministic result cache.
//!
//! The cache is sound because requests have a deterministic identity:
//! [`RunRequest::cache_key`] hashes the canonical normalized form
//! (worker count excluded — it never changes results), and the
//! simulator is seeded and engine-byte-identical, so two requests with
//! equal keys produce byte-equal responses. A cache hit therefore
//! returns a job that is `done` before any worker touches it.

use crate::log::Logger;
use crate::metrics::{self, ServeMetrics};
use esp4ml::apps::TrainedModels;
use esp4ml_bench::request::{self, Progress, ProgressSink, RequestError, RunRequest, RunResponse};
use esp4ml_check::Report;
use serde_json::json;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A `Duration` in whole milliseconds as `u64`, saturating at
/// `u64::MAX` — `as u64` on the `u128` from [`Duration::as_millis`]
/// silently truncates, which would report a wrapped-around (tiny)
/// wait after a pathological clock jump.
fn saturating_millis(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// Scheduling priority: jobs drain high → normal → low, FIFO within a
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Drained first.
    High,
    /// The default class.
    Normal,
    /// Drained last.
    Low,
}

impl Priority {
    /// Parses the wire name; empty means [`Priority::Normal`].
    ///
    /// # Errors
    ///
    /// A printable message on unknown names.
    pub fn from_name(name: &str) -> Result<Priority, String> {
        match name {
            "high" => Ok(Priority::High),
            "" | "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!(
                "unknown priority {other}; expected high, normal or low"
            )),
        }
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted and waiting for a worker.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished successfully; artifacts are available.
    Done,
    /// The run failed; see the job's `error`.
    Failed,
    /// Cancelled before (or while) running; no artifacts.
    Cancelled,
}

impl JobState {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Engine sizing and per-tenant quotas.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; 0 means jobs only run when
    /// [`JobEngine::run_next`] is called (deterministic test mode).
    pub workers: usize,
    /// Maximum `queued` jobs one tenant may hold (submission returns
    /// quota-exceeded beyond it).
    pub max_queued_per_tenant: usize,
    /// Maximum jobs of one tenant simulating concurrently; further
    /// jobs stay queued until one finishes.
    pub max_running_per_tenant: usize,
    /// Result-cache capacity in responses (least-recently-used evicted
    /// first; a cache hit counts as a use).
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            max_queued_per_tenant: 16,
            max_running_per_tenant: 2,
            cache_capacity: 64,
        }
    }
}

/// Why a submission was refused (no job was created).
#[derive(Debug)]
pub enum SubmitError {
    /// The request is malformed — HTTP 400.
    Invalid(String),
    /// The espcheck admission lint found errors — HTTP 422, diagnostics
    /// with their `E`-codes in the report.
    Rejected(Report),
    /// The tenant's queued-job quota is exhausted — HTTP 429.
    QuotaExceeded {
        /// Jobs the tenant already has queued.
        queued: usize,
        /// The per-tenant limit.
        limit: usize,
    },
}

/// What a successful submission created.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The job id.
    pub id: u64,
    /// `queued`, or `done` immediately on a cache hit.
    pub state: JobState,
    /// Whether the result came from the deterministic cache.
    pub cached: bool,
    /// The request's deterministic cache key.
    pub cache_key: u64,
}

/// A point-in-time snapshot of one job, safe to serialize.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job id.
    pub id: u64,
    /// Owning tenant (API key).
    pub tenant: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Current state.
    pub state: JobState,
    /// Workload label of the request.
    pub workload: String,
    /// Whether the result came from the cache.
    pub cached: bool,
    /// The request's deterministic cache key.
    pub cache_key: u64,
    /// Failure detail when `state == failed`.
    pub error: Option<String>,
    /// Artifact kinds available once `state == done`.
    pub artifacts: Vec<String>,
    /// The workload verdict (`ok` flag), when done.
    pub verdict_ok: Option<bool>,
    /// Latest progress snapshot (absent before the first unit
    /// completes, and always absent for cache hits — nothing ran).
    pub progress: Option<Progress>,
    /// Change counter: bumped on every state or progress transition.
    /// Long-polls wait for it to move past the value they last saw.
    pub version: u64,
}

/// Outcome of a cancellation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued and is now cancelled.
    Cancelled,
    /// The job is mid-simulation; it will be marked cancelled when the
    /// worker finishes (simulation itself is not interruptible) and its
    /// result discarded.
    CancelRequested,
    /// The job had already finished; nothing to cancel.
    AlreadyFinished,
}

/// Engine health counters for `/v1/healthz`.
#[derive(Debug, Clone)]
pub struct EngineHealth {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently simulating.
    pub running: usize,
    /// Jobs in a terminal state.
    pub finished: usize,
    /// Responses held by the result cache.
    pub cache_entries: usize,
    /// Worker threads configured.
    pub workers: usize,
    /// Whole seconds since the engine was created (monotonic clock).
    pub uptime_secs: u64,
    /// Workspace crate version serving the API.
    pub version: &'static str,
    /// Cumulative submissions answered from the result cache.
    pub cache_hits: u64,
    /// Cumulative executed jobs that had to simulate.
    pub cache_misses: u64,
    /// Cumulative cached responses dropped by the capacity bound.
    pub cache_evictions: u64,
}

/// Fetching an artifact from a job.
#[derive(Debug)]
pub enum ArtifactResult {
    /// The job id does not exist (or belongs to another tenant).
    NoSuchJob,
    /// The job exists but is not `done`.
    NotReady(JobState),
    /// The job is done but has no artifact of that kind; the available
    /// kinds ride along.
    NoSuchKind(Vec<String>),
    /// The artifact body.
    Body(String),
}

struct Job {
    tenant: String,
    priority: Priority,
    state: JobState,
    request: RunRequest,
    cache_key: u64,
    cached: bool,
    cancel_requested: bool,
    error: Option<String>,
    response: Option<Arc<RunResponse>>,
    /// Every progress snapshot published so far, in order (bounded by
    /// the request's work-unit count).
    progress: Vec<Progress>,
    /// Bumped on every observable change (state or progress); the
    /// long-poll wait key.
    version: u64,
    queued_at: Instant,
}

struct EngineState {
    next_id: u64,
    jobs: BTreeMap<u64, Job>,
    queues: [VecDeque<u64>; 3],
    cache: HashMap<u64, Arc<RunResponse>>,
    cache_order: VecDeque<u64>,
}

/// The job engine. Wrap it in an [`Arc`] and call [`JobEngine::start`]
/// to spawn the worker pool, or drive it manually with
/// [`JobEngine::run_next`].
pub struct JobEngine {
    state: Mutex<EngineState>,
    ready: Condvar,
    /// Woken on job state/progress changes — separate from `ready` so
    /// long-polls never steal wakeups meant for idle workers.
    watch: Condvar,
    models: TrainedModels,
    config: EngineConfig,
    shutdown: AtomicBool,
    metrics: ServeMetrics,
    logger: Logger,
    started: Instant,
}

impl JobEngine {
    /// A fresh engine with untrained (deterministic) models and
    /// logging disabled (tests and embedders opt in via
    /// [`JobEngine::with_logger`]).
    pub fn new(config: EngineConfig) -> JobEngine {
        JobEngine::with_logger(config, Logger::disabled())
    }

    /// A fresh engine emitting lifecycle events through `logger`.
    pub fn with_logger(config: EngineConfig, logger: Logger) -> JobEngine {
        JobEngine {
            state: Mutex::new(EngineState {
                next_id: 1,
                jobs: BTreeMap::new(),
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                cache: HashMap::new(),
                cache_order: VecDeque::new(),
            }),
            ready: Condvar::new(),
            watch: Condvar::new(),
            models: TrainedModels::untrained(),
            config,
            shutdown: AtomicBool::new(false),
            metrics: ServeMetrics::new(),
            logger,
            started: Instant::now(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The service metrics registry.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The lifecycle logger.
    pub fn logger(&self) -> &Logger {
        &self.logger
    }

    /// Renders `/v1/metrics`: the accumulated registry plus the
    /// point-in-time queue-depth and running gauges.
    pub fn render_metrics(&self) -> String {
        let (queue_depth, running) = {
            let st = self.state.lock().expect("engine lock");
            let depths = [st.queues[0].len(), st.queues[1].len(), st.queues[2].len()];
            let running = st
                .jobs
                .values()
                .filter(|j| j.state == JobState::Running)
                .count();
            (depths, running)
        };
        self.metrics.render(queue_depth, running)
    }

    /// Spawns the configured worker threads. Threads exit when
    /// [`JobEngine::stop`] is called.
    pub fn start(self: &Arc<Self>) {
        for _ in 0..self.config.workers {
            let engine = Arc::clone(self);
            std::thread::spawn(move || engine.worker_loop());
        }
    }

    /// Asks the worker threads to exit after their current job.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }

    /// Validates, admission-lints and enqueues one request for
    /// `tenant`. A cache hit creates the job directly in `done` with
    /// the cached response attached — no simulation, no queue slot.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]; no job is created on any error.
    pub fn submit(
        &self,
        tenant: &str,
        priority: Priority,
        request: &RunRequest,
    ) -> Result<SubmitOutcome, SubmitError> {
        let normalized = request.normalized();
        if let Err(msg) = normalized.validate() {
            self.metrics.incr_tenant(tenant, "invalid");
            self.logger.warn(
                "job.invalid",
                &[("tenant", json!(tenant)), ("error", json!(msg.clone()))],
            );
            return Err(SubmitError::Invalid(msg));
        }
        let report = request::admission(&normalized);
        if report.has_errors() {
            self.metrics.incr_tenant(tenant, "rejected");
            self.logger.warn(
                "job.admission_rejected",
                &[
                    ("tenant", json!(tenant)),
                    ("errors", json!(report.error_count())),
                    ("workload", json!(normalized.workload.label())),
                ],
            );
            return Err(SubmitError::Rejected(report));
        }
        let cache_key = normalized.cache_key();
        let mut st = self.state.lock().expect("engine lock");
        if let Some(resp) = st.cache.get(&cache_key).cloned() {
            // A hit refreshes recency: move the key to the back of the
            // eviction order so a hot entry outlives cold ones (LRU,
            // not insertion order).
            if let Some(pos) = st.cache_order.iter().position(|k| *k == cache_key) {
                st.cache_order.remove(pos);
                st.cache_order.push_back(cache_key);
            }
            let id = st.next_id;
            st.next_id += 1;
            st.jobs.insert(
                id,
                Job {
                    tenant: tenant.to_string(),
                    priority,
                    state: JobState::Done,
                    request: normalized,
                    cache_key,
                    cached: true,
                    cancel_requested: false,
                    error: None,
                    response: Some(resp),
                    progress: Vec::new(),
                    version: 1,
                    queued_at: Instant::now(),
                },
            );
            drop(st);
            self.metrics.incr(metrics::JOBS_SUBMITTED);
            self.metrics.incr(metrics::CACHE_HITS);
            self.metrics.incr_tenant(tenant, "admitted");
            self.metrics.incr_finished("done");
            self.logger.info(
                "job.cache_hit",
                &[
                    ("job_id", json!(id)),
                    ("tenant", json!(tenant)),
                    ("cache_key", json!(cache_key)),
                ],
            );
            return Ok(SubmitOutcome {
                id,
                state: JobState::Done,
                cached: true,
                cache_key,
            });
        }
        let queued = st
            .jobs
            .values()
            .filter(|j| j.tenant == tenant && j.state == JobState::Queued)
            .count();
        if queued >= self.config.max_queued_per_tenant {
            drop(st);
            self.metrics.incr_tenant(tenant, "quota_exceeded");
            self.logger.warn(
                "job.quota_exceeded",
                &[
                    ("tenant", json!(tenant)),
                    ("queued", json!(queued)),
                    ("limit", json!(self.config.max_queued_per_tenant)),
                ],
            );
            return Err(SubmitError::QuotaExceeded {
                queued,
                limit: self.config.max_queued_per_tenant,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            Job {
                tenant: tenant.to_string(),
                priority,
                state: JobState::Queued,
                request: normalized.clone(),
                cache_key,
                cached: false,
                cancel_requested: false,
                error: None,
                response: None,
                progress: Vec::new(),
                version: 1,
                queued_at: Instant::now(),
            },
        );
        st.queues[priority.index()].push_back(id);
        drop(st);
        self.metrics.incr(metrics::JOBS_SUBMITTED);
        self.metrics.incr_tenant(tenant, "admitted");
        self.logger.info(
            "job.submitted",
            &[
                ("job_id", json!(id)),
                ("tenant", json!(tenant)),
                ("priority", json!(priority.name())),
                ("workload", json!(normalized.workload.label())),
                ("cache_key", json!(cache_key)),
            ],
        );
        self.ready.notify_one();
        Ok(SubmitOutcome {
            id,
            state: JobState::Queued,
            cached: false,
            cache_key,
        })
    }

    /// Picks the next runnable job — highest priority class first, FIFO
    /// within a class, skipping jobs whose tenant is already at its
    /// concurrent-run quota — and removes it from its queue.
    fn next_runnable(&self, st: &mut EngineState) -> Option<u64> {
        for class in 0..st.queues.len() {
            for pos in 0..st.queues[class].len() {
                let id = st.queues[class][pos];
                let tenant = st.jobs[&id].tenant.clone();
                let running = st
                    .jobs
                    .values()
                    .filter(|j| j.tenant == tenant && j.state == JobState::Running)
                    .count();
                if running < self.config.max_running_per_tenant {
                    st.queues[class].remove(pos);
                    return Some(id);
                }
            }
        }
        None
    }

    /// Dequeues and executes one job on the calling thread. Returns
    /// `false` when nothing was runnable. This is the whole execution
    /// path — worker threads just call it in a loop — so tests can
    /// drive the engine deterministically with `workers: 0`.
    pub fn run_next(&self) -> bool {
        let (id, tenant, cache_key, request) = {
            let mut st = self.state.lock().expect("engine lock");
            let Some(id) = self.next_runnable(&mut st) else {
                return false;
            };
            let job = st.jobs.get_mut(&id).expect("queued job exists");
            job.state = JobState::Running;
            job.version += 1;
            let queue_wait = job.queued_at.elapsed();
            let info = (id, job.tenant.clone(), job.cache_key, job.request.clone());
            drop(st);
            self.metrics.incr(metrics::JOBS_STARTED);
            self.metrics.incr(metrics::CACHE_MISSES);
            self.metrics
                .observe_queue_wait_ms(saturating_millis(queue_wait));
            self.logger.info(
                "job.started",
                &[
                    ("job_id", json!(info.0)),
                    ("tenant", json!(info.1.clone())),
                    ("queue_wait_ms", json!(saturating_millis(queue_wait))),
                ],
            );
            self.watch.notify_all();
            info
        };
        let sink = JobProgressSink { engine: self, id };
        let run_started = Instant::now();
        let result = request::execute_with_progress(&request, &self.models, Some(&sink));
        let run_ms = saturating_millis(run_started.elapsed());
        self.metrics.observe_run_duration_ms(run_ms);
        let mut st = self.state.lock().expect("engine lock");
        let cache_capacity = self.config.cache_capacity;
        let mut evictions = 0u64;
        let job = st.jobs.get_mut(&id).expect("running job exists");
        let result_name;
        if job.cancel_requested {
            // The submitter walked away mid-run: discard the result
            // (don't even cache it — a cancelled job must leave no
            // observable artifacts).
            job.state = JobState::Cancelled;
            result_name = "cancelled";
        } else {
            match result {
                Ok(response) => {
                    let response = Arc::new(response);
                    job.state = JobState::Done;
                    job.response = Some(Arc::clone(&response));
                    result_name = "done";
                    let key = job.cache_key;
                    if cache_capacity > 0 && !st.cache.contains_key(&key) {
                        st.cache.insert(key, response);
                        st.cache_order.push_back(key);
                        while st.cache.len() > cache_capacity {
                            if let Some(old) = st.cache_order.pop_front() {
                                st.cache.remove(&old);
                                evictions += 1;
                            }
                        }
                    }
                }
                Err(e) => {
                    job.state = JobState::Failed;
                    result_name = "failed";
                    job.error = Some(match e {
                        RequestError::Invalid(msg) => msg,
                        RequestError::Rejected(report) => format!(
                            "rejected by admission lint ({} error(s))",
                            report.error_count()
                        ),
                        RequestError::Run(err) => err.to_string(),
                    });
                }
            }
        }
        let job = st.jobs.get_mut(&id).expect("running job exists");
        job.version += 1;
        let error = job.error.clone();
        let verdict_ok = job.response.as_ref().map(|r| r.verdict.ok);
        drop(st);
        for _ in 0..evictions {
            self.metrics.incr(metrics::CACHE_EVICTIONS);
        }
        self.metrics.incr_finished(result_name);
        match result_name {
            "failed" => self.logger.error(
                "job.worker_error",
                &[
                    ("job_id", json!(id)),
                    ("tenant", json!(tenant)),
                    ("run_ms", json!(run_ms)),
                    ("error", json!(error.unwrap_or_default())),
                ],
            ),
            "cancelled" => self.logger.info(
                "job.cancelled",
                &[
                    ("job_id", json!(id)),
                    ("tenant", json!(tenant)),
                    ("run_ms", json!(run_ms)),
                    ("discarded", json!(true)),
                ],
            ),
            _ => self.logger.info(
                "job.finished",
                &[
                    ("job_id", json!(id)),
                    ("tenant", json!(tenant)),
                    ("cache_key", json!(cache_key)),
                    ("run_ms", json!(run_ms)),
                    ("verdict_ok", json!(verdict_ok.unwrap_or(false))),
                ],
            ),
        }
        self.ready.notify_all();
        self.watch.notify_all();
        true
    }

    fn worker_loop(&self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            if !self.run_next() {
                let st = self.state.lock().expect("engine lock");
                // Timeout so shutdown is noticed even without traffic.
                let _ = self
                    .ready
                    .wait_timeout(st, Duration::from_millis(50))
                    .expect("engine lock");
            }
        }
    }

    /// Snapshot of one job, if it exists and belongs to `tenant`.
    pub fn job(&self, tenant: &str, id: u64) -> Option<JobStatus> {
        let st = self.state.lock().expect("engine lock");
        let job = st.jobs.get(&id)?;
        if job.tenant != tenant {
            return None;
        }
        Some(Self::snapshot(id, job))
    }

    fn snapshot(id: u64, job: &Job) -> JobStatus {
        JobStatus {
            id,
            tenant: job.tenant.clone(),
            priority: job.priority,
            state: job.state,
            workload: job.request.workload.label().to_string(),
            cached: job.cached,
            cache_key: job.cache_key,
            error: job.error.clone(),
            artifacts: job
                .response
                .as_ref()
                .map(|r| r.artifacts.keys().cloned().collect())
                .unwrap_or_default(),
            verdict_ok: job.response.as_ref().map(|r| r.verdict.ok),
            progress: job.progress.last().cloned(),
            version: job.version,
        }
    }

    /// Every progress snapshot a job has published, in publication
    /// order — the byte-identity surface against a CLI `--progress`
    /// run of the same request. `None` for unknown/foreign jobs.
    pub fn progress_history(&self, tenant: &str, id: u64) -> Option<Vec<Progress>> {
        let st = self.state.lock().expect("engine lock");
        let job = st.jobs.get(&id)?;
        if job.tenant != tenant {
            return None;
        }
        Some(job.progress.clone())
    }

    /// Long-poll: blocks until the job's state or progress changes
    /// from the snapshot taken at entry, or `timeout` elapses, and
    /// returns the (possibly unchanged) latest snapshot. Terminal jobs
    /// return immediately. `None` for unknown/foreign jobs.
    pub fn wait_for_update(&self, tenant: &str, id: u64, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("engine lock");
        let entry_version = {
            let job = st.jobs.get(&id)?;
            if job.tenant != tenant {
                return None;
            }
            if job.state.is_terminal() {
                return Some(Self::snapshot(id, job));
            }
            job.version
        };
        loop {
            let job = st.jobs.get(&id).expect("jobs are never removed");
            if job.version != entry_version || job.state.is_terminal() {
                return Some(Self::snapshot(id, job));
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Some(Self::snapshot(id, job));
            };
            let (guard, _) = self.watch.wait_timeout(st, remaining).expect("engine lock");
            st = guard;
        }
    }

    /// The full response of a `done` job.
    pub fn response(&self, tenant: &str, id: u64) -> Option<Arc<RunResponse>> {
        let st = self.state.lock().expect("engine lock");
        let job = st.jobs.get(&id)?;
        if job.tenant != tenant {
            return None;
        }
        job.response.clone()
    }

    /// One named artifact of a `done` job.
    pub fn artifact(&self, tenant: &str, id: u64, kind: &str) -> ArtifactResult {
        let st = self.state.lock().expect("engine lock");
        let Some(job) = st.jobs.get(&id) else {
            return ArtifactResult::NoSuchJob;
        };
        if job.tenant != tenant {
            return ArtifactResult::NoSuchJob;
        }
        let Some(response) = &job.response else {
            return ArtifactResult::NotReady(job.state);
        };
        match response.artifacts.get(kind) {
            Some(body) => ArtifactResult::Body(body.clone()),
            None => ArtifactResult::NoSuchKind(response.artifacts.keys().cloned().collect()),
        }
    }

    /// Cancels a job: queued jobs are removed immediately, running jobs
    /// are flagged (their result is discarded when the worker returns),
    /// finished jobs are left alone. `None` when the id does not exist
    /// or belongs to another tenant.
    pub fn cancel(&self, tenant: &str, id: u64) -> Option<CancelOutcome> {
        let mut st = self.state.lock().expect("engine lock");
        let job = st.jobs.get(&id)?;
        if job.tenant != tenant {
            return None;
        }
        let outcome = match job.state {
            JobState::Queued => {
                let class = job.priority.index();
                st.queues[class].retain(|&q| q != id);
                let job = st.jobs.get_mut(&id).expect("job exists");
                job.state = JobState::Cancelled;
                job.version += 1;
                CancelOutcome::Cancelled
            }
            JobState::Running => {
                st.jobs.get_mut(&id).expect("job exists").cancel_requested = true;
                CancelOutcome::CancelRequested
            }
            _ => CancelOutcome::AlreadyFinished,
        };
        drop(st);
        if outcome == CancelOutcome::Cancelled {
            self.metrics.incr_finished("cancelled");
            self.logger.info(
                "job.cancelled",
                &[
                    ("job_id", json!(id)),
                    ("tenant", json!(tenant)),
                    ("discarded", json!(false)),
                ],
            );
            self.watch.notify_all();
        }
        Some(outcome)
    }

    /// Engine health counters.
    pub fn health(&self) -> EngineHealth {
        let st = self.state.lock().expect("engine lock");
        let queued = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .count();
        let running = st
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count();
        let finished = st.jobs.values().filter(|j| j.state.is_terminal()).count();
        EngineHealth {
            queued,
            running,
            finished,
            cache_entries: st.cache.len(),
            workers: self.config.workers,
            uptime_secs: self.started.elapsed().as_secs(),
            version: env!("CARGO_PKG_VERSION"),
            cache_hits: self.metrics.counter(metrics::CACHE_HITS),
            cache_misses: self.metrics.counter(metrics::CACHE_MISSES),
            cache_evictions: self.metrics.counter(metrics::CACHE_EVICTIONS),
        }
    }
}

/// The per-job [`ProgressSink`] workers publish through: each snapshot
/// is appended to the job's history and bumps its version, waking any
/// long-poll.
struct JobProgressSink<'a> {
    engine: &'a JobEngine,
    id: u64,
}

impl ProgressSink for JobProgressSink<'_> {
    fn publish(&self, progress: &Progress) {
        let mut st = self.engine.state.lock().expect("engine lock");
        if let Some(job) = st.jobs.get_mut(&self.id) {
            job.progress.push(progress.clone());
            job.version += 1;
        }
        drop(st);
        self.engine.watch.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_bench::request::WorkloadKind;

    fn test_engine() -> JobEngine {
        JobEngine::new(EngineConfig {
            workers: 0,
            max_queued_per_tenant: 2,
            max_running_per_tenant: 1,
            cache_capacity: 4,
        })
    }

    fn small_request() -> RunRequest {
        let mut r = RunRequest::new(WorkloadKind::Fig8);
        r.frames = 2;
        r.configs = vec![0];
        r
    }

    #[test]
    fn submit_run_fetch_roundtrip() {
        let engine = test_engine();
        let out = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        assert_eq!(out.state, JobState::Queued);
        assert!(!out.cached);
        assert!(engine.run_next());
        let status = engine.job("alice", out.id).expect("visible");
        assert_eq!(status.state, JobState::Done);
        assert!(status.artifacts.contains(&"metrics".to_string()));
        match engine.artifact("alice", out.id, "metrics") {
            ArtifactResult::Body(body) => assert!(body.contains("schema_version")),
            other => panic!("expected body, got {other:?}"),
        }
        // Foreign tenants can't see the job.
        assert!(engine.job("mallory", out.id).is_none());
        assert!(matches!(
            engine.artifact("mallory", out.id, "metrics"),
            ArtifactResult::NoSuchJob
        ));
    }

    #[test]
    fn identical_resubmission_hits_the_cache() {
        let engine = test_engine();
        let first = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        assert!(engine.run_next());
        let again = engine
            .submit("bob", Priority::Normal, &small_request())
            .expect("submits");
        assert_eq!(again.state, JobState::Done, "cache hit is instantly done");
        assert!(again.cached);
        assert_eq!(again.cache_key, first.cache_key);
        let a = engine.response("alice", first.id).expect("response");
        let b = engine.response("bob", again.id).expect("response");
        assert_eq!(a.to_json(), b.to_json(), "cached bytes are identical");
        assert!(!engine.run_next(), "nothing left to simulate");
    }

    #[test]
    fn queued_quota_is_enforced_per_tenant() {
        let engine = test_engine();
        for _ in 0..2 {
            // Vary frames so the cache never collapses the submissions.
            engine
                .submit("alice", Priority::Normal, &small_request())
                .expect("within quota");
        }
        // Both submissions above dedupe to... no: both are identical and
        // both queued (cache only fills after a run) — quota now full.
        match engine.submit("alice", Priority::Normal, &small_request()) {
            Err(SubmitError::QuotaExceeded { queued, limit }) => {
                assert_eq!((queued, limit), (2, 2));
            }
            other => panic!("expected quota error, got {other:?}"),
        }
        // A different tenant still has its own quota.
        engine
            .submit("bob", Priority::Normal, &small_request())
            .expect("separate quota");
    }

    #[test]
    fn priority_classes_drain_high_first() {
        let engine = test_engine();
        let mut low = small_request();
        low.frames = 3;
        let low_id = engine
            .submit("alice", Priority::Low, &low)
            .expect("submits")
            .id;
        let mut high = small_request();
        high.frames = 4;
        let high_id = engine
            .submit("bob", Priority::High, &high)
            .expect("submits")
            .id;
        assert!(engine.run_next());
        assert_eq!(
            engine.job("bob", high_id).unwrap().state,
            JobState::Done,
            "high-priority job ran first despite later submission"
        );
        assert_eq!(engine.job("alice", low_id).unwrap().state, JobState::Queued);
    }

    #[test]
    fn cancel_mid_queue_removes_the_job() {
        let engine = test_engine();
        let out = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        assert_eq!(
            engine.cancel("alice", out.id),
            Some(CancelOutcome::Cancelled)
        );
        assert_eq!(
            engine.job("alice", out.id).unwrap().state,
            JobState::Cancelled
        );
        assert!(!engine.run_next(), "cancelled job never runs");
        assert_eq!(
            engine.cancel("alice", out.id),
            Some(CancelOutcome::AlreadyFinished)
        );
        assert!(engine.cancel("mallory", out.id).is_none());
    }

    #[test]
    fn invalid_and_rejected_submissions_create_no_job() {
        let engine = test_engine();
        let mut bad = small_request();
        bad.engine = "warp".into();
        assert!(matches!(
            engine.submit("alice", Priority::Normal, &bad),
            Err(SubmitError::Invalid(_))
        ));
        let mut rejected = small_request();
        rejected.fault_plan = Some(
            esp4ml_fault::FaultPlan::new(1)
                .with(esp4ml_fault::FaultSpec::transient_hang("no-such-device", 0)),
        );
        match engine.submit("alice", Priority::Normal, &rejected) {
            Err(SubmitError::Rejected(report)) => assert!(report.has_errors()),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(engine.health().queued, 0, "no job slots consumed");
    }

    #[test]
    fn cache_evicts_least_recently_used_and_counts() {
        let engine = JobEngine::new(EngineConfig {
            workers: 0,
            max_queued_per_tenant: 8,
            max_running_per_tenant: 1,
            cache_capacity: 2,
        });
        // Three distinct requests (frames differ) fill the cache past
        // its bound; with no hits in between, the least-recently-used
        // entry is the oldest insertion.
        for frames in [2, 3, 4] {
            let mut r = small_request();
            r.frames = frames;
            engine
                .submit("alice", Priority::Normal, &r)
                .expect("submits");
            assert!(engine.run_next());
        }
        let health = engine.health();
        assert_eq!(health.cache_entries, 2, "capacity bound holds");
        assert_eq!(health.cache_evictions, 1, "exactly one eviction");
        assert_eq!(engine.metrics().counter(metrics::CACHE_EVICTIONS), 1);
        // The oldest entry (frames=2) is gone: resubmitting it queues a
        // real run. The two newer entries still hit.
        let mut oldest = small_request();
        oldest.frames = 2;
        let out = engine
            .submit("alice", Priority::Normal, &oldest)
            .expect("submits");
        assert!(!out.cached, "evicted entry must re-simulate");
        for frames in [3, 4] {
            let mut r = small_request();
            r.frames = frames;
            let out = engine.submit("bob", Priority::Normal, &r).expect("submits");
            assert!(out.cached, "newer entries survive eviction");
        }
    }

    /// The regression the LRU fix closes: a cache hit must refresh the
    /// entry's recency, so inserting past capacity evicts the entry
    /// that was never hit — not the hot one that merely arrived first.
    #[test]
    fn cache_hit_promotes_entry_over_unhit_one() {
        let engine = JobEngine::new(EngineConfig {
            workers: 0,
            max_queued_per_tenant: 8,
            max_running_per_tenant: 1,
            cache_capacity: 2,
        });
        let request = |frames| {
            let mut r = small_request();
            r.frames = frames;
            r
        };
        // Insertion order: frames=2, then frames=3.
        for frames in [2, 3] {
            engine
                .submit("alice", Priority::Normal, &request(frames))
                .expect("submits");
            assert!(engine.run_next());
        }
        // Hit the older entry — under pure insertion-order eviction
        // this would not save it.
        let hit = engine
            .submit("bob", Priority::Normal, &request(2))
            .expect("submits");
        assert!(hit.cached, "warm-up hit");
        // Insert past capacity: the unhit frames=3 entry must go.
        engine
            .submit("alice", Priority::Normal, &request(4))
            .expect("submits");
        assert!(engine.run_next());
        let health = engine.health();
        assert_eq!(health.cache_entries, 2, "capacity bound holds");
        assert_eq!(health.cache_evictions, 1, "exactly one eviction");
        let promoted = engine
            .submit("bob", Priority::Normal, &request(2))
            .expect("submits");
        assert!(promoted.cached, "the hit entry survived the eviction");
        let unhit = engine
            .submit("bob", Priority::Normal, &request(3))
            .expect("submits");
        assert!(!unhit.cached, "the unhit entry was the LRU victim");
    }

    #[test]
    fn progress_history_is_monotonic_and_reaches_totals() {
        let engine = test_engine();
        let out = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        assert!(engine.run_next());
        let history = engine.progress_history("alice", out.id).expect("visible");
        assert!(!history.is_empty(), "at least one snapshot per run");
        let total = history.len() as u64;
        for (i, p) in history.iter().enumerate() {
            assert_eq!(p.points_done, i as u64 + 1, "one snapshot per unit");
            assert_eq!(p.points_total, total, "totals are stable");
        }
        let last = history.last().expect("non-empty");
        assert!(last.is_final(), "final snapshot covers the whole grid");
        let status = engine.job("alice", out.id).expect("visible");
        assert_eq!(status.progress.as_ref(), Some(last));
        // A cache hit never ran, so it has no progress history.
        let hit = engine
            .submit("bob", Priority::Normal, &small_request())
            .expect("submits");
        assert!(hit.cached);
        assert!(engine
            .progress_history("bob", hit.id)
            .expect("visible")
            .is_empty());
    }

    #[test]
    fn long_poll_wakes_on_cancellation() {
        let engine = Arc::new(test_engine());
        let out = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        let id = out.id;
        let waiter = Arc::clone(&engine);
        let poller = std::thread::spawn(move || {
            waiter.wait_for_update("alice", id, Duration::from_secs(10))
        });
        // Whether the poller is already parked or not when the cancel
        // lands, it must return the cancelled snapshot well before its
        // ten-second timeout.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(engine.cancel("alice", id), Some(CancelOutcome::Cancelled));
        let status = poller.join().expect("poller thread").expect("visible");
        assert_eq!(status.state, JobState::Cancelled);
    }

    #[test]
    fn long_poll_times_out_on_an_idle_job() {
        let engine = test_engine();
        let out = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        let status = engine
            .wait_for_update("alice", out.id, Duration::from_millis(10))
            .expect("visible");
        assert_eq!(status.state, JobState::Queued, "unchanged after timeout");
        assert!(engine
            .wait_for_update("mallory", out.id, Duration::ZERO)
            .is_none());
    }

    #[test]
    fn server_progress_matches_a_direct_cli_run() {
        let engine = test_engine();
        let out = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        assert!(engine.run_next());
        let server: Vec<String> = engine
            .progress_history("alice", out.id)
            .expect("visible")
            .iter()
            .map(Progress::to_json_line)
            .collect();
        // The same request run the way the CLI does, with a collecting
        // sink standing in for --progress stderr lines.
        let sink = request::CollectingSink::new();
        request::execute_with_progress(
            &small_request().normalized(),
            &TrainedModels::untrained(),
            Some(&sink),
        )
        .expect("runs");
        let cli: Vec<String> = sink
            .snapshots()
            .iter()
            .map(Progress::to_json_line)
            .collect();
        assert_eq!(server, cli, "server and CLI progress are byte-identical");
    }

    #[test]
    fn failed_runs_surface_the_error() {
        // An empty-selection faults campaign can't fail deterministically
        // here, so exercise Failed via a request that passes validation
        // and admission but dies in the simulator: nothing in the current
        // workload set does, so assert health bookkeeping instead.
        let engine = test_engine();
        let out = engine
            .submit("alice", Priority::Normal, &small_request())
            .expect("submits");
        assert_eq!(engine.health().queued, 1);
        assert!(engine.run_next());
        let health = engine.health();
        assert_eq!(health.queued, 0);
        assert_eq!(health.finished, 1);
        assert_eq!(health.cache_entries, 1);
        assert_eq!(engine.job("alice", out.id).unwrap().error, None);
    }
}
