//! A minimal HTTP/1.1 server — just enough protocol for the espserve
//! v1 API, written against the standard library only (the build
//! environment is offline, so no hyper/axum).
//!
//! Scope: request line + headers + `Content-Length` bodies, one
//! request per connection (`Connection: close` on every response),
//! bounded header and body sizes. No chunked encoding, no TLS, no
//! keep-alive — espserve is a lab-bench service, not an edge proxy.

use crate::log::{Logger, RateLimited};
use serde_json::json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path with any query string stripped.
    pub path: String,
    /// Raw query string after `?` (empty when absent), undecoded.
    pub query: String,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: String,
}

impl HttpRequest {
    /// The first header with `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    /// The first `name=value` query parameter, if any. Values are
    /// returned as-is (the v1 API only uses numeric parameters, so no
    /// percent-decoding is needed).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code, e.g. 200.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// The body.
    pub body: String,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json".to_string(),
            body,
        }
    }

    /// A plain-text response (newline appended if missing).
    pub fn text(status: u16, body: &str) -> HttpResponse {
        let body = if body.ends_with('\n') {
            body.to_string()
        } else {
            format!("{body}\n")
        };
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            body,
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            _ => "Internal Server Error",
        }
    }

    /// Serializes the response onto `out`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to(&self, out: &mut dyn Write) -> std::io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        out.write_all(self.body.as_bytes())?;
        out.flush()
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// A printable message on malformed or oversized requests.
pub fn read_request(stream: &mut dyn Read) -> Result<HttpRequest, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut head_bytes = 0usize;
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| "request line missing path".to_string())?;
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    loop {
        let mut hline = String::new();
        reader
            .read_line(&mut hline)
            .map_err(|e| format!("read header: {e}"))?;
        head_bytes += hline.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err("request head too large".to_string());
        }
        let trimmed = hline.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().map_err(|e| format!("bad content-length: {e}")))
        .transpose()?
        .unwrap_or(0);
    if length > MAX_BODY_BYTES {
        return Err("request body too large".to_string());
    }
    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    Ok(HttpRequest {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn handle_connection(mut stream: TcpStream, handler: &dyn Fn(HttpRequest) -> HttpResponse) {
    let response = match read_request(&mut stream) {
        Ok(request) => handler(request),
        Err(msg) => HttpResponse::text(400, &msg),
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Accept loop: one thread per connection, forever. The handler must
/// be `Sync` because connections are served concurrently.
///
/// Accept failures are logged through `logger`, rate-limited by error
/// kind ([`RateLimited`]'s power-of-two policy) — a wedged socket (FD
/// exhaustion, say) fails thousands of times a second and must not
/// turn the log into a firehose of identical lines.
pub fn serve<H>(listener: TcpListener, handler: H, logger: Logger) -> !
where
    H: Fn(HttpRequest) -> HttpResponse + Send + Sync + 'static,
{
    let handler = std::sync::Arc::new(handler);
    let accept_errors = RateLimited::new();
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let handler = std::sync::Arc::clone(&handler);
                std::thread::spawn(move || handle_connection(stream, &*handler));
            }
            Err(e) => {
                let key = format!("{:?}", e.kind());
                if let Some(suppressed) = accept_errors.check(&key) {
                    logger.error(
                        "http.accept_failed",
                        &[
                            ("error", json!(e.to_string())),
                            ("suppressed", json!(suppressed)),
                            ("total", json!(accept_errors.count(&key))),
                        ],
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = "POST /v1/jobs?trace=1 HTTP/1.1\r\nHost: x\r\nX-Api-Key: alice\r\n\
                   Content-Length: 7\r\n\r\n{\"a\":1}";
        let req = read_request(&mut raw.as_bytes()).expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs", "query string split off the path");
        assert_eq!(req.query, "trace=1");
        assert_eq!(req.query_param("trace"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("x-api-key"), Some("alice"));
        assert_eq!(req.header("X-API-KEY"), Some("alice"));
        assert_eq!(req.body, "{\"a\":1}");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let raw = "GET /v1/healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut raw.as_bytes()).expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_short_bodies_and_oversize_claims() {
        let raw = "POST /v1/jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert!(read_request(&mut raw.as_bytes()).is_err());
        let raw = format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = read_request(&mut raw.as_bytes()).expect_err("too large");
        assert!(err.contains("too large"));
    }

    #[test]
    fn responses_serialize_with_content_length() {
        let mut out = Vec::new();
        HttpResponse::json(201, "{\"ok\":true}".to_string())
            .write_to(&mut out)
            .expect("writes");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
