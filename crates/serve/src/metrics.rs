//! The espserve metrics registry behind `GET /v1/metrics`.
//!
//! One [`ServeMetrics`] instance lives inside the [`crate::engine::JobEngine`]
//! and accumulates three kinds of series, all rendered together in the
//! Prometheus text exposition format:
//!
//! - **Flat counters** (`espserve.jobs_submitted`, `espserve.cache_hits`,
//!   ...) reuse [`esp4ml::trace::CounterRegistry`] — the same registry
//!   and [`CounterRegistry::render_prometheus`] renderer the simulator's
//!   sampled counters use, so the service plane and the per-run plane
//!   share one metric idiom.
//! - **Labeled families** (per-tenant outcomes, HTTP route × status,
//!   finished-jobs-by-result, queue depth per priority) — label sets
//!   are kept in name order, so rendering is deterministic.
//! - **Duration histograms** (queue wait, run duration, in
//!   milliseconds) reuse [`esp4ml::trace::Histogram`] and its
//!   cumulative-bucket Prometheus rendering, plus p50/p90/p99 gauges.

use esp4ml::trace::{CounterRegistry, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Flat counter: jobs accepted into the engine (queued or cache hit).
pub const JOBS_SUBMITTED: &str = "espserve.jobs_submitted";
/// Flat counter: jobs a worker started simulating.
pub const JOBS_STARTED: &str = "espserve.jobs_started";
/// Flat counter: submissions answered from the result cache.
pub const CACHE_HITS: &str = "espserve.cache_hits";
/// Flat counter: executed jobs that had to simulate (no cached result).
pub const CACHE_MISSES: &str = "espserve.cache_misses";
/// Flat counter: cached responses dropped by the capacity bound.
pub const CACHE_EVICTIONS: &str = "espserve.cache_evictions";

const HTTP_FAMILY: &str = "espserve_http_requests_total";
const TENANT_FAMILY: &str = "espserve_tenant_jobs_total";
const FINISHED_FAMILY: &str = "espserve_jobs_finished_total";
const QUEUE_DEPTH_FAMILY: &str = "espserve_queue_depth";
const RUNNING_FAMILY: &str = "espserve_jobs_running";
const QUEUE_WAIT_FAMILY: &str = "espserve_job_queue_wait_ms";
const RUN_DURATION_FAMILY: &str = "espserve_job_run_duration_ms";

/// One labeled series family with fixed help/type metadata.
struct Family {
    help: &'static str,
    kind: &'static str,
    samples: BTreeMap<String, u64>,
}

impl Family {
    fn new(help: &'static str, kind: &'static str) -> Family {
        Family {
            help,
            kind,
            samples: BTreeMap::new(),
        }
    }
}

struct Inner {
    counters: CounterRegistry,
    families: BTreeMap<&'static str, Family>,
    queue_wait_ms: Histogram,
    run_duration_ms: Histogram,
}

/// The thread-safe service metrics registry.
pub struct ServeMetrics {
    inner: Mutex<Inner>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a label set as `{a="x",b="y"}` in the given order.
fn label_text(labels: &[(&str, &str)]) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{name}=\"{}\"", escape_label(value));
    }
    out.push('}');
    out
}

impl ServeMetrics {
    /// A fresh registry with every family declared and at zero.
    pub fn new() -> ServeMetrics {
        let mut families = BTreeMap::new();
        families.insert(
            HTTP_FAMILY,
            Family::new("HTTP requests by route, method and status.", "counter"),
        );
        families.insert(
            TENANT_FAMILY,
            Family::new(
                "Job submissions by tenant and admission outcome.",
                "counter",
            ),
        );
        families.insert(
            FINISHED_FAMILY,
            Family::new("Jobs reaching a terminal state, by result.", "counter"),
        );
        families.insert(
            QUEUE_DEPTH_FAMILY,
            Family::new("Queued jobs per priority class.", "gauge"),
        );
        families.insert(
            RUNNING_FAMILY,
            Family::new("Jobs currently simulating.", "gauge"),
        );
        ServeMetrics {
            inner: Mutex::new(Inner {
                counters: CounterRegistry::new(),
                families,
                queue_wait_ms: Histogram::new(),
                run_duration_ms: Histogram::new(),
            }),
        }
    }

    /// Adds one to a flat `espserve.*` counter.
    pub fn incr(&self, name: &str) {
        self.inner.lock().expect("metrics lock").counters.incr(name);
    }

    /// Current value of a flat counter (zero when never touched) — the
    /// agreement surface between `/v1/metrics` and `/v1/healthz`.
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().expect("metrics lock").counters.get(name)
    }

    fn incr_family(&self, family: &'static str, labels: &[(&str, &str)]) {
        let mut inner = self.inner.lock().expect("metrics lock");
        let fam = inner.families.get_mut(family).expect("declared family");
        *fam.samples.entry(label_text(labels)).or_insert(0) += 1;
    }

    /// Counts one HTTP request by route pattern, method and status.
    pub fn incr_http(&self, route: &str, method: &str, status: u16) {
        self.incr_family(
            HTTP_FAMILY,
            &[
                ("route", route),
                ("method", method),
                ("status", &status.to_string()),
            ],
        );
    }

    /// Counts one submission outcome (`admitted`, `rejected`,
    /// `invalid`, `quota_exceeded`) for a tenant.
    pub fn incr_tenant(&self, tenant: &str, outcome: &str) {
        self.incr_family(TENANT_FAMILY, &[("tenant", tenant), ("outcome", outcome)]);
    }

    /// Counts one job reaching a terminal state (`done`, `failed`,
    /// `cancelled`).
    pub fn incr_finished(&self, result: &str) {
        self.incr_family(FINISHED_FAMILY, &[("result", result)]);
    }

    /// Records how long a job waited queued before a worker took it.
    pub fn observe_queue_wait_ms(&self, ms: u64) {
        self.inner
            .lock()
            .expect("metrics lock")
            .queue_wait_ms
            .record(ms);
    }

    /// Records how long a job's simulation took.
    pub fn observe_run_duration_ms(&self, ms: u64) {
        self.inner
            .lock()
            .expect("metrics lock")
            .run_duration_ms
            .record(ms);
    }

    /// Observation count of the run-duration histogram.
    pub fn run_duration_count(&self) -> u64 {
        self.inner
            .lock()
            .expect("metrics lock")
            .run_duration_ms
            .count()
    }

    /// Renders the whole registry as Prometheus text exposition. The
    /// caller supplies the point-in-time gauges — queued jobs per
    /// priority (in `high`, `normal`, `low` order) and running jobs —
    /// since those are engine state, not accumulated flow.
    pub fn render(&self, queue_depth: [usize; 3], running: usize) -> String {
        let mut inner = self.inner.lock().expect("metrics lock");
        for (priority, depth) in ["high", "normal", "low"].iter().zip(queue_depth) {
            let text = label_text(&[("priority", priority)]);
            let fam = inner
                .families
                .get_mut(QUEUE_DEPTH_FAMILY)
                .expect("declared family");
            fam.samples.insert(text, depth as u64);
        }
        let fam = inner
            .families
            .get_mut(RUNNING_FAMILY)
            .expect("declared family");
        fam.samples.insert(String::new(), running as u64);

        let mut out = inner.counters.render_prometheus();
        for (name, family) in &inner.families {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind);
            if family.samples.is_empty() {
                // A declared family always appears, even before its
                // first event, so scrapers can rely on its presence.
                let _ = writeln!(out, "{name} 0");
            }
            for (labels, value) in &family.samples {
                let _ = writeln!(out, "{name}{labels} {value}");
            }
        }
        for (name, hist) in [
            (QUEUE_WAIT_FAMILY, &inner.queue_wait_ms),
            (RUN_DURATION_FAMILY, &inner.run_duration_ms),
        ] {
            out.push_str(&hist.render_prometheus(
                name,
                match name {
                    QUEUE_WAIT_FAMILY => "Milliseconds jobs waited queued before running.",
                    _ => "Milliseconds of simulation per executed job.",
                },
            ));
            for (suffix, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                let _ = writeln!(out, "# HELP {name}_{suffix} {suffix} of {name}.");
                let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
                let _ = writeln!(out, "{name}_{suffix} {}", hist.quantile(q));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_counters_flow_through_the_trace_registry() {
        let m = ServeMetrics::new();
        m.incr(JOBS_SUBMITTED);
        m.incr(JOBS_SUBMITTED);
        m.incr(CACHE_HITS);
        assert_eq!(m.counter(JOBS_SUBMITTED), 2);
        assert_eq!(m.counter(CACHE_MISSES), 0);
        let text = m.render([0, 0, 0], 0);
        assert!(text.contains("# TYPE espserve_jobs_submitted counter"));
        assert!(text.contains("espserve_jobs_submitted 2\n"));
        assert!(text.contains("espserve_cache_hits 1\n"));
    }

    #[test]
    fn labeled_families_render_deterministically() {
        let m = ServeMetrics::new();
        m.incr_http("/v1/jobs", "POST", 202);
        m.incr_http("/v1/jobs", "POST", 202);
        m.incr_http("/v1/jobs/{id}", "GET", 200);
        m.incr_tenant("alice", "admitted");
        m.incr_finished("done");
        let text = m.render([1, 2, 3], 4);
        assert!(
            text.contains(
                "espserve_http_requests_total{route=\"/v1/jobs\",method=\"POST\",status=\"202\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains("espserve_tenant_jobs_total{tenant=\"alice\",outcome=\"admitted\"} 1")
        );
        assert!(text.contains("espserve_jobs_finished_total{result=\"done\"} 1"));
        assert!(text.contains("espserve_queue_depth{priority=\"high\"} 1"));
        assert!(text.contains("espserve_queue_depth{priority=\"normal\"} 2"));
        assert!(text.contains("espserve_queue_depth{priority=\"low\"} 3"));
        assert!(text.contains("espserve_jobs_running 4"));
        assert_eq!(m.render([1, 2, 3], 4), text, "rendering is stable");
    }

    #[test]
    fn histograms_render_with_quantile_gauges() {
        let m = ServeMetrics::new();
        m.observe_run_duration_ms(10);
        m.observe_run_duration_ms(20);
        m.observe_queue_wait_ms(1);
        assert_eq!(m.run_duration_count(), 2);
        let text = m.render([0, 0, 0], 0);
        assert!(text.contains("# TYPE espserve_job_run_duration_ms histogram"));
        assert!(text.contains("espserve_job_run_duration_ms_count 2"));
        assert!(text.contains("espserve_job_run_duration_ms_sum 30"));
        assert!(text.contains("espserve_job_run_duration_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("# TYPE espserve_job_run_duration_ms_p99 gauge"));
        assert!(text.contains("espserve_job_queue_wait_ms_count 1"));
    }

    #[test]
    fn empty_registry_still_declares_every_family() {
        let text = ServeMetrics::new().render([0, 0, 0], 0);
        for family in [
            "espserve_http_requests_total",
            "espserve_tenant_jobs_total",
            "espserve_jobs_finished_total",
            "espserve_queue_depth",
            "espserve_jobs_running",
            "espserve_job_queue_wait_ms",
            "espserve_job_run_duration_ms",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "{family} missing"
            );
        }
        assert!(text.contains("espserve_http_requests_total 0"));
    }

    #[test]
    fn label_values_are_escaped() {
        let m = ServeMetrics::new();
        m.incr_tenant("a\"b\\c", "admitted");
        let text = m.render([0, 0, 0], 0);
        assert!(text.contains("tenant=\"a\\\"b\\\\c\""), "{text}");
    }
}
