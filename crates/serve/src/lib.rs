//! espserve: simulation-as-a-service over the unified request API.
//!
//! The ESP4ML experiment harness grew a family of one-shot binaries
//! (`fig7`, `espprof`, `espfault`, ...) that all reduce to the same
//! thing: build a [`esp4ml_bench::request::RunRequest`], run it, read
//! artifacts. This crate puts a long-running job server in front of
//! that shared core, split into three layers so each is testable
//! without the ones above it:
//!
//! - [`engine`] — the transport-agnostic job engine: priority queues,
//!   per-tenant quotas, cancellation, worker pool, and a deterministic
//!   result cache keyed by `RunRequest::cache_key` (sound because the
//!   simulator is seeded and engine-byte-identical).
//! - [`http`] — a minimal std-only HTTP/1.1 server (the build is
//!   offline; no framework crates).
//! - [`api`] — the versioned `/v1` REST routes mapping HTTP onto the
//!   engine, with espcheck as the admission filter: requests whose
//!   configuration fails the lint are rejected with their `E`-codes
//!   before any simulation runs.
//!
//! The `espserve` binary wires the three together; see the README for
//! a curl quickstart and `DESIGN.md` for the data model and the
//! cache-soundness argument.

pub mod api;
pub mod engine;
pub mod http;
pub mod log;
pub mod metrics;

pub use api::{route, JobRequest};
pub use engine::{EngineConfig, JobEngine, JobState, Priority};
pub use http::{HttpRequest, HttpResponse};
pub use log::{LogLevel, Logger};
pub use metrics::ServeMetrics;
