//! `espserve` — the simulation-as-a-service job server.
//!
//! ```text
//! cargo run --release -p esp4ml-serve --bin espserve -- --addr 127.0.0.1:8080
//! ```
//!
//! See the README for a curl quickstart against the `/v1` API.

use esp4ml_serve::engine::{EngineConfig, JobEngine};
use esp4ml_serve::log::{LogLevel, Logger};
use esp4ml_serve::{api, http};
use std::net::TcpListener;
use std::sync::Arc;

const USAGE: &str = "\
espserve - simulation-as-a-service job server over the unified request API

USAGE:
    espserve [OPTIONS]

OPTIONS:
    --addr ADDR        listen address (default 127.0.0.1:8080; port 0 picks a free port)
    --workers N        simulation worker threads (default 2)
    --max-queued N     queued-job quota per API key (default 16)
    --max-running N    concurrent-run quota per API key (default 2)
    --cache N          result-cache capacity in responses (default 64; 0 disables)
    --log-level LEVEL  stderr log threshold: debug, info, warn, error, off (default info)
    --log-json         one JSON object per log line instead of key=value text
    -h, --help         print this help
";

fn main() {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut config = EngineConfig::default();
    let mut log_level = LogLevel::Info;
    let mut log_json = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--addr" => addr = grab()?,
                "--workers" => {
                    config.workers = grab()?.parse().map_err(|e| format!("--workers: {e}"))?;
                }
                "--max-queued" => {
                    config.max_queued_per_tenant =
                        grab()?.parse().map_err(|e| format!("--max-queued: {e}"))?;
                }
                "--max-running" => {
                    config.max_running_per_tenant =
                        grab()?.parse().map_err(|e| format!("--max-running: {e}"))?;
                }
                "--cache" => {
                    config.cache_capacity = grab()?.parse().map_err(|e| format!("--cache: {e}"))?;
                }
                "--log-level" => {
                    log_level =
                        LogLevel::from_name(&grab()?).map_err(|e| format!("--log-level: {e}"))?;
                }
                "--log-json" => log_json = true,
                "-h" | "--help" => {
                    print!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown option {other}; see --help")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            eprintln!("espserve: {msg}");
            std::process::exit(2);
        }
    }
    if config.workers == 0 {
        // workers: 0 is the manual test mode of the engine; a server
        // with no workers would accept jobs and never run them.
        eprintln!("espserve: --workers must be at least 1");
        std::process::exit(2);
    }
    if config.max_running_per_tenant == 0 {
        eprintln!("espserve: --max-running must be at least 1");
        std::process::exit(2);
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("espserve: failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    let logger = Logger::stderr(log_level, log_json);
    let engine = Arc::new(JobEngine::with_logger(config.clone(), logger.clone()));
    engine.start();
    // Machine-greppable so scripts (and the CI smoke job) can discover
    // the bound port when --addr ends in :0.
    println!(
        "espserve: listening on http://{local}/v1 ({} workers)",
        config.workers
    );
    http::serve(listener, move |req| api::route(&engine, &req), logger);
}
