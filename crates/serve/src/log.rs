//! Structured, leveled logging for the job server.
//!
//! Every job lifecycle transition and server event goes through one
//! [`Logger`] as a single line: either `key=value` text for humans or
//! a one-line JSON object (`--log-json`) for log shippers. Lines carry
//! an `event` name (`job.submitted`, `job.finished`, ...) plus typed
//! fields, so a stream of them is machine-parseable without regexes.
//!
//! [`RateLimited`] suppresses repeated identical errors (the accept
//! loop under FD exhaustion can fail thousands of times per second)
//! by count, not wall clock, so suppression is deterministic: a key's
//! 1st, 2nd, 4th, 8th, ... occurrences are logged, each carrying how
//! many were dropped since the last emission.

use serde::{Map, Value};
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

/// Minimum severity a [`Logger`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Everything, including per-request chatter.
    Debug,
    /// Lifecycle transitions (the default).
    Info,
    /// Suspicious but recoverable conditions.
    Warn,
    /// Failures.
    Error,
    /// Nothing at all.
    Off,
}

impl LogLevel {
    /// Parses the command-line name.
    ///
    /// # Errors
    ///
    /// A printable message on unknown names.
    pub fn from_name(name: &str) -> Result<LogLevel, String> {
        match name {
            "debug" => Ok(LogLevel::Debug),
            "info" => Ok(LogLevel::Info),
            "warn" => Ok(LogLevel::Warn),
            "error" => Ok(LogLevel::Error),
            "off" => Ok(LogLevel::Off),
            other => Err(format!(
                "unknown log level {other}; expected debug, info, warn, error or off"
            )),
        }
    }

    /// The name as written in log lines and on the command line.
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
            LogLevel::Off => "off",
        }
    }
}

/// Where rendered log lines go. Implementations must be safe to share
/// across the worker pool and the accept loop.
pub trait LogSink: Send + Sync {
    /// Writes one already-rendered line (no trailing newline).
    fn write_line(&self, line: &str);
}

/// The production sink: one line to stderr per event.
pub struct StderrSink;

impl LogSink for StderrSink {
    fn write_line(&self, line: &str) {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
    }
}

/// A test sink that records every line in order.
#[derive(Default)]
pub struct BufferSink {
    lines: Mutex<Vec<String>>,
}

impl BufferSink {
    /// An empty buffer.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// Every line written so far, in order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("log buffer lock").clone()
    }
}

impl LogSink for BufferSink {
    fn write_line(&self, line: &str) {
        self.lines
            .lock()
            .expect("log buffer lock")
            .push(line.to_string());
    }
}

/// A leveled, structured logger. Cheap to clone: the sink is shared
/// behind an [`Arc`].
#[derive(Clone)]
pub struct Logger {
    level: LogLevel,
    json: bool,
    sink: Arc<dyn LogSink>,
}

impl Logger {
    /// A logger writing to stderr.
    pub fn stderr(level: LogLevel, json: bool) -> Logger {
        Logger {
            level,
            json,
            sink: Arc::new(StderrSink),
        }
    }

    /// A logger writing to the returned shared buffer (for tests).
    pub fn buffered(level: LogLevel, json: bool) -> (Logger, Arc<BufferSink>) {
        let sink = Arc::new(BufferSink::new());
        (
            Logger {
                level,
                json,
                sink: Arc::clone(&sink) as Arc<dyn LogSink>,
            },
            sink,
        )
    }

    /// A logger that drops everything.
    pub fn disabled() -> Logger {
        Logger {
            level: LogLevel::Off,
            json: false,
            sink: Arc::new(StderrSink),
        }
    }

    /// The configured minimum level.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Logs one event at `level` with its fields, if the level passes
    /// the threshold. Field order is preserved in both output modes.
    pub fn log(&self, level: LogLevel, event: &str, fields: &[(&str, Value)]) {
        if level < self.level || self.level == LogLevel::Off || level == LogLevel::Off {
            return;
        }
        let line = if self.json {
            let mut map = Map::new();
            map.insert("level".into(), Value::from(level.name()));
            map.insert("event".into(), Value::from(event));
            for (key, value) in fields {
                map.insert((*key).to_string(), value.clone());
            }
            serde_json::to_string(&Value::Object(map)).expect("log line serializes")
        } else {
            use std::fmt::Write as _;
            let mut out = format!("{:<5} {event}", level.name().to_uppercase());
            for (key, value) in fields {
                match value {
                    Value::String(s) => {
                        let _ = write!(out, " {key}={s:?}");
                    }
                    other => {
                        let _ = write!(
                            out,
                            " {key}={}",
                            serde_json::to_string(other).expect("field serializes")
                        );
                    }
                }
            }
            out
        };
        self.sink.write_line(&line);
    }

    /// [`LogLevel::Debug`] shorthand.
    pub fn debug(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(LogLevel::Debug, event, fields);
    }

    /// [`LogLevel::Info`] shorthand.
    pub fn info(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(LogLevel::Info, event, fields);
    }

    /// [`LogLevel::Warn`] shorthand.
    pub fn warn(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(LogLevel::Warn, event, fields);
    }

    /// [`LogLevel::Error`] shorthand.
    pub fn error(&self, event: &str, fields: &[(&str, Value)]) {
        self.log(LogLevel::Error, event, fields);
    }
}

/// Count-based suppression of repeated identical events.
///
/// Each key is logged on its 1st, 2nd, 4th, 8th, ... occurrence
/// (powers of two), with the number of suppressed occurrences since
/// the last emission. Counting instead of timing keeps the policy
/// deterministic — the same error sequence always logs the same lines.
#[derive(Default)]
pub struct RateLimited {
    counts: Mutex<HashMap<String, u64>>,
}

impl RateLimited {
    /// A fresh limiter with no history.
    pub fn new() -> RateLimited {
        RateLimited::default()
    }

    /// Records one occurrence of `key`. `Some(suppressed)` when this
    /// occurrence should be logged (`suppressed` = occurrences dropped
    /// since the last logged one), `None` when it should be dropped.
    pub fn check(&self, key: &str) -> Option<u64> {
        let mut counts = self.counts.lock().expect("rate limit lock");
        let count = counts.entry(key.to_string()).or_insert(0);
        *count += 1;
        if count.is_power_of_two() {
            // Since the previous power of two: count/2 total, of which
            // one (the previous emission) was logged.
            Some(if *count <= 2 { 0 } else { *count / 2 - 1 })
        } else {
            None
        }
    }

    /// Total occurrences recorded for `key`.
    pub fn count(&self, key: &str) -> u64 {
        self.counts
            .lock()
            .expect("rate limit lock")
            .get(key)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn levels_gate_output() {
        let (logger, sink) = Logger::buffered(LogLevel::Warn, false);
        logger.info("dropped", &[]);
        logger.warn("kept", &[]);
        logger.error("kept.too", &[("code", json!(7))]);
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("WARN  kept"), "{:?}", lines[0]);
        assert!(lines[1].contains("code=7"), "{:?}", lines[1]);
    }

    #[test]
    fn off_silences_everything() {
        let (logger, sink) = Logger::buffered(LogLevel::Off, false);
        logger.error("still.dropped", &[]);
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn json_lines_are_parseable_with_stable_fields() {
        let (logger, sink) = Logger::buffered(LogLevel::Info, true);
        logger.info(
            "job.submitted",
            &[("job_id", json!(3)), ("tenant", json!("alice"))],
        );
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        let v = serde_json::parse_value(&lines[0]).expect("valid JSON");
        assert_eq!(v["level"].as_str(), Some("info"));
        assert_eq!(v["event"].as_str(), Some("job.submitted"));
        assert_eq!(v["job_id"].as_u64(), Some(3));
        assert_eq!(v["tenant"].as_str(), Some("alice"));
    }

    #[test]
    fn rate_limiter_logs_powers_of_two_only() {
        let limiter = RateLimited::new();
        let decisions: Vec<Option<u64>> = (0..9).map(|_| limiter.check("x")).collect();
        assert_eq!(
            decisions,
            vec![
                Some(0), // 1st
                Some(0), // 2nd
                None,
                Some(1), // 4th: one dropped (the 3rd)
                None,
                None,
                None,
                Some(3), // 8th: three dropped (5th-7th)
                None,
            ]
        );
        assert_eq!(limiter.count("x"), 9);
        // Distinct keys are limited independently.
        assert_eq!(limiter.check("y"), Some(0));
    }
}
