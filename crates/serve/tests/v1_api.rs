//! Contract tests for the espserve v1 HTTP API.
//!
//! Most tests drive [`esp4ml_serve::api::route`] directly against an
//! engine with `workers: 0`, so job execution happens exactly when the
//! test calls `run_next()` — every state transition is deterministic
//! and observable. One test goes through a real TCP socket end to end.

use esp4ml::apps::TrainedModels;
use esp4ml_bench::request::{self, RunRequest, WorkloadKind};
use esp4ml_serve::api::route;
use esp4ml_serve::engine::{EngineConfig, JobEngine};
use esp4ml_serve::http::{HttpRequest, HttpResponse};
use serde::Value;

const BROKEN_CONFIG: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../configs/broken_dup_tile.json"
));

fn test_engine() -> JobEngine {
    JobEngine::new(EngineConfig {
        workers: 0,
        max_queued_per_tenant: 3,
        max_running_per_tenant: 1,
        cache_capacity: 8,
    })
}

fn req(method: &str, path: &str, api_key: &str, body: &str) -> HttpRequest {
    // Split a query string off the path the way http::read_request does,
    // so tests can exercise e.g. `/v1/jobs/1?wait_ms=50`.
    let (path, query) = path.split_once('?').unwrap_or((path, ""));
    HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        headers: vec![("x-api-key".to_string(), api_key.to_string())],
        body: body.to_string(),
    }
}

fn parse(response: &HttpResponse) -> Value {
    serde_json::parse_value(&response.body)
        .unwrap_or_else(|e| panic!("body is JSON ({e}): {}", response.body))
}

/// The golden fig8 single-point submission body.
fn fig8_body() -> String {
    r#"{"priority":"normal","request":{"schema_version":1,"workload":{"kind":"fig8"},"configs":[0],"frames":2}}"#
        .to_string()
}

#[test]
fn golden_submit_poll_fetch_flow() {
    let engine = test_engine();
    let created = route(&engine, &req("POST", "/v1/jobs", "alice", &fig8_body()));
    assert_eq!(created.status, 201);
    let body = parse(&created);
    assert_eq!(body.get("schema_version").and_then(Value::as_u64), Some(1));
    assert_eq!(body.get("state").and_then(Value::as_str), Some("queued"));
    assert_eq!(body.get("cached").and_then(Value::as_bool), Some(false));
    let id = body.get("job_id").and_then(Value::as_u64).expect("job id");

    let pending = route(&engine, &req("GET", &format!("/v1/jobs/{id}"), "alice", ""));
    assert_eq!(pending.status, 200);
    assert_eq!(
        parse(&pending).get("state").and_then(Value::as_str),
        Some("queued")
    );
    // Artifacts are not available before the job is done.
    let early = route(
        &engine,
        &req(
            "GET",
            &format!("/v1/jobs/{id}/artifacts/metrics"),
            "alice",
            "",
        ),
    );
    assert_eq!(early.status, 409);

    assert!(engine.run_next());

    let done = parse(&route(
        &engine,
        &req("GET", &format!("/v1/jobs/{id}"), "alice", ""),
    ));
    assert_eq!(done.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(done.get("verdict_ok").and_then(Value::as_bool), Some(true));
    let kinds = done
        .get("artifacts")
        .and_then(Value::as_array)
        .expect("kinds");
    assert!(kinds.iter().any(|k| k.as_str() == Some("metrics")));

    let metrics = route(
        &engine,
        &req(
            "GET",
            &format!("/v1/jobs/{id}/artifacts/metrics"),
            "alice",
            "",
        ),
    );
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.content_type, "application/json");
    // The artifact is the enveloped run-metrics document, byte-identical
    // to what the CLI writes for the same request via --metrics.
    let mut expected = RunRequest::new(WorkloadKind::Fig8);
    expected.frames = 2;
    expected.configs = vec![0];
    let response = request::execute(&expected, &TrainedModels::untrained()).expect("runs");
    assert_eq!(Some(&metrics.body), response.artifacts.get("metrics"));
    let envelope = serde_json::parse_value(&metrics.body).expect("valid JSON");
    esp4ml::trace::schema::open_envelope(envelope, "run-metrics").expect("run-metrics envelope");
}

#[test]
fn admission_reject_carries_e_codes_and_runs_nothing() {
    let engine = test_engine();
    let body = format!(
        r#"{{"request":{{"schema_version":1,"workload":{{"kind":"fig8"}},"configs":[0],"frames":2,"soc_config":{BROKEN_CONFIG}}}}}"#
    );
    let rejected = route(&engine, &req("POST", "/v1/jobs", "alice", &body));
    assert_eq!(rejected.status, 422);
    let parsed = parse(&rejected);
    let error = parsed.get("error").and_then(Value::as_str).expect("error");
    assert!(error.contains("nothing was simulated"), "got: {error}");
    let diags = parsed
        .get("diagnostics")
        .and_then(Value::as_array)
        .expect("diagnostics array");
    assert!(
        diags.iter().any(|d| {
            d.get("code").and_then(Value::as_str) == Some("E0101")
                && d.get("severity").and_then(Value::as_str) == Some("error")
        }),
        "expected an E0101 diagnostic, got: {}",
        rejected.body
    );
    // No job was created and nothing reached the simulator.
    assert!(!engine.run_next());
    let health = parse(&route(&engine, &req("GET", "/v1/healthz", "alice", "")));
    let payload = health.get("payload").expect("healthz envelope payload");
    assert_eq!(payload.get("queued").and_then(Value::as_u64), Some(0));
    assert_eq!(payload.get("finished").and_then(Value::as_u64), Some(0));
}

#[test]
fn cache_hit_resubmission_is_instant_and_byte_identical() {
    let engine = test_engine();
    let first = parse(&route(
        &engine,
        &req("POST", "/v1/jobs", "alice", &fig8_body()),
    ));
    let first_id = first.get("job_id").and_then(Value::as_u64).expect("id");
    assert!(engine.run_next());
    // Same job, different tenant, reordered JSON keys, different worker
    // count — all irrelevant to the cache key.
    let reordered = r#"{"request":{"frames":2,"jobs":7,"engine":"event-driven","configs":[0],"workload":{"kind":"fig8"},"schema_version":1}}"#;
    let resubmitted = route(&engine, &req("POST", "/v1/jobs", "bob", reordered));
    assert_eq!(
        resubmitted.status, 200,
        "cache hit, not 201: {}",
        resubmitted.body
    );
    let body = parse(&resubmitted);
    assert_eq!(body.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(body.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(
        body.get("cache_key").and_then(Value::as_str),
        first.get("cache_key").and_then(Value::as_str),
        "identical requests share one cache key"
    );
    let second_id = body.get("job_id").and_then(Value::as_u64).expect("id");
    let a = route(
        &engine,
        &req(
            "GET",
            &format!("/v1/jobs/{first_id}/artifacts/metrics"),
            "alice",
            "",
        ),
    );
    let b = route(
        &engine,
        &req(
            "GET",
            &format!("/v1/jobs/{second_id}/artifacts/metrics"),
            "bob",
            "",
        ),
    );
    assert_eq!(a.body, b.body, "cached artifact bytes are identical");
    assert!(!engine.run_next(), "the cache hit consumed no simulation");
}

#[test]
fn cancel_mid_queue_prevents_execution() {
    let engine = test_engine();
    let keep = parse(&route(
        &engine,
        &req("POST", "/v1/jobs", "alice", &fig8_body()),
    ));
    let keep_id = keep.get("job_id").and_then(Value::as_u64).expect("id");
    let drop_body = fig8_body().replace("\"frames\":2", "\"frames\":3");
    let cancel_me = parse(&route(
        &engine,
        &req("POST", "/v1/jobs", "alice", &drop_body),
    ));
    let cancel_id = cancel_me.get("job_id").and_then(Value::as_u64).expect("id");

    let cancelled = route(
        &engine,
        &req("DELETE", &format!("/v1/jobs/{cancel_id}"), "alice", ""),
    );
    assert_eq!(cancelled.status, 200);
    assert_eq!(
        parse(&cancelled).get("state").and_then(Value::as_str),
        Some("cancelled")
    );
    // Only the surviving job runs; the queue is then empty.
    assert!(engine.run_next());
    assert!(!engine.run_next());
    let kept = parse(&route(
        &engine,
        &req("GET", &format!("/v1/jobs/{keep_id}"), "alice", ""),
    ));
    assert_eq!(kept.get("state").and_then(Value::as_str), Some("done"));
    let gone = parse(&route(
        &engine,
        &req("GET", &format!("/v1/jobs/{cancel_id}"), "alice", ""),
    ));
    assert_eq!(gone.get("state").and_then(Value::as_str), Some("cancelled"));
    // Cancelling a finished job conflicts.
    let again = route(
        &engine,
        &req("DELETE", &format!("/v1/jobs/{cancel_id}"), "alice", ""),
    );
    assert_eq!(again.status, 409);
}

#[test]
fn queued_quota_returns_429() {
    let engine = test_engine();
    for frames in 2..5 {
        let body = fig8_body().replace("\"frames\":2", &format!("\"frames\":{frames}"));
        let ok = route(&engine, &req("POST", "/v1/jobs", "alice", &body));
        assert_eq!(ok.status, 201, "within quota: {}", ok.body);
    }
    let over = fig8_body().replace("\"frames\":2", "\"frames\":9");
    let refused = route(&engine, &req("POST", "/v1/jobs", "alice", &over));
    assert_eq!(refused.status, 429);
    let error = parse(&refused);
    let msg = error.get("error").and_then(Value::as_str).expect("error");
    assert!(msg.contains("quota"), "got: {msg}");
    // Another tenant is unaffected.
    let other = route(&engine, &req("POST", "/v1/jobs", "bob", &over));
    assert_eq!(other.status, 201);
}

#[test]
fn jobs_are_invisible_across_tenants() {
    let engine = test_engine();
    let created = parse(&route(
        &engine,
        &req("POST", "/v1/jobs", "alice", &fig8_body()),
    ));
    let id = created.get("job_id").and_then(Value::as_u64).expect("id");
    for request in [
        req("GET", &format!("/v1/jobs/{id}"), "mallory", ""),
        req(
            "GET",
            &format!("/v1/jobs/{id}/artifacts/metrics"),
            "mallory",
            "",
        ),
        req("DELETE", &format!("/v1/jobs/{id}"), "mallory", ""),
    ] {
        assert_eq!(route(&engine, &request).status, 404);
    }
}

#[test]
fn malformed_requests_get_400_with_reasons() {
    let engine = test_engine();
    let garbage = route(&engine, &req("POST", "/v1/jobs", "alice", "not json"));
    assert_eq!(garbage.status, 400);
    let bad_priority = fig8_body().replace("\"normal\"", "\"urgent\"");
    let refused = route(&engine, &req("POST", "/v1/jobs", "alice", &bad_priority));
    assert_eq!(refused.status, 400);
    assert!(parse(&refused)
        .get("error")
        .and_then(Value::as_str)
        .expect("error")
        .contains("priority"));
    let bad_engine = fig8_body().replace("\"frames\":2", "\"frames\":2,\"engine\":\"warp\"");
    let invalid = route(&engine, &req("POST", "/v1/jobs", "alice", &bad_engine));
    assert_eq!(invalid.status, 400);
    assert!(parse(&invalid)
        .get("error")
        .and_then(Value::as_str)
        .expect("error")
        .contains("unknown engine"));
    assert_eq!(
        route(&engine, &req("GET", "/v1/jobs/nope", "alice", "")).status,
        400
    );
    assert_eq!(
        route(&engine, &req("GET", "/v2/jobs", "alice", "")).status,
        404
    );
    assert_eq!(
        route(&engine, &req("PUT", "/v1/jobs", "alice", "")).status,
        405
    );
}

#[test]
fn healthz_tracks_engine_counters() {
    let engine = test_engine();
    let before = parse(&route(&engine, &req("GET", "/v1/healthz", "", "")));
    // Healthz is wrapped in the standard artifact envelope.
    assert_eq!(
        before.get("schema_version").and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(before.get("kind").and_then(Value::as_str), Some("healthz"));
    let payload = before.get("payload").expect("payload");
    assert_eq!(payload.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(payload.get("queued").and_then(Value::as_u64), Some(0));
    assert_eq!(payload.get("cache_hits").and_then(Value::as_u64), Some(0));
    assert_eq!(
        payload.get("version").and_then(Value::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(payload.get("uptime_secs").and_then(Value::as_u64).is_some());
    route(&engine, &req("POST", "/v1/jobs", "alice", &fig8_body()));
    assert!(engine.run_next());
    let after = parse(&route(&engine, &req("GET", "/v1/healthz", "", "")));
    let payload = after.get("payload").expect("payload");
    assert_eq!(payload.get("queued").and_then(Value::as_u64), Some(0));
    assert_eq!(payload.get("finished").and_then(Value::as_u64), Some(1));
    assert_eq!(
        payload.get("cache_entries").and_then(Value::as_u64),
        Some(1)
    );
    // The run was a cache miss; a resubmission is a hit, and healthz's
    // counters agree with /v1/metrics (both read ServeMetrics).
    assert_eq!(payload.get("cache_misses").and_then(Value::as_u64), Some(1));
    route(&engine, &req("POST", "/v1/jobs", "bob", &fig8_body()));
    let hit = parse(&route(&engine, &req("GET", "/v1/healthz", "", "")));
    let payload = hit.get("payload").expect("payload");
    assert_eq!(payload.get("cache_hits").and_then(Value::as_u64), Some(1));
}

/// The `/v1/metrics` contract: after a known flow (one executed job,
/// one cached resubmit, one admission reject, one cancel) every counter
/// has an exact value, the exposition text is well-formed, and the
/// cache counters agree with `/v1/healthz`.
#[test]
fn metrics_contract_counts_every_flow() {
    let engine = test_engine();
    // 1. A job that actually simulates.
    let created = route(&engine, &req("POST", "/v1/jobs", "alice", &fig8_body()));
    assert_eq!(created.status, 201);
    assert!(engine.run_next());
    // 2. The identical request again: a cache hit.
    let hit = route(&engine, &req("POST", "/v1/jobs", "bob", &fig8_body()));
    assert_eq!(hit.status, 200);
    // 3. An admission reject (broken SoC config).
    let broken = format!(
        r#"{{"request":{{"schema_version":1,"workload":{{"kind":"fig8"}},"configs":[0],"frames":2,"soc_config":{BROKEN_CONFIG}}}}}"#
    );
    assert_eq!(
        route(&engine, &req("POST", "/v1/jobs", "alice", &broken)).status,
        422
    );
    // 4. A queued job cancelled before it runs.
    let body = fig8_body().replace("\"frames\":2", "\"frames\":3");
    let doomed = parse(&route(&engine, &req("POST", "/v1/jobs", "alice", &body)));
    let doomed_id = doomed.get("job_id").and_then(Value::as_u64).expect("id");
    assert_eq!(
        route(
            &engine,
            &req("DELETE", &format!("/v1/jobs/{doomed_id}"), "alice", "")
        )
        .status,
        200
    );

    let metrics = route(&engine, &req("GET", "/v1/metrics", "", ""));
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.content_type.starts_with("text/plain"),
        "Prometheus exposition is text: {}",
        metrics.content_type
    );
    let text = &metrics.body;
    // Flat counters (rendered through the trace CounterRegistry).
    assert!(text.contains("espserve_jobs_submitted 3\n"), "{text}");
    assert!(text.contains("espserve_jobs_started 1\n"), "{text}");
    assert!(text.contains("espserve_cache_hits 1\n"), "{text}");
    assert!(text.contains("espserve_cache_misses 1\n"), "{text}");
    // Per-tenant admission outcomes.
    assert!(text.contains("espserve_tenant_jobs_total{tenant=\"alice\",outcome=\"admitted\"} 2"));
    assert!(text.contains("espserve_tenant_jobs_total{tenant=\"alice\",outcome=\"rejected\"} 1"));
    assert!(text.contains("espserve_tenant_jobs_total{tenant=\"bob\",outcome=\"admitted\"} 1"));
    // Terminal results: the executed job and the cache hit are both
    // `done`; the cancel is its own result.
    assert!(text.contains("espserve_jobs_finished_total{result=\"done\"} 2"));
    assert!(text.contains("espserve_jobs_finished_total{result=\"cancelled\"} 1"));
    // HTTP requests by route pattern × method × status. The /v1/metrics
    // scrape itself is counted after its body is rendered, so it does
    // not appear in its own exposition.
    assert!(text.contains(
        "espserve_http_requests_total{route=\"/v1/jobs\",method=\"POST\",status=\"201\"} 2"
    ));
    assert!(text.contains(
        "espserve_http_requests_total{route=\"/v1/jobs\",method=\"POST\",status=\"200\"} 1"
    ));
    assert!(text.contains(
        "espserve_http_requests_total{route=\"/v1/jobs\",method=\"POST\",status=\"422\"} 1"
    ));
    assert!(text.contains(
        "espserve_http_requests_total{route=\"/v1/jobs/{id}\",method=\"DELETE\",status=\"200\"} 1"
    ));
    // Exactly one simulation ran: one observation in each duration
    // histogram, with the cumulative +Inf bucket equal to the count.
    assert!(text.contains("# TYPE espserve_job_run_duration_ms histogram"));
    assert!(text.contains("espserve_job_run_duration_ms_count 1"));
    assert!(text.contains("espserve_job_run_duration_ms_bucket{le=\"+Inf\"} 1"));
    assert!(text.contains("espserve_job_queue_wait_ms_count 1"));
    // Nothing queued or running at scrape time.
    assert!(text.contains("espserve_queue_depth{priority=\"normal\"} 0"));
    assert!(text.contains("espserve_jobs_running 0"));
    // The healthz cache counters read the same registry.
    let health = parse(&route(&engine, &req("GET", "/v1/healthz", "", "")));
    let payload = health.get("payload").expect("payload");
    assert_eq!(payload.get("cache_hits").and_then(Value::as_u64), Some(1));
    assert_eq!(payload.get("cache_misses").and_then(Value::as_u64), Some(1));
    assert_eq!(
        payload.get("cache_evictions").and_then(Value::as_u64),
        Some(0)
    );
}

/// Progress and long-polling through the HTTP surface: `wait_ms` on a
/// queued job times out unchanged, a terminal job answers immediately,
/// and the final snapshot's `points_done` equals its `points_total`.
#[test]
fn job_status_reports_progress_and_long_polls() {
    let engine = test_engine();
    let created = parse(&route(
        &engine,
        &req("POST", "/v1/jobs", "alice", &fig8_body()),
    ));
    let id = created.get("job_id").and_then(Value::as_u64).expect("id");
    let queued = route(
        &engine,
        &req("GET", &format!("/v1/jobs/{id}?wait_ms=1"), "alice", ""),
    );
    assert_eq!(queued.status, 200);
    let body = parse(&queued);
    assert_eq!(body.get("state").and_then(Value::as_str), Some("queued"));
    assert!(matches!(body.get("progress"), Some(Value::Null)));
    let entry_version = body
        .get("version")
        .and_then(Value::as_u64)
        .expect("version");

    assert!(engine.run_next());
    // Terminal jobs return immediately even with the maximum hold.
    let done = parse(&route(
        &engine,
        &req("GET", &format!("/v1/jobs/{id}?wait_ms=30000"), "alice", ""),
    ));
    assert_eq!(done.get("state").and_then(Value::as_str), Some("done"));
    assert!(
        done.get("version")
            .and_then(Value::as_u64)
            .expect("version")
            > entry_version,
        "every transition bumps the version"
    );
    let progress = done.get("progress").expect("progress");
    let points_done = progress
        .get("points_done")
        .and_then(Value::as_u64)
        .expect("points_done");
    assert!(points_done > 0);
    assert_eq!(
        progress.get("points_total").and_then(Value::as_u64),
        Some(points_done),
        "final progress covers the whole grid"
    );
    assert_eq!(
        route(
            &engine,
            &req("GET", &format!("/v1/jobs/{id}?wait_ms=soon"), "alice", "")
        )
        .status,
        400
    );
}

/// The `wait_ms` contract: any numeric value is accepted — oversized
/// ones (even past `u64::MAX`) clamp to the server bound instead of
/// 400ing — `wait_ms=0` answers immediately, and only non-numeric
/// input is rejected.
#[test]
fn wait_ms_clamps_overflow_and_zero_answers_immediately() {
    let engine = test_engine();
    let created = parse(&route(
        &engine,
        &req("POST", "/v1/jobs", "alice", &fig8_body()),
    ));
    let id = created.get("job_id").and_then(Value::as_u64).expect("id");

    // wait_ms=0 on a *queued* job: no state change is coming (no
    // workers), so only a zero-duration hold lets this return at all.
    let started = std::time::Instant::now();
    let zero = route(
        &engine,
        &req("GET", &format!("/v1/jobs/{id}?wait_ms=0"), "alice", ""),
    );
    assert_eq!(zero.status, 200);
    assert_eq!(
        parse(&zero).get("state").and_then(Value::as_str),
        Some("queued")
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "wait_ms=0 must answer immediately, not hold the poll"
    );

    assert!(engine.run_next());
    // On the terminal job every numeric value answers instantly, so the
    // oversized ones only have to prove they don't 400: exactly
    // u64::MAX, one past it, and a value far beyond any integer width.
    for oversized in [
        "18446744073709551615",
        "18446744073709551616",
        "99999999999999999999999999999999",
    ] {
        let resp = route(
            &engine,
            &req(
                "GET",
                &format!("/v1/jobs/{id}?wait_ms={oversized}"),
                "alice",
                "",
            ),
        );
        assert_eq!(resp.status, 200, "wait_ms={oversized} must clamp, not 400");
        assert_eq!(
            parse(&resp).get("state").and_then(Value::as_str),
            Some("done")
        );
    }
    // Only non-numeric input is malformed.
    for bad in ["", "-1", "1e3", "10s"] {
        let resp = route(
            &engine,
            &req("GET", &format!("/v1/jobs/{id}?wait_ms={bad}"), "alice", ""),
        );
        assert_eq!(resp.status, 400, "wait_ms={bad:?} must be rejected");
    }
}

/// End-to-end over a real socket: the exact bytes a curl client would
/// exchange, with a live worker thread doing the simulation.
#[test]
fn v1_api_over_a_real_tcp_socket() {
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let engine = Arc::new(JobEngine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    }));
    engine.start();
    let server_engine = Arc::clone(&engine);
    std::thread::spawn(move || {
        esp4ml_serve::http::serve(
            listener,
            move |request| route(&server_engine, &request),
            esp4ml_serve::log::Logger::disabled(),
        );
    });

    let exchange = |method: &str, path: &str, body: &str| -> HttpResponse {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nX-Api-Key: ci\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send");
        // Reuse the server-side parser to read the response: the shapes
        // are close enough (status line is ignored; we re-parse it).
        use std::io::Read;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("response");
        let text = String::from_utf8(raw).expect("utf8");
        let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let content_type = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Type: "))
            .unwrap_or("")
            .to_string();
        HttpResponse {
            status,
            content_type,
            body: body.to_string(),
        }
    };

    let created = exchange("POST", "/v1/jobs", &fig8_body());
    assert_eq!(created.status, 201, "body: {}", created.body);
    let id = parse(&created)
        .get("job_id")
        .and_then(Value::as_u64)
        .expect("job id");

    let mut state = String::new();
    for _ in 0..600 {
        let status = parse(&exchange("GET", &format!("/v1/jobs/{id}"), ""));
        state = status
            .get("state")
            .and_then(Value::as_str)
            .expect("state")
            .to_string();
        if state == "done" || state == "failed" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert_eq!(state, "done", "job should finish under the worker thread");

    let metrics = exchange("GET", &format!("/v1/jobs/{id}/artifacts/metrics"), "");
    assert_eq!(metrics.status, 200);
    let mut expected = RunRequest::new(WorkloadKind::Fig8);
    expected.frames = 2;
    expected.configs = vec![0];
    let response = request::execute(&expected, &TrainedModels::untrained()).expect("runs");
    assert_eq!(
        Some(&metrics.body),
        response.artifacts.get("metrics"),
        "server artifact is byte-identical to the library run"
    );
    engine.stop();
}
