//! Property tests for the deterministic cache key: the identity of a
//! job must not depend on JSON syntax accidents (key order, worker
//! count, engine-name aliases), or the result cache would miss on
//! equivalent requests — and, worse, it must depend on every semantic
//! field, or the cache would serve the wrong result.

use esp4ml_bench::request::{canonical_json, RunRequest, WorkloadKind};
use proptest::prelude::*;
use serde::{Map, Value};

/// Rebuilds a JSON tree with every object's keys inserted in an order
/// chosen by `pick` (a stream of pseudo-random choices).
fn shuffle_keys(value: &Value, pick: &mut impl FnMut(usize) -> usize) -> Value {
    match value {
        Value::Object(map) => {
            let mut entries: Vec<(String, Value)> = map
                .iter()
                .map(|(k, v)| (k.clone(), shuffle_keys(v, pick)))
                .collect();
            let mut out = Map::new();
            while !entries.is_empty() {
                let (k, v) = entries.remove(pick(entries.len()));
                out.insert(k, v);
            }
            Value::Object(out)
        }
        Value::Array(items) => Value::Array(items.iter().map(|v| shuffle_keys(v, pick)).collect()),
        other => other.clone(),
    }
}

fn request_for(workload: WorkloadKind, frames: u64, config: usize) -> RunRequest {
    let mut r = RunRequest::new(workload);
    r.frames = frames;
    r.configs = vec![config];
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-tripping a request through JSON with every object's keys
    /// in a random order never changes the cache key.
    #[test]
    fn cache_key_is_invariant_under_key_reordering(
        seeds in proptest::collection::vec(0usize..1000, 16),
        frames in 1u64..32,
        config in 0usize..6,
        workload_pick in 0usize..3,
    ) {
        let workload = [WorkloadKind::Fig8, WorkloadKind::Fig7, WorkloadKind::Table1][workload_pick];
        let config = if matches!(workload, WorkloadKind::Table1) { config % 3 } else { config };
        let request = request_for(workload, frames, config);
        let value = serde_json::to_value(&request).expect("serializes");
        let mut cursor = 0usize;
        let mut pick = |n: usize| {
            let choice = seeds[cursor % seeds.len()] % n;
            cursor += 1;
            choice
        };
        let shuffled = shuffle_keys(&value, &mut pick);
        // Only count cases where the shuffle actually changed the byte
        // order — otherwise the property would hold vacuously.
        prop_assume!(
            serde_json::to_string(&value).expect("json")
                != serde_json::to_string(&shuffled).expect("json")
        );
        let reparsed: RunRequest =
            serde_json::from_value(shuffled.clone()).expect("round-trips");
        prop_assert_eq!(request.cache_key(), reparsed.cache_key());
        prop_assert_eq!(
            canonical_json(&value),
            canonical_json(&shuffled),
            "canonical form is order-free"
        );
    }

    /// The worker count, prefix forking and the `event-driven` alias
    /// never influence the key; every semantic field does.
    #[test]
    fn cache_key_tracks_semantics_only(
        frames in 1u64..32,
        jobs in 0usize..9,
        config in 0usize..6,
    ) {
        let base = request_for(WorkloadKind::Fig8, frames, config);

        let mut jobs_differ = base.clone();
        jobs_differ.jobs = jobs;
        let mut fork_differ = base.clone();
        fork_differ.fork_prefix = true;
        let mut alias = base.clone();
        alias.engine = "event-driven".to_string();
        prop_assert_eq!(base.cache_key(), jobs_differ.cache_key());
        prop_assert_eq!(base.cache_key(), fork_differ.cache_key());
        prop_assert_eq!(base.cache_key(), alias.cache_key());

        let mut other_frames = base.clone();
        other_frames.frames = frames + 1;
        let mut other_engine = base.clone();
        other_engine.engine = "naive".to_string();
        let mut other_config = base.clone();
        other_config.configs = vec![(config + 1) % 6];
        prop_assert_ne!(base.cache_key(), other_frames.cache_key());
        prop_assert_ne!(base.cache_key(), other_engine.cache_key());
        prop_assert_ne!(base.cache_key(), other_config.cache_key());
    }
}
