//! Integration test: custom routing tables (the fault-avoidance use case
//! the ESP flow's generated routing tables support).

use esp4ml_noc::{Coord, Mesh, MeshConfig, MsgKind, Packet, Plane, Port, Route};

/// Reroute traffic from (0,0) to (2,0) around the northern row, as if the
/// (0,0)-(1,0) link were faulty, and verify delivery over the detour.
#[test]
fn detour_route_delivers_around_faulty_link() {
    let mut mesh = Mesh::new(MeshConfig::new(3, 3)).expect("mesh");
    let dest = Coord::new(2, 0);
    // Detour: (0,0) -> S -> (0,1) -> E -> (1,1) -> E -> (2,1) -> N -> (2,0).
    let hops = [
        (Coord::new(0, 0), Port::South),
        (Coord::new(0, 1), Port::East),
        (Coord::new(1, 1), Port::East),
        (Coord::new(2, 1), Port::North),
    ];
    for (tile, port) in hops {
        let router = mesh.router_mut(tile);
        let mut table = router.table().clone();
        table.set_route(dest, Route::Forward(port));
        router.set_table(table);
    }
    mesh.inject(Packet::new(
        Coord::new(0, 0),
        dest,
        Plane::DmaRsp,
        MsgKind::DmaData,
        vec![1, 2, 3],
    ))
    .expect("inject");
    mesh.run_until_idle(1000);
    let pkt = mesh
        .eject(dest, Plane::DmaRsp)
        .expect("delivered via detour");
    assert_eq!(pkt.payload(), &[1, 2, 3]);
    // The detour takes 4 hops instead of XY's 2, for a 4-flit packet
    // (head + 3 payload words).
    assert_eq!(mesh.stats().plane(Plane::DmaRsp).flit_hops, 4 * 4);
}

/// Custom routes only affect the overridden destination; other traffic
/// still follows XY.
#[test]
fn override_is_destination_scoped() {
    let mut mesh = Mesh::new(MeshConfig::new(3, 1)).expect("mesh");
    // Nonsensical override for an unused destination must not disturb
    // traffic to other destinations.
    let router = mesh.router_mut(Coord::new(0, 0));
    let mut table = router.table().clone();
    table.set_route(Coord::new(2, 0), Route::Forward(Port::East));
    router.set_table(table);
    mesh.inject(Packet::new(
        Coord::new(0, 0),
        Coord::new(1, 0),
        Plane::IoIrq,
        MsgKind::Irq,
        vec![],
    ))
    .expect("inject");
    mesh.run_until_idle(100);
    assert!(mesh.eject(Coord::new(1, 0), Plane::IoIrq).is_some());
}
