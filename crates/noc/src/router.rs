//! The 5-port wormhole router replicated per plane at every tile.

use crate::flit::Flit;
use crate::routing::{Route, RoutingTable};
use crate::{Coord, Plane};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A router port. Four mesh directions plus the local (tile) port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Port {
    /// Towards row `y - 1`.
    North,
    /// Towards row `y + 1`.
    South,
    /// Towards column `x + 1`.
    East,
    /// Towards column `x - 1`.
    West,
    /// The tile socket attached to this router.
    Local,
}

impl Port {
    /// All ports in index order.
    pub const ALL: [Port; 5] = [
        Port::North,
        Port::South,
        Port::East,
        Port::West,
        Port::Local,
    ];

    /// Number of router ports.
    pub const COUNT: usize = 5;

    /// Dense index of the port.
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::South => 1,
            Port::East => 2,
            Port::West => 3,
            Port::Local => 4,
        }
    }

    /// The port a neighbouring router receives on when this router sends
    /// through `self` (i.e. the opposite direction).
    ///
    /// # Panics
    ///
    /// Panics for [`Port::Local`], which has no mesh counterpart.
    pub fn opposite(self) -> Port {
        match self {
            Port::North => Port::South,
            Port::South => Port::North,
            Port::East => Port::West,
            Port::West => Port::East,
            Port::Local => panic!("local port has no opposite"),
        }
    }

    /// The coordinate reached by stepping from `from` through this port, or
    /// `None` if the step leaves the `u8` coordinate space (mesh bounds are
    /// checked by the caller).
    pub fn step(self, from: Coord) -> Option<Coord> {
        match self {
            Port::North => from.y.checked_sub(1).map(|y| Coord::new(from.x, y)),
            Port::South => from.y.checked_add(1).map(|y| Coord::new(from.x, y)),
            Port::East => from.x.checked_add(1).map(|x| Coord::new(x, from.y)),
            Port::West => from.x.checked_sub(1).map(|x| Coord::new(x, from.y)),
            Port::Local => Some(from),
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::North => "N",
            Port::South => "S",
            Port::East => "E",
            Port::West => "W",
            Port::Local => "L",
        };
        f.write_str(s)
    }
}

/// Configuration of a single router (shared by all routers of a mesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Capacity, in flits, of each input queue (per plane, per port).
    pub input_queue_depth: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        // ESP uses shallow queues at tile/NoC interfaces; 4 flits is the
        // depth used by the ESP wormhole router input buffers.
        RouterConfig {
            input_queue_depth: 4,
        }
    }
}

/// Per-plane router state: input queues, wormhole locks, arbitration state.
#[derive(Debug)]
struct PlaneRouter {
    /// One input FIFO per port.
    inputs: [VecDeque<Flit>; Port::COUNT],
    /// For each output port: the input port currently holding the wormhole,
    /// if a packet is in flight through that output.
    locks: [Option<Port>; Port::COUNT],
    /// Round-robin arbitration pointer per output port.
    rr: [usize; Port::COUNT],
}

impl PlaneRouter {
    fn new() -> Self {
        PlaneRouter {
            inputs: Default::default(),
            locks: [None; Port::COUNT],
            rr: [0; Port::COUNT],
        }
    }
}

/// Serializable dynamic state of one plane of a router: input FIFOs,
/// wormhole locks and round-robin arbitration pointers. Part of
/// [`RouterState`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaneRouterState {
    /// Input FIFO contents per port (head of queue first).
    pub inputs: Vec<Vec<Flit>>,
    /// For each output port, the input port holding the wormhole.
    pub locks: Vec<Option<Port>>,
    /// Round-robin arbitration pointer per output port.
    pub rr: Vec<usize>,
}

/// Serializable dynamic state of a [`Router`] for simulation snapshots.
///
/// The routing table is *not* captured: it is deterministically rebuilt
/// from the coordinate and mesh dimensions, so restore assumes the
/// default XY table (or an unchanged custom table). The structural
/// [`RouterConfig`] is likewise validated, not restored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterState {
    /// Per-plane queues, locks and arbitration pointers.
    pub planes: Vec<PlaneRouterState>,
    /// Flits forwarded onto mesh links (all planes).
    pub forwarded_flits: u64,
    /// Per-`(plane, port)` link occupancy counters.
    pub link_flits: Vec<[u64; Port::COUNT]>,
    /// Per-plane credit-stall counters.
    pub credit_stalls: Vec<u64>,
}

/// A single mesh router: five ports, one queue set per plane, XY routing.
///
/// Routers are stepped by the [`Mesh`](crate::Mesh) in two phases per cycle
/// (select then commit) so that a flit advances at most one hop per cycle.
#[derive(Debug)]
pub struct Router {
    coord: Coord,
    table: RoutingTable,
    config: RouterConfig,
    planes: Vec<PlaneRouter>,
    /// Flits this router forwarded onto mesh links (all planes).
    forwarded_flits: u64,
    /// Flits moved through each `(plane, output port)` — link occupancy
    /// counters for the NoC heatmap (the Local column counts ejections).
    link_flits: Vec<[u64; Port::COUNT]>,
    /// Per-plane cycles a selected wormhole stalled on downstream
    /// back-pressure (zero credits).
    credit_stalls: Vec<u64>,
}

/// A transfer selected during the arbitration phase of a cycle.
#[derive(Debug, Clone)]
pub(crate) struct Transfer {
    pub(crate) plane: Plane,
    pub(crate) in_port: Port,
    pub(crate) out_port: Port,
    pub(crate) flit: Flit,
}

impl Router {
    /// Creates a router for the tile at `coord` in a `cols x rows` mesh.
    pub fn new(coord: Coord, cols: usize, rows: usize, config: RouterConfig) -> Self {
        Router {
            coord,
            table: RoutingTable::xy(coord, cols, rows),
            config,
            planes: (0..Plane::COUNT).map(|_| PlaneRouter::new()).collect(),
            forwarded_flits: 0,
            link_flits: vec![[0; Port::COUNT]; Plane::COUNT],
            credit_stalls: vec![0; Plane::COUNT],
        }
    }

    /// The tile coordinate of this router.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Flits this router has forwarded onto mesh links (all planes) — a
    /// per-router congestion indicator.
    pub fn forwarded_flits(&self) -> u64 {
        self.forwarded_flits
    }

    /// Flits moved through output `port` of `plane` (the Local port
    /// counts ejections into the tile).
    pub fn link_flits(&self, plane: Plane, port: Port) -> u64 {
        self.link_flits[plane.index()][port.index()]
    }

    /// Cycles a selected wormhole on `plane` stalled because the
    /// downstream queue had no free credit.
    pub fn credit_stalls(&self, plane: Plane) -> u64 {
        self.credit_stalls[plane.index()]
    }

    /// The routing table in use (XY by default).
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Replaces the routing table (for custom-route experiments).
    pub fn set_table(&mut self, table: RoutingTable) {
        self.table = table;
    }

    /// Captures the router's dynamic state for a simulation snapshot.
    pub fn state(&self) -> RouterState {
        RouterState {
            planes: self
                .planes
                .iter()
                .map(|pr| PlaneRouterState {
                    inputs: pr
                        .inputs
                        .iter()
                        .map(|q| q.iter().cloned().collect())
                        .collect(),
                    locks: pr.locks.to_vec(),
                    rr: pr.rr.to_vec(),
                })
                .collect(),
            forwarded_flits: self.forwarded_flits,
            link_flits: self.link_flits.clone(),
            credit_stalls: self.credit_stalls.clone(),
        }
    }

    /// Restores dynamic state captured by [`Router::state`]. The routing
    /// table and configuration are untouched.
    ///
    /// # Panics
    ///
    /// Panics when plane or port counts disagree with this router — the
    /// caller ([`Mesh`](crate::Mesh) restore) validates structural
    /// compatibility first, so a mismatch here is a simulator bug.
    pub fn restore_state(&mut self, state: &RouterState) {
        assert_eq!(state.planes.len(), self.planes.len(), "plane count");
        for (pr, ps) in self.planes.iter_mut().zip(&state.planes) {
            assert_eq!(ps.inputs.len(), Port::COUNT, "port count");
            assert_eq!(ps.locks.len(), Port::COUNT, "lock count");
            assert_eq!(ps.rr.len(), Port::COUNT, "rr count");
            for (q, src) in pr.inputs.iter_mut().zip(&ps.inputs) {
                q.clear();
                q.extend(src.iter().cloned());
            }
            pr.locks.copy_from_slice(&ps.locks);
            pr.rr.copy_from_slice(&ps.rr);
        }
        self.forwarded_flits = state.forwarded_flits;
        self.link_flits.clone_from(&state.link_flits);
        self.credit_stalls.clone_from(&state.credit_stalls);
    }

    /// Free slots in the input queue `(plane, port)`.
    pub fn free_slots(&self, plane: Plane, port: Port) -> usize {
        let q = &self.planes[plane.index()].inputs[port.index()];
        self.config.input_queue_depth.saturating_sub(q.len())
    }

    /// Current occupancy of the input queue `(plane, port)`.
    pub fn occupancy(&self, plane: Plane, port: Port) -> usize {
        self.planes[plane.index()].inputs[port.index()].len()
    }

    /// Pushes a flit into an input queue. Used by the mesh for link
    /// traversal and local injection.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — the mesh must check
    /// [`Router::free_slots`] first (this models lossless flow control).
    pub(crate) fn push_input(&mut self, plane: Plane, port: Port, flit: Flit) {
        let q = &mut self.planes[plane.index()].inputs[port.index()];
        assert!(
            q.len() < self.config.input_queue_depth,
            "flow-control violation at {} plane {plane} port {port}",
            self.coord
        );
        q.push_back(flit);
    }

    /// Arbitration phase: for every `(plane, output port)` pick at most one
    /// input whose head flit routes to that output, respecting wormhole
    /// locks. `downstream_free` reports, for `(plane, out_port)`, how many
    /// flits the downstream queue can still accept this cycle.
    ///
    /// Selected flits are popped from their input queues and returned; the
    /// mesh commits them to downstream queues at the end of the cycle.
    pub(crate) fn select(
        &mut self,
        mut downstream_free: impl FnMut(Plane, Port) -> usize,
    ) -> Vec<Transfer> {
        let mut transfers = Vec::new();
        for plane in Plane::ALL {
            let pr = &mut self.planes[plane.index()];
            for out in Port::ALL {
                let oi = out.index();
                // Candidate inputs: either the lock holder, or (if no lock)
                // any input whose head flit routes to `out`.
                let holder = pr.locks[oi];
                let mut chosen: Option<Port> = None;
                if let Some(h) = holder {
                    let q = &pr.inputs[h.index()];
                    if let Some(f) = q.front() {
                        if Self::route_port(&self.table, f.dest) == out {
                            chosen = Some(h);
                        }
                    }
                } else {
                    // Round-robin over input ports.
                    let start = pr.rr[oi];
                    for k in 0..Port::COUNT {
                        let cand = Port::ALL[(start + k) % Port::COUNT];
                        if cand == out && out != Port::Local {
                            continue; // no u-turns on mesh ports
                        }
                        let q = &pr.inputs[cand.index()];
                        if let Some(f) = q.front() {
                            if f.kind.is_head() && Self::route_port(&self.table, f.dest) == out {
                                chosen = Some(cand);
                                break;
                            }
                        }
                    }
                }
                let Some(inp) = chosen else { continue };
                if downstream_free(plane, out) == 0 {
                    self.credit_stalls[plane.index()] += 1;
                    continue; // back-pressure: stall this wormhole
                }
                let flit = pr.inputs[inp.index()]
                    .pop_front()
                    .expect("candidate queue non-empty");
                // Maintain the wormhole lock.
                if flit.kind.is_tail() {
                    pr.locks[oi] = None;
                    pr.rr[oi] = (inp.index() + 1) % Port::COUNT;
                } else {
                    pr.locks[oi] = Some(inp);
                }
                if out != Port::Local {
                    self.forwarded_flits += 1;
                }
                self.link_flits[plane.index()][oi] += 1;
                transfers.push(Transfer {
                    plane,
                    in_port: inp,
                    out_port: out,
                    flit,
                });
            }
        }
        transfers
    }

    fn route_port(table: &RoutingTable, dest: Coord) -> Port {
        match table.route(dest) {
            Route::Forward(p) => p,
            Route::Local => Port::Local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;
    use crate::MsgKind;

    fn flit(dest: Coord, kind: FlitKind) -> Flit {
        Flit {
            kind,
            src: Coord::new(0, 0),
            dest,
            plane: Plane::DmaReq,
            msg: MsgKind::DmaData,
            payload: 0,
            inject_cycle: 0,
            frame: None,
        }
    }

    #[test]
    fn port_opposites() {
        assert_eq!(Port::North.opposite(), Port::South);
        assert_eq!(Port::East.opposite(), Port::West);
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_opposite_panics() {
        let _ = Port::Local.opposite();
    }

    #[test]
    fn port_step() {
        let c = Coord::new(1, 1);
        assert_eq!(Port::North.step(c), Some(Coord::new(1, 0)));
        assert_eq!(Port::South.step(c), Some(Coord::new(1, 2)));
        assert_eq!(Port::East.step(c), Some(Coord::new(2, 1)));
        assert_eq!(Port::West.step(c), Some(Coord::new(0, 1)));
        assert_eq!(Port::North.step(Coord::new(0, 0)), None);
        assert_eq!(Port::West.step(Coord::new(0, 0)), None);
    }

    #[test]
    fn select_routes_flit_east() {
        let mut r = Router::new(Coord::new(0, 0), 3, 3, RouterConfig::default());
        r.push_input(
            Plane::DmaReq,
            Port::Local,
            flit(Coord::new(2, 0), FlitKind::HeadTail),
        );
        let t = r.select(|_, _| 4);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].out_port, Port::East);
    }

    #[test]
    fn select_respects_backpressure() {
        let mut r = Router::new(Coord::new(0, 0), 3, 3, RouterConfig::default());
        r.push_input(
            Plane::DmaReq,
            Port::Local,
            flit(Coord::new(2, 0), FlitKind::HeadTail),
        );
        let t = r.select(|_, _| 0);
        assert!(t.is_empty());
        assert_eq!(r.occupancy(Plane::DmaReq, Port::Local), 1);
    }

    #[test]
    fn wormhole_lock_prevents_interleaving() {
        let mut r = Router::new(Coord::new(0, 0), 3, 3, RouterConfig::default());
        // Packet A (2 flits) from Local, packet B (1 flit) from North; both go East.
        r.push_input(
            Plane::DmaReq,
            Port::Local,
            flit(Coord::new(2, 0), FlitKind::Head),
        );
        r.push_input(
            Plane::DmaReq,
            Port::Local,
            flit(Coord::new(2, 0), FlitKind::Tail),
        );
        r.push_input(
            Plane::DmaReq,
            Port::North,
            flit(Coord::new(1, 0), FlitKind::HeadTail),
        );
        // Cycle 1: some head wins the East output.
        let t1 = r.select(|_, _| 4);
        let winner_src_kind = t1
            .iter()
            .find(|t| t.out_port == Port::East)
            .expect("east transfer")
            .flit
            .kind;
        if winner_src_kind == FlitKind::Head {
            // Cycle 2: the locked wormhole must deliver A's tail, not B.
            let t2 = r.select(|_, _| 4);
            let east: Vec<_> = t2.iter().filter(|t| t.out_port == Port::East).collect();
            assert_eq!(east.len(), 1);
            assert_eq!(east[0].flit.kind, FlitKind::Tail);
        }
    }

    #[test]
    fn link_counters_track_forwards_and_ejections() {
        let mut r = Router::new(Coord::new(0, 0), 3, 3, RouterConfig::default());
        r.push_input(
            Plane::DmaReq,
            Port::Local,
            flit(Coord::new(2, 0), FlitKind::HeadTail),
        );
        r.push_input(
            Plane::DmaReq,
            Port::West,
            flit(Coord::new(0, 0), FlitKind::HeadTail),
        );
        let t = r.select(|_, _| 4);
        assert_eq!(t.len(), 2);
        assert_eq!(r.link_flits(Plane::DmaReq, Port::East), 1);
        assert_eq!(r.link_flits(Plane::DmaReq, Port::Local), 1);
        assert_eq!(r.link_flits(Plane::DmaReq, Port::North), 0);
        assert_eq!(r.link_flits(Plane::CohReq, Port::East), 0);
        // Ejections count on the Local column but not as forwards.
        assert_eq!(r.forwarded_flits(), 1);
        assert_eq!(r.credit_stalls(Plane::DmaReq), 0);
    }

    #[test]
    fn credit_stalls_count_backpressured_cycles() {
        let mut r = Router::new(Coord::new(0, 0), 3, 3, RouterConfig::default());
        r.push_input(
            Plane::DmaReq,
            Port::Local,
            flit(Coord::new(2, 0), FlitKind::HeadTail),
        );
        for _ in 0..3 {
            assert!(r.select(|_, _| 0).is_empty());
        }
        assert_eq!(r.credit_stalls(Plane::DmaReq), 3);
        assert_eq!(r.link_flits(Plane::DmaReq, Port::East), 0);
        let t = r.select(|_, _| 4);
        assert_eq!(t.len(), 1);
        assert_eq!(r.credit_stalls(Plane::DmaReq), 3);
        assert_eq!(r.link_flits(Plane::DmaReq, Port::East), 1);
    }

    #[test]
    fn full_queue_panics_on_push() {
        let mut r = Router::new(
            Coord::new(0, 0),
            2,
            2,
            RouterConfig {
                input_queue_depth: 1,
            },
        );
        r.push_input(
            Plane::DmaReq,
            Port::Local,
            flit(Coord::new(1, 0), FlitKind::HeadTail),
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.push_input(
                Plane::DmaReq,
                Port::Local,
                flit(Coord::new(1, 0), FlitKind::HeadTail),
            );
        }));
        assert!(result.is_err());
    }
}
