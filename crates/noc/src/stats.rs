//! Traffic statistics gathered by the mesh.

use crate::Plane;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Traffic counters for one NoC plane.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlaneStats {
    /// Packets injected on this plane.
    pub packets_injected: u64,
    /// Packets delivered (ejected) on this plane.
    pub packets_delivered: u64,
    /// Flits that traversed a link (hop count across all flits).
    pub flit_hops: u64,
    /// Sum of packet latencies (inject cycle to ejection cycle), for
    /// computing the average.
    pub total_latency: u64,
    /// Worst-case packet latency observed.
    pub max_latency: u64,
    /// Best-case packet latency observed (0 until a packet is delivered).
    #[serde(default)]
    pub min_latency: u64,
}

impl PlaneStats {
    /// Average packet latency in cycles, or 0.0 when nothing was delivered.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.packets_delivered as f64
        }
    }

    /// Records one delivered packet's end-to-end latency, maintaining the
    /// sum and the min/max envelope.
    pub(crate) fn record_delivery(&mut self, latency: u64) {
        self.packets_delivered += 1;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        self.min_latency = if self.packets_delivered == 1 {
            latency
        } else {
            self.min_latency.min(latency)
        };
    }

    /// Average flit-hops per cycle on this plane — a proxy for link
    /// utilization (0.0 when `cycles` is zero).
    pub fn utilization(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.flit_hops as f64 / cycles as f64
        }
    }
}

/// Aggregate statistics for the whole NoC.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NocStats {
    /// Per-plane counters, indexed by [`Plane::index`].
    pub planes: Vec<PlaneStats>,
    /// Total simulated cycles.
    pub cycles: u64,
}

impl NocStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        NocStats {
            planes: vec![PlaneStats::default(); Plane::COUNT],
            cycles: 0,
        }
    }

    /// Counters for one plane.
    pub fn plane(&self, plane: Plane) -> &PlaneStats {
        &self.planes[plane.index()]
    }

    pub(crate) fn plane_mut(&mut self, plane: Plane) -> &mut PlaneStats {
        &mut self.planes[plane.index()]
    }

    /// Total packets delivered across all planes.
    pub fn total_delivered(&self) -> u64 {
        self.planes.iter().map(|p| p.packets_delivered).sum()
    }

    /// Total flit-hops across all planes (a proxy for NoC dynamic energy).
    pub fn total_flit_hops(&self) -> u64 {
        self.planes.iter().map(|p| p.flit_hops).sum()
    }
}

impl fmt::Display for NocStats {
    /// Renders a per-plane summary table (injected/delivered packets,
    /// flit-hops, latency envelope, link utilization) plus totals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "NoC traffic over {} cycles ({} packets, {} flit-hops)",
            self.cycles,
            self.total_delivered(),
            self.total_flit_hops()
        )?;
        writeln!(
            f,
            "  {:<8} {:>9} {:>10} {:>10} {:>8} {:>6} {:>6} {:>8}",
            "plane", "injected", "delivered", "flit-hops", "avg-lat", "min", "max", "util"
        )?;
        for plane in Plane::ALL {
            let p = self.plane(plane);
            if p.packets_injected == 0 && p.packets_delivered == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<8} {:>9} {:>10} {:>10} {:>8.1} {:>6} {:>6} {:>8.4}",
                plane.to_string(),
                p.packets_injected,
                p.packets_delivered,
                p.flit_hops,
                p.avg_latency(),
                p.min_latency,
                p.max_latency,
                p.utilization(self.cycles),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_handles_zero() {
        let s = PlaneStats::default();
        assert_eq!(s.avg_latency(), 0.0);
    }

    #[test]
    fn zero_division_guards_return_finite_zero() {
        // Even with residual counter state, a zero denominator must yield
        // exactly 0.0 (not NaN/inf) for both derived rates.
        let s = PlaneStats {
            total_latency: 123,
            flit_hops: 456,
            packets_delivered: 0,
            ..Default::default()
        };
        assert_eq!(s.avg_latency(), 0.0);
        assert!(s.avg_latency().is_finite());
        assert_eq!(s.utilization(0), 0.0);
        assert!(s.utilization(0).is_finite());
    }

    #[test]
    fn avg_latency_divides() {
        let s = PlaneStats {
            packets_delivered: 4,
            total_latency: 20,
            ..Default::default()
        };
        assert_eq!(s.avg_latency(), 5.0);
    }

    #[test]
    fn delivery_tracks_latency_envelope() {
        let mut s = PlaneStats::default();
        s.record_delivery(9);
        s.record_delivery(3);
        s.record_delivery(5);
        assert_eq!(s.packets_delivered, 3);
        assert_eq!(s.min_latency, 3);
        assert_eq!(s.max_latency, 9);
        assert_eq!(s.total_latency, 17);
    }

    #[test]
    fn utilization_is_hops_per_cycle() {
        let s = PlaneStats {
            flit_hops: 50,
            ..Default::default()
        };
        assert_eq!(s.utilization(100), 0.5);
        assert_eq!(s.utilization(0), 0.0);
    }

    #[test]
    fn display_lists_active_planes_only() {
        let mut s = NocStats::new();
        s.cycles = 10;
        s.plane_mut(Plane::DmaRsp).packets_injected = 2;
        s.plane_mut(Plane::DmaRsp).record_delivery(4);
        let text = s.to_string();
        assert!(text.contains("dma-rsp"), "{text}");
        assert!(!text.contains("coh-req"), "{text}");
    }

    #[test]
    fn totals_sum_over_planes() {
        let mut s = NocStats::new();
        s.plane_mut(Plane::DmaReq).packets_delivered = 3;
        s.plane_mut(Plane::DmaRsp).packets_delivered = 2;
        s.plane_mut(Plane::DmaRsp).flit_hops = 10;
        assert_eq!(s.total_delivered(), 5);
        assert_eq!(s.total_flit_hops(), 10);
    }
}
