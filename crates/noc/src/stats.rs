//! Traffic statistics gathered by the mesh.

use crate::Plane;
use serde::{Deserialize, Serialize};

/// Traffic counters for one NoC plane.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlaneStats {
    /// Packets injected on this plane.
    pub packets_injected: u64,
    /// Packets delivered (ejected) on this plane.
    pub packets_delivered: u64,
    /// Flits that traversed a link (hop count across all flits).
    pub flit_hops: u64,
    /// Sum of packet latencies (inject cycle to ejection cycle), for
    /// computing the average.
    pub total_latency: u64,
    /// Worst-case packet latency observed.
    pub max_latency: u64,
}

impl PlaneStats {
    /// Average packet latency in cycles, or 0.0 when nothing was delivered.
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.packets_delivered as f64
        }
    }
}

/// Aggregate statistics for the whole NoC.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NocStats {
    /// Per-plane counters, indexed by [`Plane::index`].
    pub planes: Vec<PlaneStats>,
    /// Total simulated cycles.
    pub cycles: u64,
}

impl NocStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        NocStats {
            planes: vec![PlaneStats::default(); Plane::COUNT],
            cycles: 0,
        }
    }

    /// Counters for one plane.
    pub fn plane(&self, plane: Plane) -> &PlaneStats {
        &self.planes[plane.index()]
    }

    pub(crate) fn plane_mut(&mut self, plane: Plane) -> &mut PlaneStats {
        &mut self.planes[plane.index()]
    }

    /// Total packets delivered across all planes.
    pub fn total_delivered(&self) -> u64 {
        self.planes.iter().map(|p| p.packets_delivered).sum()
    }

    /// Total flit-hops across all planes (a proxy for NoC dynamic energy).
    pub fn total_flit_hops(&self) -> u64 {
        self.planes.iter().map(|p| p.flit_hops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_handles_zero() {
        let s = PlaneStats::default();
        assert_eq!(s.avg_latency(), 0.0);
    }

    #[test]
    fn avg_latency_divides() {
        let s = PlaneStats {
            packets_delivered: 4,
            total_latency: 20,
            ..Default::default()
        };
        assert_eq!(s.avg_latency(), 5.0);
    }

    #[test]
    fn totals_sum_over_planes() {
        let mut s = NocStats::new();
        s.plane_mut(Plane::DmaReq).packets_delivered = 3;
        s.plane_mut(Plane::DmaRsp).packets_delivered = 2;
        s.plane_mut(Plane::DmaRsp).flit_hops = 10;
        assert_eq!(s.total_delivered(), 5);
        assert_eq!(s.total_flit_hops(), 10);
    }
}
