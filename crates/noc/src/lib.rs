//! Multi-plane 2D-mesh network-on-chip (NoC) simulator.
//!
//! This crate reproduces the interconnect substrate of the ESP platform as
//! used by the ESP4ML design flow (Giri et al., DATE 2020). ESP connects all
//! tiles of an SoC through a packet-switched 2D-mesh NoC with **six
//! decoupled physical planes**. Two full planes are allotted to accelerator
//! DMA traffic (one for requests, one for responses) so that long DMA bursts
//! never deadlock against each other — and, crucially for ESP4ML, so that
//! otherwise-unused queues can be *reused* to implement point-to-point (p2p)
//! transfers between accelerators without adding any links, routers or
//! queues.
//!
//! The simulator is cycle-level: routers implement dimension-order (XY)
//! wormhole routing with on/off (credit-equivalent) flow control, and every
//! flit movement takes one cycle per hop. The model is small enough to
//! simulate millions of cycles per second yet detailed enough to expose the
//! contention and traffic-shaping effects the paper measures (Fig. 7/8).
//!
//! # Example
//!
//! ```
//! use esp4ml_noc::{Mesh, MeshConfig, Packet, Plane, Coord, MsgKind};
//!
//! # fn main() -> Result<(), esp4ml_noc::NocError> {
//! let mut mesh = Mesh::new(MeshConfig::new(3, 3))?;
//! let src = Coord::new(0, 0);
//! let dst = Coord::new(2, 2);
//! let pkt = Packet::new(src, dst, Plane::DmaRsp, MsgKind::DmaData, vec![1, 2, 3]);
//! mesh.inject(pkt)?;
//! while mesh.peek(dst, Plane::DmaRsp).is_none() {
//!     mesh.tick();
//! }
//! let got = mesh.eject(dst, Plane::DmaRsp).expect("delivered");
//! assert_eq!(got.payload(), &[1, 2, 3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
mod error;
mod flit;
mod heatmap;
mod mesh;
mod packet;
mod plane;
mod router;
mod routing;
mod sanitizer;
mod schedule;
mod stats;

pub use coord::Coord;
pub use error::NocError;
pub use flit::{Flit, FlitKind};
pub use heatmap::{LinkLoad, NocHeatmap, PlaneHeatmap};
pub use mesh::{
    CorruptFaultState, DelayFaultState, DelayedPacketState, EndpointState, Mesh, MeshConfig,
    MeshFaultsState, MeshState, LINK_CAPACITY_FLITS_PER_CYCLE,
};
pub use packet::{MsgKind, Packet};
pub use plane::Plane;
pub use router::{PlaneRouterState, Port, Router, RouterConfig, RouterState};
pub use routing::{Route, RoutingTable};
pub use sanitizer::{expected_planes, plane_carries, MeshSanitizerState};
pub use schedule::{Progress, Schedulable};
pub use stats::{NocStats, PlaneStats};
