//! Flits: the flow-control units moved by routers each cycle.

use crate::{Coord, MsgKind, Packet, Plane};
use serde::{Deserialize, Serialize};

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit; carries the routing header.
    Head,
    /// Interior payload flit.
    Body,
    /// Last flit; releases the wormhole path.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit opens a wormhole (head of a packet).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit closes a wormhole (tail of a packet).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// A single flit in flight.
///
/// Every flit carries its full header in this model (destination, source,
/// message kind). Real hardware stores the header only in the head flit and
/// lets body flits follow the wormhole; carrying it everywhere simplifies
/// reassembly without changing timing, because body flits still follow the
/// path locked by their head.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Position within the packet.
    pub kind: FlitKind,
    /// Source tile.
    pub src: Coord,
    /// Destination tile.
    pub dest: Coord,
    /// Plane the flit travels on.
    pub plane: Plane,
    /// Protocol class of the carrying packet.
    pub msg: MsgKind,
    /// Payload word (0 for the head flit of a multi-flit packet).
    pub payload: u64,
    /// Cycle the carrying packet was injected (for latency accounting).
    pub inject_cycle: u64,
    /// Global frame id of the carrying packet, if tagged.
    pub frame: Option<u64>,
}

impl Flit {
    /// Serializes a packet into its wire flits.
    pub fn from_packet(pkt: &Packet) -> Vec<Flit> {
        let n = pkt.payload().len();
        let mut flits = Vec::with_capacity(n + 1);
        let mk = |kind: FlitKind, payload: u64| Flit {
            kind,
            src: pkt.src(),
            dest: pkt.dest(),
            plane: pkt.plane(),
            msg: pkt.kind(),
            payload,
            inject_cycle: pkt.inject_cycle(),
            frame: pkt.frame(),
        };
        if n == 0 {
            flits.push(mk(FlitKind::HeadTail, 0));
            return flits;
        }
        flits.push(mk(FlitKind::Head, 0));
        for (i, &w) in pkt.payload().iter().enumerate() {
            let kind = if i + 1 == n {
                FlitKind::Tail
            } else {
                FlitKind::Body
            };
            flits.push(mk(kind, w));
        }
        flits
    }
}

/// Wormhole-invariant violations observable at an ejection port.
///
/// Routers hold a per-output lock from head to tail, so flits of two
/// packets can never interleave on one (plane, path). If one of these
/// fires, arbitration (or a fault) broke the wormhole discipline. The
/// mesh turns them into `debug_assert!`s on plain runs and into `E0403`
/// diagnostics when the sanitizer is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReasmViolation {
    /// A head flit arrived while another packet was still reassembling.
    HeadInterleaved,
    /// A body or tail flit arrived with no packet under reassembly.
    StrayFlit,
}

/// Incremental packet reassembler used at ejection ports.
///
/// Flits of a given packet arrive in order on a given plane (wormhole
/// routing guarantees no interleaving between packets on the same plane and
/// path), so reassembly is a simple accumulation until the tail flit.
#[derive(Debug, Default)]
pub(crate) struct Reassembler {
    current: Option<(Flit, Vec<u64>)>,
}

impl Reassembler {
    /// Captures the partial reassembly in progress (head flit plus the
    /// payload words accumulated so far) for a simulation snapshot.
    pub(crate) fn state(&self) -> Option<(Flit, Vec<u64>)> {
        self.current.clone()
    }

    /// Restores a partial reassembly captured by [`Reassembler::state`].
    pub(crate) fn restore_state(&mut self, state: Option<(Flit, Vec<u64>)>) {
        self.current = state;
    }

    /// Feeds one flit; returns a completed packet when the tail arrives,
    /// plus any wormhole violation the flit exposed. On violation the
    /// reassembler keeps the pre-existing recovery behaviour (an
    /// interleaving head restarts reassembly; a stray flit is dropped).
    pub(crate) fn push(&mut self, flit: Flit) -> (Option<Packet>, Option<ReasmViolation>) {
        let mut violation = None;
        if flit.kind.is_head() {
            if self.current.is_some() {
                violation = Some(ReasmViolation::HeadInterleaved);
            }
            self.current = Some((flit.clone(), Vec::new()));
        } else if self.current.is_none() {
            violation = Some(ReasmViolation::StrayFlit);
        }
        let finish = flit.kind.is_tail();
        if let Some((_, words)) = self.current.as_mut() {
            if !flit.kind.is_head() {
                words.push(flit.payload);
            }
            if finish {
                let (head, words) = self.current.take().expect("current packet");
                let mut pkt = Packet::new(head.src, head.dest, head.plane, head.msg, words)
                    .with_frame(head.frame);
                pkt.inject_cycle = head.inject_cycle;
                return (Some(pkt), violation);
            }
        }
        (None, violation)
    }

    /// Flits absorbed into the partial packet under reassembly (0 when
    /// between packets) — the reassembler's share of in-flight flits for
    /// the conservation audit.
    pub(crate) fn pending_flits(&self) -> usize {
        self.current
            .as_ref()
            .map(|(_, words)| 1 + words.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(words: Vec<u64>) -> Packet {
        Packet::new(
            Coord::new(0, 0),
            Coord::new(1, 1),
            Plane::DmaRsp,
            MsgKind::DmaData,
            words,
        )
    }

    #[test]
    fn serialize_multi_flit() {
        let flits = Flit::from_packet(&pkt(vec![7, 8, 9]));
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert_eq!(flits[3].payload, 9);
    }

    #[test]
    fn serialize_empty_packet() {
        let flits = Flit::from_packet(&pkt(vec![]));
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head() && flits[0].kind.is_tail());
    }

    #[test]
    fn reassemble_roundtrip() {
        let original = pkt(vec![1, 2, 3, 4]);
        let mut r = Reassembler::default();
        let mut out = None;
        for f in Flit::from_packet(&original) {
            let (p, v) = r.push(f);
            assert_eq!(v, None);
            if let Some(p) = p {
                out = Some(p);
            }
        }
        assert_eq!(out.expect("complete"), original);
        assert_eq!(r.pending_flits(), 0);
    }

    #[test]
    fn frame_tag_survives_flit_round_trip() {
        let original = pkt(vec![1, 2]).with_frame(Some(9));
        let mut r = Reassembler::default();
        let mut out = None;
        for f in Flit::from_packet(&original) {
            assert_eq!(f.frame, Some(9));
            if let (Some(p), _) = r.push(f) {
                out = Some(p);
            }
        }
        assert_eq!(out.expect("complete").frame(), Some(9));
    }

    #[test]
    fn reassemble_single_flit() {
        let original = pkt(vec![]);
        let mut r = Reassembler::default();
        let flits = Flit::from_packet(&original);
        let (out, v) = r.push(flits[0].clone());
        assert_eq!(v, None);
        assert_eq!(out.expect("complete"), original);
    }

    #[test]
    fn reassemble_back_to_back_packets() {
        let a = pkt(vec![1]);
        let b = pkt(vec![2, 3]);
        let mut r = Reassembler::default();
        let mut done = Vec::new();
        for f in Flit::from_packet(&a)
            .into_iter()
            .chain(Flit::from_packet(&b))
        {
            let (p, v) = r.push(f);
            assert_eq!(v, None);
            if let Some(p) = p {
                done.push(p);
            }
        }
        assert_eq!(done, vec![a, b]);
    }

    #[test]
    fn interleaved_head_is_flagged_and_restarts() {
        let a = pkt(vec![1, 2]);
        let b = pkt(vec![3]);
        let mut r = Reassembler::default();
        let a_flits = Flit::from_packet(&a);
        assert_eq!(r.push(a_flits[0].clone()), (None, None));
        assert_eq!(r.pending_flits(), 1);
        // A second head before a's tail: interleaving violation, and the
        // reassembler restarts on the new packet.
        let b_flits = Flit::from_packet(&b);
        let (p, v) = r.push(b_flits[0].clone());
        assert_eq!(p, None);
        assert_eq!(v, Some(ReasmViolation::HeadInterleaved));
        let (p, v) = r.push(b_flits[1].clone());
        assert_eq!(v, None);
        assert_eq!(p.expect("b completes"), b);
    }

    #[test]
    fn stray_flit_is_flagged_and_dropped() {
        let a = pkt(vec![1, 2]);
        let mut r = Reassembler::default();
        let tail = Flit::from_packet(&a).pop().expect("tail");
        assert_eq!(r.push(tail), (None, Some(ReasmViolation::StrayFlit)));
        assert_eq!(r.pending_flits(), 0);
    }
}
