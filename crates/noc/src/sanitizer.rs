//! The NoC-level invariant sanitizer.
//!
//! When installed on a [`crate::Mesh`], the sanitizer shadows the flow
//! control state of the network and audits conservation invariants after
//! every tick and at every fast-forward boundary — in release builds
//! too, unlike the `debug_assert!`s it subsumes:
//!
//! * **Credit conservation** (`E0401`) — a shadow occupancy counter per
//!   `(router, plane, input port)`, maintained from the same push/pop
//!   events the routers see, must always equal the real queue length.
//! * **Flit conservation** (`E0402`) — per plane, flits injected must
//!   equal flits delivered plus flits in flight (injection queues,
//!   router queues, partial reassemblies).
//! * **Wormhole non-interleaving** (`E0403`) — packets must never
//!   interleave at an ejection port.
//! * **Plane assignment** (`E0303`) — every message kind has a canonical
//!   plane set; riding another plane breaks the protocol-deadlock
//!   avoidance argument of the six-plane NoC.
//!
//! Verdicts are *deduplicated and order-normalized*: a violation that
//! persists for a thousand cycles is one diagnostic, so the naive engine
//! (which audits every cycle) and the event-driven engine (which audits
//! at tick and fast-forward boundaries) produce byte-identical reports.
//!
//! The `fault_*` hooks on [`crate::Mesh`] deliberately corrupt the
//! shadow state so tests can prove the audits actually fire.

use crate::router::Port;
use crate::{MsgKind, Plane};
use esp4ml_check::{Diagnostic, Report, SanitizerConfig};
use std::collections::BTreeSet;

/// The canonical planes for a message kind, per the ESP plane layout:
/// DMA descriptors and p2p load requests ride the request plane, data
/// and store acknowledgements ride the response plane, register access
/// and interrupts ride the I/O plane, and coherence traffic may use any
/// of the three coherence planes.
pub fn expected_planes(kind: MsgKind) -> &'static [Plane] {
    match kind {
        MsgKind::DmaLoadReq | MsgKind::DmaStoreReq | MsgKind::P2pLoadReq => &[Plane::DmaReq],
        MsgKind::DmaData | MsgKind::DmaStoreAck => &[Plane::DmaRsp],
        MsgKind::RegWrite | MsgKind::RegReadReq | MsgKind::RegReadRsp | MsgKind::Irq => {
            &[Plane::IoIrq]
        }
        MsgKind::Coherence => &[Plane::CohReq, Plane::CohFwd, Plane::CohRsp],
    }
}

/// Whether `plane` legitimately carries messages of `kind`.
pub fn plane_carries(plane: Plane, kind: MsgKind) -> bool {
    expected_planes(kind).contains(&plane)
}

/// Serializable ledger of the mesh sanitizer: configuration, recorded
/// violations and the shadow occupancy/conservation counters. Part of
/// [`MeshState`](crate::MeshState); restoring it reconstructs the
/// sanitizer exactly so post-restore audits see the same history.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeshSanitizerState {
    /// Which invariants the sanitizer enforces.
    pub config: SanitizerConfig,
    /// Violations recorded so far (sorted, deduplicated).
    pub violations: Vec<Diagnostic>,
    /// Flits injected per plane.
    pub injected: [u64; Plane::COUNT],
    /// Flits of completed packets delivered per plane.
    pub delivered: [u64; Plane::COUNT],
    /// Shadow input-queue occupancy, `[router][plane][port]`.
    pub shadow: Vec<[[u64; Port::COUNT]; Plane::COUNT]>,
}

/// Shadow state and accumulated verdicts of the mesh sanitizer.
#[derive(Debug)]
pub(crate) struct MeshSanitizer {
    pub(crate) config: SanitizerConfig,
    violations: BTreeSet<Diagnostic>,
    /// Flits injected per plane (source side of the conservation law).
    pub(crate) injected: [u64; Plane::COUNT],
    /// Flits of completed packets delivered per plane.
    pub(crate) delivered: [u64; Plane::COUNT],
    /// Shadow input-queue occupancy: `[router][plane][port]`.
    shadow: Vec<[[u64; Port::COUNT]; Plane::COUNT]>,
}

impl MeshSanitizer {
    pub(crate) fn new(config: SanitizerConfig, routers: usize) -> Self {
        MeshSanitizer {
            config,
            violations: BTreeSet::new(),
            injected: [0; Plane::COUNT],
            delivered: [0; Plane::COUNT],
            shadow: vec![[[0; Port::COUNT]; Plane::COUNT]; routers],
        }
    }

    pub(crate) fn record(&mut self, diag: Diagnostic) {
        self.violations.insert(diag);
    }

    /// Captures the complete sanitizer ledger for a snapshot.
    pub(crate) fn state(&self) -> MeshSanitizerState {
        MeshSanitizerState {
            config: self.config,
            violations: self.violations.iter().cloned().collect(),
            injected: self.injected,
            delivered: self.delivered,
            shadow: self.shadow.clone(),
        }
    }

    /// Reconstructs a sanitizer from a captured ledger.
    pub(crate) fn from_state(state: &MeshSanitizerState) -> Self {
        MeshSanitizer {
            config: state.config,
            violations: state.violations.iter().cloned().collect(),
            injected: state.injected,
            delivered: state.delivered,
            shadow: state.shadow.clone(),
        }
    }

    /// The verdict so far, sorted and deduplicated.
    pub(crate) fn report(&self) -> Report {
        let mut report = Report::new();
        for d in &self.violations {
            report.push(d.clone());
        }
        report
    }

    pub(crate) fn observe_push(&mut self, router: usize, plane: Plane, port: Port) {
        self.shadow[router][plane.index()][port.index()] += 1;
    }

    pub(crate) fn observe_pop(&mut self, router: usize, plane: Plane, port: Port) {
        let slot = &mut self.shadow[router][plane.index()][port.index()];
        *slot = slot.saturating_sub(1);
    }

    pub(crate) fn shadow_occupancy(&self, router: usize, plane: Plane, port: Port) -> u64 {
        self.shadow[router][plane.index()][port.index()]
    }

    /// Fault hook: pretend a credit was lost on one link (the shadow
    /// believes a slot is occupied that the router has freed).
    pub(crate) fn fault_leak_credit(&mut self, router: usize, plane: Plane, port: Port) {
        self.shadow[router][plane.index()][port.index()] += 1;
    }

    /// Fault hook: count a flit that was never really injected.
    pub(crate) fn fault_phantom_flit(&mut self, plane: Plane) {
        self.injected[plane.index()] += 1;
    }
}
