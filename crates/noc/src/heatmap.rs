//! Per-router, per-link NoC occupancy heatmaps.
//!
//! Snapshotted from the mesh's routers ([`crate::Mesh::link_heatmap`]):
//! every router contributes, per plane, the flits it moved through each
//! output port plus the cycles its selected wormholes stalled on
//! downstream credits. The snapshot renders as an ASCII mesh grid (one
//! per active plane) or as a flat CSV for external tooling.

use crate::router::Port;
use crate::Plane;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Flits moved through each output port of one router on one plane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkLoad {
    /// Flits sent towards row `y - 1`.
    pub north: u64,
    /// Flits sent towards row `y + 1`.
    pub south: u64,
    /// Flits sent towards column `x + 1`.
    pub east: u64,
    /// Flits sent towards column `x - 1`.
    pub west: u64,
    /// Flits ejected into the local tile.
    pub local: u64,
}

impl LinkLoad {
    /// Flits moved through mesh links (excludes local ejections).
    pub fn link_total(&self) -> u64 {
        self.north + self.south + self.east + self.west
    }

    /// All flits moved by this router on this plane.
    pub fn total(&self) -> u64 {
        self.link_total() + self.local
    }

    /// Reads one port's counter.
    pub fn port(&self, port: Port) -> u64 {
        match port {
            Port::North => self.north,
            Port::South => self.south,
            Port::East => self.east,
            Port::West => self.west,
            Port::Local => self.local,
        }
    }

    /// Writes one port's counter.
    pub fn set_port(&mut self, port: Port, flits: u64) {
        match port {
            Port::North => self.north = flits,
            Port::South => self.south = flits,
            Port::East => self.east = flits,
            Port::West => self.west = flits,
            Port::Local => self.local = flits,
        }
    }
}

/// One plane's heatmap across the mesh.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaneHeatmap {
    /// Plane name (e.g. `dma-req`).
    pub plane: String,
    /// Per-router link loads, indexed `[row][col]`.
    pub links: Vec<Vec<LinkLoad>>,
    /// Per-router credit-stall cycles, indexed `[row][col]`.
    pub credit_stalls: Vec<Vec<u64>>,
}

impl PlaneHeatmap {
    /// Total flits moved on this plane (links + ejections).
    pub fn total_flits(&self) -> u64 {
        self.links.iter().flatten().map(LinkLoad::total).sum()
    }

    /// Total credit-stall cycles on this plane.
    pub fn total_stalls(&self) -> u64 {
        self.credit_stalls.iter().flatten().sum()
    }

    /// True when the plane carried no traffic and saw no stalls.
    pub fn is_quiet(&self) -> bool {
        self.total_flits() == 0 && self.total_stalls() == 0
    }
}

/// A snapshot of link occupancy and credit stalls for every router,
/// keyed by plane.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocHeatmap {
    /// Mesh columns.
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// Cycles the mesh has simulated (for occupancy normalization).
    pub cycles: u64,
    /// One heatmap per plane, in [`Plane::ALL`] order.
    pub planes: Vec<PlaneHeatmap>,
}

impl NocHeatmap {
    /// The heatmap of one plane.
    pub fn plane(&self, plane: Plane) -> &PlaneHeatmap {
        &self.planes[plane.index()]
    }

    /// Total flits moved across all planes.
    pub fn total_flits(&self) -> u64 {
        self.planes.iter().map(PlaneHeatmap::total_flits).sum()
    }

    /// The busiest router: `(plane name, x, y, flits)` of the cell with
    /// the highest total, or `None` when the mesh is silent.
    pub fn busiest_router(&self) -> Option<(String, u8, u8, u64)> {
        let mut best: Option<(String, u8, u8, u64)> = None;
        for ph in &self.planes {
            for (y, row) in ph.links.iter().enumerate() {
                for (x, load) in row.iter().enumerate() {
                    let total = load.total();
                    if total > 0 && best.as_ref().is_none_or(|b| total > b.3) {
                        best = Some((ph.plane.clone(), x as u8, y as u8, total));
                    }
                }
            }
        }
        best
    }

    /// Renders per-plane ASCII grids (quiet planes are skipped). Each
    /// cell shows the router's total flits and, when non-zero, its
    /// credit-stall cycles as `+N`.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "NoC link heatmap ({}x{} mesh, {} cycles, flits per router; +N = credit-stall cycles)",
            self.cols, self.rows, self.cycles
        );
        let mut any = false;
        for ph in &self.planes {
            if ph.is_quiet() {
                continue;
            }
            any = true;
            let _ = writeln!(
                out,
                "plane {}: {} flits, {} stall cycles",
                ph.plane,
                ph.total_flits(),
                ph.total_stalls()
            );
            for (y, row) in ph.links.iter().enumerate() {
                let cells: Vec<String> = row
                    .iter()
                    .enumerate()
                    .map(|(x, load)| {
                        let stalls = ph.credit_stalls[y][x];
                        if stalls > 0 {
                            format!("{:>6}+{:<4}", load.total(), stalls)
                        } else {
                            format!("{:>6}     ", load.total())
                        }
                    })
                    .collect();
                let _ = writeln!(out, "  {}", cells.join(" "));
            }
        }
        if !any {
            out.push_str("  (no traffic)\n");
        }
        out
    }

    /// Flattens the heatmap to CSV:
    /// `plane,y,x,north,south,east,west,local,credit_stalls`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("plane,y,x,north,south,east,west,local,credit_stalls\n");
        for ph in &self.planes {
            for (y, row) in ph.links.iter().enumerate() {
                for (x, load) in row.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "{},{},{},{},{},{},{},{},{}",
                        ph.plane,
                        y,
                        x,
                        load.north,
                        load.south,
                        load.east,
                        load.west,
                        load.local,
                        ph.credit_stalls[y][x]
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NocHeatmap {
        let mut planes: Vec<PlaneHeatmap> = Plane::ALL
            .iter()
            .map(|p| PlaneHeatmap {
                plane: p.to_string(),
                links: vec![vec![LinkLoad::default(); 2]; 2],
                credit_stalls: vec![vec![0; 2]; 2],
            })
            .collect();
        planes[Plane::DmaReq.index()].links[0][1].east = 7;
        planes[Plane::DmaReq.index()].links[1][0].local = 3;
        planes[Plane::DmaReq.index()].credit_stalls[0][1] = 5;
        NocHeatmap {
            cols: 2,
            rows: 2,
            cycles: 100,
            planes,
        }
    }

    #[test]
    fn totals_and_busiest() {
        let h = sample();
        assert_eq!(h.total_flits(), 10);
        assert_eq!(h.plane(Plane::DmaReq).total_flits(), 10);
        assert_eq!(h.plane(Plane::DmaReq).total_stalls(), 5);
        assert!(h.plane(Plane::CohReq).is_quiet());
        assert_eq!(h.busiest_router(), Some(("dma-req".to_string(), 1, 0, 7)));
    }

    #[test]
    fn ascii_skips_quiet_planes() {
        let text = sample().render_ascii();
        assert!(text.contains("plane dma-req"));
        assert!(!text.contains("plane coh-req"));
        assert!(text.contains("+5"));
    }

    #[test]
    fn csv_has_row_per_cell_per_plane() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + Plane::COUNT * 4);
        assert_eq!(
            lines[0],
            "plane,y,x,north,south,east,west,local,credit_stalls"
        );
        assert!(lines.iter().any(|l| l.starts_with("dma-req,0,1,0,0,7,")));
    }

    #[test]
    fn silent_mesh_renders_placeholder() {
        let mut h = sample();
        for ph in &mut h.planes {
            ph.links = vec![vec![LinkLoad::default(); 2]; 2];
            ph.credit_stalls = vec![vec![0; 2]; 2];
        }
        assert!(h.render_ascii().contains("(no traffic)"));
        assert_eq!(h.busiest_router(), None);
    }
}
