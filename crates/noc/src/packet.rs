//! Protocol-level packets carried by the NoC.

use crate::{Coord, NocError, Plane};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The protocol message class a packet belongs to.
///
/// The NoC itself is payload-agnostic; the kind tag lets tile logic (DMA
/// engines, memory controllers, the p2p service) dispatch without decoding
/// the payload. These classes mirror the message types exchanged over the
/// ESP accelerator and memory sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MsgKind {
    /// DMA load request: `payload = [tile-local address, length in words,
    /// destination offset within the requester's frame buffer]`.
    DmaLoadReq,
    /// DMA store request header: `payload[0..2] = [tile-local address,
    /// length]`, followed by the data words.
    DmaStoreReq,
    /// DMA response data: `payload[0]` is the destination offset within
    /// the requester's frame buffer, followed by the data words. The
    /// offset header lets bursts served by different memory tiles (or p2p
    /// producers) arrive in any order.
    DmaData,
    /// Acknowledgement that a DMA store has been drained by the receiver.
    DmaStoreAck,
    /// P2p load request: routed to a *producer accelerator tile* instead of a
    /// memory tile. `payload = [offset, length in words, consumer tag]`.
    P2pLoadReq,
    /// Memory-mapped register write: `payload = [register offset, value]`.
    RegWrite,
    /// Memory-mapped register read request: `payload = [register offset]`.
    RegReadReq,
    /// Memory-mapped register read response: `payload = [value]`.
    RegReadRsp,
    /// Interrupt request raised by an accelerator towards a processor tile.
    Irq,
    /// Cache-coherence protocol message (opaque at this level).
    Coherence,
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgKind::DmaLoadReq => "dma-load-req",
            MsgKind::DmaStoreReq => "dma-store-req",
            MsgKind::DmaData => "dma-data",
            MsgKind::DmaStoreAck => "dma-store-ack",
            MsgKind::P2pLoadReq => "p2p-load-req",
            MsgKind::RegWrite => "reg-write",
            MsgKind::RegReadReq => "reg-read-req",
            MsgKind::RegReadRsp => "reg-read-rsp",
            MsgKind::Irq => "irq",
            MsgKind::Coherence => "coherence",
        };
        f.write_str(s)
    }
}

/// A protocol packet: the unit of injection and ejection at tile sockets.
///
/// On the wire a packet becomes a *head* flit (carrying source, destination
/// and kind) followed by one body flit per payload word, the last marked as
/// the *tail*. The packet length in flits is therefore
/// `1 + payload.len()`.
///
/// # Example
///
/// ```
/// use esp4ml_noc::{Packet, Plane, Coord, MsgKind};
/// let pkt = Packet::new(
///     Coord::new(0, 0),
///     Coord::new(1, 2),
///     Plane::DmaReq,
///     MsgKind::DmaLoadReq,
///     vec![0x1000, 64, 7],
/// );
/// assert_eq!(pkt.flit_len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    src: Coord,
    dest: Coord,
    plane: Plane,
    kind: MsgKind,
    payload: Vec<u64>,
    /// Cycle at which the packet was injected (filled by the mesh).
    pub(crate) inject_cycle: u64,
    /// Global frame id this packet services, when known (metadata only:
    /// carried alongside the header, never occupies payload words).
    #[serde(default)]
    frame: Option<u64>,
}

impl Packet {
    /// Creates a new packet.
    ///
    /// An empty payload is permitted for signalling messages such as
    /// [`MsgKind::Irq`]; such packets still occupy one (head/tail) flit.
    pub fn new(src: Coord, dest: Coord, plane: Plane, kind: MsgKind, payload: Vec<u64>) -> Self {
        Packet {
            src,
            dest,
            plane,
            kind,
            payload,
            inject_cycle: 0,
            frame: None,
        }
    }

    /// Tags the packet with the global frame id it services.
    pub fn with_frame(mut self, frame: Option<u64>) -> Self {
        self.frame = frame;
        self
    }

    /// Source tile coordinate.
    pub fn src(&self) -> Coord {
        self.src
    }

    /// Destination tile coordinate.
    pub fn dest(&self) -> Coord {
        self.dest
    }

    /// The plane this packet travels on.
    pub fn plane(&self) -> Plane {
        self.plane
    }

    /// The protocol message class.
    pub fn kind(&self) -> MsgKind {
        self.kind
    }

    /// Payload words.
    pub fn payload(&self) -> &[u64] {
        &self.payload
    }

    /// Consumes the packet and returns its payload words.
    pub fn into_payload(self) -> Vec<u64> {
        self.payload
    }

    /// Mutable payload access — only the fault-injection layer rewrites
    /// payloads (flit corruption); regular tile logic never does.
    pub(crate) fn payload_mut(&mut self) -> &mut [u64] {
        &mut self.payload
    }

    /// Length of the packet in flits (head + one flit per payload word;
    /// an empty payload still needs its single head/tail flit).
    pub fn flit_len(&self) -> usize {
        1 + self.payload.len()
    }

    /// Cycle at which the packet entered the network (0 before injection).
    pub fn inject_cycle(&self) -> u64 {
        self.inject_cycle
    }

    /// Global frame id this packet services, if tagged.
    pub fn frame(&self) -> Option<u64> {
        self.frame
    }

    /// Validates the packet against a mesh of the given dimensions.
    pub(crate) fn validate(&self, cols: usize, rows: usize) -> Result<(), NocError> {
        for coord in [self.src, self.dest] {
            if coord.x as usize >= cols || coord.y as usize >= rows {
                return Err(NocError::OutOfBounds { coord, cols, rows });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::new(
            Coord::new(0, 1),
            Coord::new(2, 0),
            Plane::DmaReq,
            MsgKind::DmaLoadReq,
            vec![10, 20],
        )
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.src(), Coord::new(0, 1));
        assert_eq!(p.dest(), Coord::new(2, 0));
        assert_eq!(p.plane(), Plane::DmaReq);
        assert_eq!(p.kind(), MsgKind::DmaLoadReq);
        assert_eq!(p.payload(), &[10, 20]);
        assert_eq!(p.flit_len(), 3);
    }

    #[test]
    fn empty_payload_is_one_flit() {
        let p = Packet::new(
            Coord::new(0, 0),
            Coord::new(1, 1),
            Plane::IoIrq,
            MsgKind::Irq,
            vec![],
        );
        assert_eq!(p.flit_len(), 1);
    }

    #[test]
    fn validate_bounds() {
        let p = sample();
        assert!(p.validate(3, 2).is_ok());
        assert!(matches!(
            p.validate(2, 2),
            Err(NocError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn into_payload_returns_words() {
        assert_eq!(sample().into_payload(), vec![10, 20]);
    }
}
