//! Error type for NoC operations.

use crate::Coord;
use std::error::Error;
use std::fmt;

/// Errors returned by NoC construction and traffic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// The requested mesh dimensions are invalid (zero-sized, or larger than
    /// the 8-bit coordinate space allows).
    InvalidDimensions {
        /// Requested number of columns.
        cols: usize,
        /// Requested number of rows.
        rows: usize,
    },
    /// A coordinate referenced a tile outside the mesh.
    OutOfBounds {
        /// The offending coordinate.
        coord: Coord,
        /// Mesh columns.
        cols: usize,
        /// Mesh rows.
        rows: usize,
    },
    /// The local injection queue of the source tile is full; the packet was
    /// returned to the caller untouched (back-pressure).
    InjectQueueFull {
        /// The tile whose injection queue was full.
        coord: Coord,
    },
    /// A packet was constructed with an empty payload where at least one
    /// word is required.
    EmptyPayload,
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::InvalidDimensions { cols, rows } => {
                write!(f, "invalid mesh dimensions {cols}x{rows}")
            }
            NocError::OutOfBounds { coord, cols, rows } => {
                write!(f, "coordinate {coord} outside {cols}x{rows} mesh")
            }
            NocError::InjectQueueFull { coord } => {
                write!(f, "injection queue full at tile {coord}")
            }
            NocError::EmptyPayload => f.write_str("packet payload must not be empty"),
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NocError::InvalidDimensions { cols: 0, rows: 3 };
        assert_eq!(e.to_string(), "invalid mesh dimensions 0x3");
        let e = NocError::InjectQueueFull {
            coord: Coord::new(1, 1),
        };
        assert!(e.to_string().contains("(1, 1)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NocError>();
    }
}
