//! Tile coordinates on the 2D mesh.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The x-y coordinates of a tile (and of its router) on the 2D-mesh NoC.
///
/// `x` is the column (grows east), `y` is the row (grows south), matching
/// the ESP convention where the tile at `(0, 0)` sits in the north-west
/// corner of the floorplan. In ESP4ML these coordinates are what the
/// read-only `LOCATION_REG` of every accelerator exposes to the operating
/// system, and what the `P2P_REG` stores to identify source tiles.
///
/// # Example
///
/// ```
/// use esp4ml_noc::Coord;
/// let a = Coord::new(0, 0);
/// let b = Coord::new(3, 2);
/// assert_eq!(a.manhattan_distance(b), 5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// Column index (grows east).
    pub x: u8,
    /// Row index (grows south).
    pub y: u8,
}

impl Coord {
    /// Creates a coordinate from a column (`x`) and row (`y`) index.
    pub const fn new(x: u8, y: u8) -> Self {
        Coord { x, y }
    }

    /// Number of mesh hops between `self` and `other` under XY routing.
    pub fn manhattan_distance(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }

    /// Packs the coordinate into the low 16 bits of a word, as the
    /// `LOCATION_REG` hardware register does (`x` in bits `[15:8]`, `y` in
    /// bits `[7:0]`).
    pub fn to_reg(self) -> u64 {
        ((self.x as u64) << 8) | self.y as u64
    }

    /// Decodes a coordinate from a `LOCATION_REG`-formatted word.
    ///
    /// Only the low 16 bits are inspected; higher bits are ignored, as the
    /// hardware register is defined to be zero-extended.
    pub fn from_reg(reg: u64) -> Self {
        Coord::new(((reg >> 8) & 0xff) as u8, (reg & 0xff) as u8)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u8, u8)> for Coord {
    fn from((x, y): (u8, u8)) -> Self {
        Coord::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Coord::new(1, 4);
        let b = Coord::new(5, 0);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(b), 8);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Coord::new(2, 2);
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn reg_roundtrip() {
        for x in [0u8, 1, 7, 255] {
            for y in [0u8, 3, 254] {
                let c = Coord::new(x, y);
                assert_eq!(Coord::from_reg(c.to_reg()), c);
            }
        }
    }

    #[test]
    fn reg_ignores_high_bits() {
        let c = Coord::new(4, 9);
        assert_eq!(Coord::from_reg(c.to_reg() | 0xdead_0000), c);
    }

    #[test]
    fn from_tuple() {
        assert_eq!(Coord::from((3, 4)), Coord::new(3, 4));
    }

    #[test]
    fn display_format() {
        assert_eq!(Coord::new(1, 2).to_string(), "(1, 2)");
    }
}
