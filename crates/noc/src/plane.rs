//! NoC physical planes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the six decoupled physical planes of the ESP NoC.
///
/// Each plane is a full set of bi-directional links and router queues; the
/// planes share nothing but the floorplan. ESP dedicates three planes to the
/// cache-coherence protocol of the processor tiles, two planes to
/// accelerator DMA (requests and responses travel on *different* planes to
/// prevent message-dependent deadlock when multiple accelerators and
/// multiple memory tiles are present), and one plane to I/O and interrupt
/// delivery.
///
/// ESP4ML's p2p service reuses the two DMA planes: a p2p *load request*
/// travels on [`Plane::DmaReq`] from the consumer to the producer tile, and
/// the producer's data travels back on [`Plane::DmaRsp`] — exactly the
/// queues a memory-bound DMA would have used, which is why the service adds
/// no hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Plane {
    /// Coherence requests (processor caches to directory).
    CohReq,
    /// Coherence forwards (directory to caches).
    CohFwd,
    /// Coherence responses (data and acknowledgements).
    CohRsp,
    /// Accelerator DMA requests (load/store descriptors, p2p load requests).
    DmaReq,
    /// Accelerator DMA responses (data words).
    DmaRsp,
    /// Memory-mapped I/O, register access and interrupt requests.
    IoIrq,
}

impl Plane {
    /// All six planes, in index order.
    pub const ALL: [Plane; 6] = [
        Plane::CohReq,
        Plane::CohFwd,
        Plane::CohRsp,
        Plane::DmaReq,
        Plane::DmaRsp,
        Plane::IoIrq,
    ];

    /// Number of planes in the ESP NoC.
    pub const COUNT: usize = 6;

    /// The dense index of this plane (0..[`Plane::COUNT`]).
    pub fn index(self) -> usize {
        match self {
            Plane::CohReq => 0,
            Plane::CohFwd => 1,
            Plane::CohRsp => 2,
            Plane::DmaReq => 3,
            Plane::DmaRsp => 4,
            Plane::IoIrq => 5,
        }
    }

    /// Constructs a plane from its dense index.
    ///
    /// Returns `None` if `index >= Plane::COUNT`.
    pub fn from_index(index: usize) -> Option<Plane> {
        Plane::ALL.get(index).copied()
    }

    /// Whether this plane carries accelerator DMA traffic (and hence p2p
    /// traffic in ESP4ML).
    pub fn is_dma(self) -> bool {
        matches!(self, Plane::DmaReq | Plane::DmaRsp)
    }
}

impl fmt::Display for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Plane::CohReq => "coh-req",
            Plane::CohFwd => "coh-fwd",
            Plane::CohRsp => "coh-rsp",
            Plane::DmaReq => "dma-req",
            Plane::DmaRsp => "dma-rsp",
            Plane::IoIrq => "io-irq",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, p) in Plane::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Plane::from_index(i), Some(*p));
        }
        assert_eq!(Plane::from_index(6), None);
    }

    #[test]
    fn dma_planes() {
        assert!(Plane::DmaReq.is_dma());
        assert!(Plane::DmaRsp.is_dma());
        assert!(!Plane::CohReq.is_dma());
        assert!(!Plane::IoIrq.is_dma());
    }

    #[test]
    fn display_names_are_unique() {
        let names: std::collections::BTreeSet<String> =
            Plane::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names.len(), Plane::COUNT);
    }
}
