//! The event-driven scheduling contract shared by every simulated
//! component (tiles, mesh).
//!
//! The naive engine calls `tick()` on every component every cycle. Most of
//! those ticks are *boring*: a DRAM burst counting down its latency, a
//! DVFS-divided datapath burning compute cycles, an accelerator spinning
//! on data that has not arrived. [`Schedulable`] lets a component report,
//! via [`Progress`], when its next *interesting* tick is — the earliest
//! future cycle at which it can possibly change externally observable
//! state — so the driver can jump the global clock there directly and
//! bulk-apply the skipped boring cycles with [`Schedulable::advance`].
//!
//! The contract that keeps fast-forward cycle-exact with the naive engine:
//!
//! 1. `progress(now)` must be conservative: if the component might do
//!    externally observable work (inject/eject a packet, change FSM phase,
//!    emit a trace event) at cycle `c`, then `next_wake(now) <= Some(c)`.
//! 2. `advance(delta)` must leave the component in exactly the state that
//!    `delta` consecutive boring ticks would have — including statistics
//!    counters — provided `delta` does not run past the reported wake
//!    cycle (the driver guarantees this).
//! 3. A `Quiescent` component may still accumulate wait-state counters in
//!    `advance`; it only promises not to touch the fabric on its own.

/// What a component did (or can do) at a given cycle, plus a hint about
/// when it next needs to be ticked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// The component did (or may do) externally observable work this
    /// cycle; tick it again next cycle.
    Active,
    /// The component is counting down an internal latency and cannot do
    /// observable work before `until` (absolute cycle).
    Blocked {
        /// First cycle at which the component can change observable state.
        until: u64,
    },
    /// The component has no self-driven future work: it will only act in
    /// response to external input (a packet arrival, a register write).
    Quiescent,
}

impl Progress {
    /// The earliest future cycle at which the component needs a tick, or
    /// `None` when it is quiescent. `now` is the current cycle.
    pub fn next_wake(&self, now: u64) -> Option<u64> {
        match *self {
            Progress::Active => Some(now),
            Progress::Blocked { until } => Some(until.max(now)),
            Progress::Quiescent => None,
        }
    }

    /// Combines two progress reports: the earlier wake-up wins.
    pub fn merge(self, other: Progress) -> Progress {
        match (self, other) {
            (Progress::Active, _) | (_, Progress::Active) => Progress::Active,
            (Progress::Blocked { until: a }, Progress::Blocked { until: b }) => {
                Progress::Blocked { until: a.min(b) }
            }
            (b @ Progress::Blocked { .. }, Progress::Quiescent) => b,
            (Progress::Quiescent, b @ Progress::Blocked { .. }) => b,
            (Progress::Quiescent, Progress::Quiescent) => Progress::Quiescent,
        }
    }
}

/// The event-driven ticking contract: tick against a fabric, report
/// progress, and bulk-apply skipped boring cycles.
pub trait Schedulable {
    /// The fabric the component ticks against (`Mesh` for tiles, `()` for
    /// the mesh itself).
    type Fabric: ?Sized;

    /// Advances the component by one cycle and reports its progress.
    fn tick(&mut self, fabric: &mut Self::Fabric) -> Progress;

    /// Reports progress without ticking: what would the component do at
    /// cycle `now`?
    fn progress(&self, now: u64) -> Progress;

    /// Bulk-applies `delta` boring cycles: deterministic internal counters
    /// (latency countdowns, busy/stall statistics) advance exactly as
    /// `delta` naive ticks would have. The caller guarantees `delta` does
    /// not cross the component's reported wake cycle.
    fn advance(&mut self, delta: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_wake_by_variant() {
        assert_eq!(Progress::Active.next_wake(10), Some(10));
        assert_eq!(Progress::Blocked { until: 42 }.next_wake(10), Some(42));
        // A stale block never schedules in the past.
        assert_eq!(Progress::Blocked { until: 5 }.next_wake(10), Some(10));
        assert_eq!(Progress::Quiescent.next_wake(10), None);
    }

    #[test]
    fn merge_takes_earliest() {
        let a = Progress::Blocked { until: 20 };
        let b = Progress::Blocked { until: 30 };
        assert_eq!(a.merge(b), Progress::Blocked { until: 20 });
        assert_eq!(a.merge(Progress::Quiescent), a);
        assert_eq!(Progress::Quiescent.merge(b), b);
        assert_eq!(a.merge(Progress::Active), Progress::Active);
        assert_eq!(
            Progress::Quiescent.merge(Progress::Quiescent),
            Progress::Quiescent
        );
    }
}
