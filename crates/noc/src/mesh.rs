//! The 2D-mesh NoC: routers, links, injection/ejection interfaces.

use crate::flit::{Flit, ReasmViolation, Reassembler};
use crate::heatmap::{LinkLoad, NocHeatmap, PlaneHeatmap};
use crate::router::{Port, Router, RouterConfig, RouterState, Transfer};
use crate::sanitizer::{expected_planes, plane_carries, MeshSanitizer, MeshSanitizerState};
use crate::schedule::{Progress, Schedulable};
use crate::{Coord, MsgKind, NocError, NocStats, Packet, Plane};
use esp4ml_check::{codes, Diagnostic, Report, SanitizerConfig};
use esp4ml_fault::{CycleWindow, FaultKind, FaultSpec};
use esp4ml_trace::{TileCoord, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Converts a NoC coordinate into its trace-event counterpart.
fn trace_coord(c: Coord) -> TileCoord {
    TileCoord::new(c.x, c.y)
}

/// Capacity of one directed physical link on one plane: every link
/// moves at most one flit per cycle, so a plane's per-link bandwidth in
/// flits/s is exactly the clock frequency. Static feasibility analyses
/// (espcheck `--deployment`) compare summed demand against
/// `clock_hz * LINK_CAPACITY_FLITS_PER_CYCLE`.
pub const LINK_CAPACITY_FLITS_PER_CYCLE: u64 = 1;

/// Configuration of a mesh NoC instance.
///
/// The defaults match the ESP NoC as instantiated by the ESP4ML flow:
/// six planes, shallow 4-flit router queues, and modest per-tile
/// injection/ejection buffering provided by the tile sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Number of columns.
    pub cols: usize,
    /// Number of rows.
    pub rows: usize,
    /// Per-router configuration.
    pub router: RouterConfig,
    /// Capacity, in flits, of each per-tile per-plane injection queue.
    pub inject_queue_depth: usize,
    /// Capacity, in completed packets, of each per-tile per-plane ejection
    /// queue. When full, the NoC back-pressures into the mesh — this is how
    /// the simulator exposes "consumption assumption" violations.
    pub eject_queue_depth: usize,
}

impl MeshConfig {
    /// Creates a configuration for a `cols x rows` mesh with default queue
    /// depths.
    pub fn new(cols: usize, rows: usize) -> Self {
        MeshConfig {
            cols,
            rows,
            router: RouterConfig::default(),
            // The tile socket stages whole DMA packets (up to ~128 payload
            // words plus headers) before injection, so the per-plane
            // injection buffer must hold at least one maximal packet.
            inject_queue_depth: 512,
            eject_queue_depth: 16,
        }
    }
}

/// Per-tile, per-plane socket-side state.
#[derive(Debug, Default)]
struct TileEndpoint {
    inject: VecDeque<Flit>,
    eject: VecDeque<Packet>,
    reasm: Reassembler,
}

/// An armed NoC link-degradation fault (see [`FaultKind::NocDelay`]).
#[derive(Debug, Clone)]
struct DelayFault {
    plane: usize,
    from_packet: u64,
    count: u64,
    extra_cycles: u64,
    window: CycleWindow,
}

/// An armed flit-corruption fault (see [`FaultKind::NocCorrupt`]).
#[derive(Debug, Clone)]
struct CorruptFault {
    plane: usize,
    from_packet: u64,
    count: u64,
    xor_mask: u64,
    window: CycleWindow,
}

/// A packet held back by a [`DelayFault`] before entering the network.
#[derive(Debug)]
struct DelayedPacket {
    tile: usize,
    plane: Plane,
    flits: Vec<Flit>,
    release: u64,
}

/// The mesh-side state of an installed fault plan. Allocated only when
/// NoC faults are armed — fault-free runs never touch it.
#[derive(Debug, Default)]
struct MeshFaults {
    delays: Vec<DelayFault>,
    corrupts: Vec<CorruptFault>,
    /// Packets injected per plane since installation (delay trigger).
    inject_seen: [u64; Plane::COUNT],
    /// Data-bearing packets delivered per plane (corruption trigger).
    data_ejected: [u64; Plane::COUNT],
    /// Packets held back by link degradation, in injection order.
    delayed: VecDeque<DelayedPacket>,
    /// Total fault firings so far.
    fired: u64,
}

/// One armed NoC link-delay fault in a [`MeshState`], including how far
/// its trigger has advanced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayFaultState {
    /// NoC plane index the fault watches.
    pub plane: usize,
    /// First affected packet index.
    pub from_packet: u64,
    /// Number of consecutive affected packets.
    pub count: u64,
    /// Extra cycles each affected packet is held before injection.
    pub extra_cycles: u64,
    /// Cycle window in which the fault is armed.
    pub window: CycleWindow,
}

/// One armed flit-corruption fault in a [`MeshState`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorruptFaultState {
    /// NoC plane index the fault watches.
    pub plane: usize,
    /// First affected packet index.
    pub from_packet: u64,
    /// Number of consecutive affected packets.
    pub count: u64,
    /// XOR mask applied to one payload word.
    pub xor_mask: u64,
    /// Cycle window in which the fault is armed.
    pub window: CycleWindow,
}

/// A packet held back by link degradation at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayedPacketState {
    /// Dense tile index of the injecting endpoint.
    pub tile: usize,
    /// Plane the packet rides.
    pub plane: Plane,
    /// The packet's flits, in order.
    pub flits: Vec<Flit>,
    /// Cycle at which the packet is released into the network.
    pub release: u64,
}

/// The fault-plan state of a mesh: armed specs *plus* their trigger
/// counters and any packets currently held back. Trigger counters must
/// be captured so a restored run fires the same faults at the same
/// architectural events as an uninterrupted run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshFaultsState {
    /// Armed link-delay faults.
    pub delays: Vec<DelayFaultState>,
    /// Armed flit-corruption faults.
    pub corrupts: Vec<CorruptFaultState>,
    /// Packets injected per plane since installation.
    pub inject_seen: [u64; Plane::COUNT],
    /// Data-bearing packets delivered per plane.
    pub data_ejected: [u64; Plane::COUNT],
    /// Packets held back by link degradation, in injection order.
    pub delayed: Vec<DelayedPacketState>,
    /// Total fault firings so far.
    pub fired: u64,
}

/// One tile/plane endpoint in a [`MeshState`]: the injection FIFO,
/// ejected-but-unread packets and any partial reassembly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndpointState {
    /// Flits queued for injection, in order.
    pub inject: Vec<Flit>,
    /// Complete packets awaiting ejection by the tile.
    pub eject: Vec<Packet>,
    /// Partial reassembly: head flit plus accumulated payload words.
    pub reasm: Option<(Flit, Vec<u64>)>,
}

/// Complete serializable dynamic state of a [`Mesh`]: every in-flight
/// flit, router queue, endpoint buffer, statistic, sanitizer ledger and
/// fault trigger counter. Captured by [`Mesh::state`]; restoring it via
/// [`Mesh::restore_state`] resumes the network byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshState {
    /// The mesh cycle counter.
    pub cycle: u64,
    /// Aggregate per-plane statistics.
    pub stats: NocStats,
    /// Per-router dynamic state, in dense tile order.
    pub routers: Vec<RouterState>,
    /// Per-tile, per-plane endpoint state.
    pub endpoints: Vec<Vec<EndpointState>>,
    /// Sanitizer ledger, when a sanitizer is installed.
    pub sanitizer: Option<MeshSanitizerState>,
    /// Fault-plan state, when NoC faults are armed.
    pub faults: Option<MeshFaultsState>,
}

/// Whether a delivered packet carries corruptible data words in its
/// payload tail. Header/control words are never corrupted — NoC headers
/// are ECC-protected in real fabrics, and corrupting an address or
/// length would crash the simulator instead of modelling silent data
/// corruption.
fn corruptible(pkt: &Packet) -> bool {
    match pkt.kind() {
        MsgKind::DmaData => pkt.payload().len() >= 2,
        MsgKind::DmaStoreReq => pkt.payload().len() >= 3,
        _ => false,
    }
}

/// A cycle-level 2D-mesh NoC.
///
/// Tiles interact with the mesh through [`Mesh::inject`] / [`Mesh::eject`]
/// at their coordinate; [`Mesh::tick`] advances all routers by one cycle.
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Mesh {
    config: MeshConfig,
    routers: Vec<Router>,
    endpoints: Vec<Vec<TileEndpoint>>, // [tile][plane]
    stats: NocStats,
    cycle: u64,
    tracer: Tracer,
    sanitizer: Option<Box<MeshSanitizer>>,
    faults: Option<Box<MeshFaults>>,
}

impl Mesh {
    /// Builds a mesh from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidDimensions`] when either dimension is zero
    /// or exceeds 256 (the 8-bit coordinate space).
    pub fn new(config: MeshConfig) -> Result<Self, NocError> {
        let (cols, rows) = (config.cols, config.rows);
        if cols == 0 || rows == 0 || cols > 256 || rows > 256 {
            return Err(NocError::InvalidDimensions { cols, rows });
        }
        let mut routers = Vec::with_capacity(cols * rows);
        let mut endpoints = Vec::with_capacity(cols * rows);
        for y in 0..rows {
            for x in 0..cols {
                routers.push(Router::new(
                    Coord::new(x as u8, y as u8),
                    cols,
                    rows,
                    config.router,
                ));
                endpoints.push((0..Plane::COUNT).map(|_| TileEndpoint::default()).collect());
            }
        }
        Ok(Mesh {
            config,
            routers,
            endpoints,
            stats: NocStats::new(),
            cycle: 0,
            tracer: Tracer::disabled(),
            sanitizer: None,
            faults: None,
        })
    }

    /// Installs one NoC fault from a fault plan. Returns `false` (and
    /// installs nothing) for non-NoC fault kinds, so callers can route a
    /// mixed plan through every component.
    ///
    /// # Panics
    ///
    /// Panics if the spec names a plane index outside the mesh's planes.
    pub fn install_fault(&mut self, spec: &FaultSpec) -> bool {
        match &spec.kind {
            FaultKind::NocDelay {
                plane,
                from_packet,
                count,
                extra_cycles,
            } => {
                assert!(*plane < Plane::COUNT, "plane index {plane} out of range");
                let f = self.faults.get_or_insert_with(Default::default);
                f.delays.push(DelayFault {
                    plane: *plane,
                    from_packet: *from_packet,
                    count: *count,
                    extra_cycles: *extra_cycles,
                    window: spec.window,
                });
                true
            }
            FaultKind::NocCorrupt {
                plane,
                from_packet,
                count,
                xor_mask,
            } => {
                assert!(*plane < Plane::COUNT, "plane index {plane} out of range");
                let f = self.faults.get_or_insert_with(Default::default);
                f.corrupts.push(CorruptFault {
                    plane: *plane,
                    from_packet: *from_packet,
                    count: *count,
                    xor_mask: *xor_mask,
                    window: spec.window,
                });
                true
            }
            _ => false,
        }
    }

    /// How many NoC faults have fired so far (0 when no plan installed).
    pub fn faults_fired(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.fired)
    }

    /// Installs the invariant sanitizer. From now on, every tick and
    /// every fast-forward boundary audits the enabled invariants (see
    /// [`SanitizerConfig`]); violations accumulate deduplicated in
    /// [`Mesh::sanitizer_report`]. The audits also fire in release
    /// builds — this is the opt-in replacement for the `debug_assert!`s
    /// guarding the same invariants on plain runs.
    pub fn enable_sanitizer(&mut self, config: SanitizerConfig) {
        self.sanitizer = Some(Box::new(MeshSanitizer::new(config, self.routers.len())));
    }

    /// Whether a sanitizer is installed.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// Captures the complete dynamic state of the mesh — every router
    /// queue, wormhole lock, endpoint buffer, in-flight or held-back
    /// flit, statistic, sanitizer ledger and fault trigger counter. The
    /// tracer is *not* captured: it is a live host-side handle, and
    /// trace events already emitted belong to the past of the run being
    /// forked.
    pub fn state(&self) -> MeshState {
        MeshState {
            cycle: self.cycle,
            stats: self.stats.clone(),
            routers: self.routers.iter().map(Router::state).collect(),
            endpoints: self
                .endpoints
                .iter()
                .map(|planes| {
                    planes
                        .iter()
                        .map(|ep| EndpointState {
                            inject: ep.inject.iter().cloned().collect(),
                            eject: ep.eject.iter().cloned().collect(),
                            reasm: ep.reasm.state(),
                        })
                        .collect()
                })
                .collect(),
            sanitizer: self.sanitizer.as_ref().map(|s| s.state()),
            faults: self.faults.as_ref().map(|f| MeshFaultsState {
                delays: f
                    .delays
                    .iter()
                    .map(|d| DelayFaultState {
                        plane: d.plane,
                        from_packet: d.from_packet,
                        count: d.count,
                        extra_cycles: d.extra_cycles,
                        window: d.window,
                    })
                    .collect(),
                corrupts: f
                    .corrupts
                    .iter()
                    .map(|c| CorruptFaultState {
                        plane: c.plane,
                        from_packet: c.from_packet,
                        count: c.count,
                        xor_mask: c.xor_mask,
                        window: c.window,
                    })
                    .collect(),
                inject_seen: f.inject_seen,
                data_ejected: f.data_ejected,
                delayed: f
                    .delayed
                    .iter()
                    .map(|d| DelayedPacketState {
                        tile: d.tile,
                        plane: d.plane,
                        flits: d.flits.clone(),
                        release: d.release,
                    })
                    .collect(),
                fired: f.fired,
            }),
        }
    }

    /// Restores dynamic state captured by [`Mesh::state`].
    ///
    /// The structural configuration (dimensions, queue depths, routing
    /// tables) is kept; sanitizer and fault-plan state are *replaced*
    /// wholesale — restoring a fault-free snapshot onto a mesh with an
    /// installed plan uninstalls that plan, which is what lets one
    /// warmed checkpoint fork into both healthy and faulty campaign
    /// points.
    ///
    /// # Panics
    ///
    /// Panics when the state's router/endpoint shape does not match
    /// this mesh (the caller validates structural compatibility first).
    pub fn restore_state(&mut self, state: &MeshState) {
        assert_eq!(state.routers.len(), self.routers.len(), "router count");
        assert_eq!(state.endpoints.len(), self.endpoints.len(), "tile count");
        self.cycle = state.cycle;
        self.stats = state.stats.clone();
        for (r, rs) in self.routers.iter_mut().zip(&state.routers) {
            r.restore_state(rs);
        }
        for (planes, ps) in self.endpoints.iter_mut().zip(&state.endpoints) {
            assert_eq!(ps.len(), planes.len(), "plane count");
            for (ep, es) in planes.iter_mut().zip(ps) {
                ep.inject.clear();
                ep.inject.extend(es.inject.iter().cloned());
                ep.eject.clear();
                ep.eject.extend(es.eject.iter().cloned());
                ep.reasm.restore_state(es.reasm.clone());
            }
        }
        self.sanitizer = state
            .sanitizer
            .as_ref()
            .map(|s| Box::new(MeshSanitizer::from_state(s)));
        self.faults = state.faults.as_ref().map(|f| {
            Box::new(MeshFaults {
                delays: f
                    .delays
                    .iter()
                    .map(|d| DelayFault {
                        plane: d.plane,
                        from_packet: d.from_packet,
                        count: d.count,
                        extra_cycles: d.extra_cycles,
                        window: d.window,
                    })
                    .collect(),
                corrupts: f
                    .corrupts
                    .iter()
                    .map(|c| CorruptFault {
                        plane: c.plane,
                        from_packet: c.from_packet,
                        count: c.count,
                        xor_mask: c.xor_mask,
                        window: c.window,
                    })
                    .collect(),
                inject_seen: f.inject_seen,
                data_ejected: f.data_ejected,
                delayed: f
                    .delayed
                    .iter()
                    .map(|d| DelayedPacket {
                        tile: d.tile,
                        plane: d.plane,
                        flits: d.flits.clone(),
                        release: d.release,
                    })
                    .collect(),
                fired: f.fired,
            })
        });
    }

    /// The sanitizer verdict so far: `None` when no sanitizer is
    /// installed, otherwise the sorted, deduplicated violation report
    /// (empty report = all invariants held).
    pub fn sanitizer_report(&self) -> Option<Report> {
        self.sanitizer.as_ref().map(|s| s.report())
    }

    /// Fault injection for sanitizer tests: leak one credit on the
    /// input link `(coord, plane, port)`, as a flow-control bug would.
    /// The next audit must flag `E0401` on that link.
    ///
    /// # Panics
    ///
    /// Panics if no sanitizer is installed or `coord` is out of bounds.
    pub fn fault_leak_credit(&mut self, coord: Coord, plane: Plane, port: Port) {
        self.check_bounds(coord).expect("coordinate in bounds");
        let i = self.tile_index(coord);
        self.sanitizer
            .as_deref_mut()
            .expect("sanitizer installed")
            .fault_leak_credit(i, plane, port);
    }

    /// Fault injection for sanitizer tests: account a flit that was
    /// never injected. The next audit must flag `E0402` on `plane`.
    ///
    /// # Panics
    ///
    /// Panics if no sanitizer is installed.
    pub fn fault_phantom_flit(&mut self, plane: Plane) {
        self.sanitizer
            .as_deref_mut()
            .expect("sanitizer installed")
            .fault_phantom_flit(plane);
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Installs a tracer; packet inject/eject events are emitted through
    /// it from now on. The default tracer is disabled (zero overhead
    /// beyond one branch per event site).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer currently installed.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn tile_index(&self, c: Coord) -> usize {
        c.y as usize * self.config.cols + c.x as usize
    }

    fn check_bounds(&self, c: Coord) -> Result<(), NocError> {
        if (c.x as usize) < self.config.cols && (c.y as usize) < self.config.rows {
            Ok(())
        } else {
            Err(NocError::OutOfBounds {
                coord: c,
                cols: self.config.cols,
                rows: self.config.rows,
            })
        }
    }

    /// Per-router forwarded-flit counts as a row-major `rows x cols`
    /// matrix — the NoC congestion heatmap.
    pub fn traffic_matrix(&self) -> Vec<Vec<u64>> {
        (0..self.config.rows)
            .map(|y| {
                (0..self.config.cols)
                    .map(|x| self.routers[y * self.config.cols + x].forwarded_flits())
                    .collect()
            })
            .collect()
    }

    /// Snapshots per-router, per-link occupancy and credit-stall
    /// counters for every plane.
    pub fn link_heatmap(&self) -> NocHeatmap {
        let planes = Plane::ALL
            .iter()
            .map(|&plane| {
                let mut links = vec![vec![LinkLoad::default(); self.config.cols]; self.config.rows];
                let mut credit_stalls = vec![vec![0u64; self.config.cols]; self.config.rows];
                for y in 0..self.config.rows {
                    for x in 0..self.config.cols {
                        let router = &self.routers[y * self.config.cols + x];
                        for port in Port::ALL {
                            links[y][x].set_port(port, router.link_flits(plane, port));
                        }
                        credit_stalls[y][x] = router.credit_stalls(plane);
                    }
                }
                PlaneHeatmap {
                    plane: plane.to_string(),
                    links,
                    credit_stalls,
                }
            })
            .collect();
        NocHeatmap {
            cols: self.config.cols,
            rows: self.config.rows,
            cycles: self.cycle,
            planes,
        }
    }

    /// Access the router at `coord` (e.g. to install a custom routing table).
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the mesh.
    pub fn router_mut(&mut self, coord: Coord) -> &mut Router {
        self.check_bounds(coord).expect("coordinate in bounds");
        let i = self.tile_index(coord);
        &mut self.routers[i]
    }

    /// Read-only access to the router at `coord` (e.g. to read its
    /// per-link flit counters without a heatmap snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `coord` is outside the mesh.
    pub fn router(&self, coord: Coord) -> &Router {
        self.check_bounds(coord).expect("coordinate in bounds");
        let i = self.tile_index(coord);
        &self.routers[i]
    }

    /// Flits forwarded over the directed physical link `from -> to` on
    /// `plane` so far — the counter kept by `from`'s router on the
    /// output port facing `to`. `None` when the coordinates are not
    /// mesh neighbors (or are out of bounds).
    pub fn directed_link_flits(&self, plane: Plane, from: Coord, to: Coord) -> Option<u64> {
        if self.check_bounds(from).is_err() || self.check_bounds(to).is_err() {
            return None;
        }
        let port = Port::ALL
            .into_iter()
            .find(|p| p.step(from) == Some(to) && *p != Port::Local)?;
        Some(self.router(from).link_flits(plane, port))
    }

    /// Free flit slots in the injection queue of `(coord, plane)`.
    pub fn inject_capacity(&self, coord: Coord, plane: Plane) -> usize {
        let i = self.tile_index(coord);
        self.config
            .inject_queue_depth
            .saturating_sub(self.endpoints[i][plane.index()].inject.len())
    }

    /// Whether a packet of the given flit length can be injected now.
    pub fn can_inject(&self, coord: Coord, plane: Plane, flit_len: usize) -> bool {
        self.inject_capacity(coord, plane) >= flit_len
    }

    /// Injects a packet at its source tile.
    ///
    /// The whole packet must fit in the injection queue: packets are never
    /// partially accepted, mirroring the tile socket's store-and-forward
    /// behaviour towards the NoC.
    ///
    /// # Errors
    ///
    /// [`NocError::OutOfBounds`] if source or destination are outside the
    /// mesh; [`NocError::InjectQueueFull`] if the queue lacks space (the
    /// caller should retry after ticking — this is back-pressure, not
    /// failure).
    pub fn inject(&mut self, mut packet: Packet) -> Result<(), NocError> {
        packet.validate(self.config.cols, self.config.rows)?;
        let src = packet.src();
        let plane = packet.plane();
        if !self.can_inject(src, plane, packet.flit_len()) {
            return Err(NocError::InjectQueueFull { coord: src });
        }
        packet.inject_cycle = self.cycle;
        let flits = Flit::from_packet(&packet);
        let i = self.tile_index(src);
        if let Some(san) = self.sanitizer.as_deref_mut() {
            if san.config.flits {
                san.injected[plane.index()] += flits.len() as u64;
            }
            if san.config.planes && !plane_carries(plane, packet.kind()) {
                let expected: Vec<String> = expected_planes(packet.kind())
                    .iter()
                    .map(|p| p.to_string())
                    .collect();
                san.record(
                    Diagnostic::error(
                        codes::PLANE_MISASSIGNMENT,
                        format!("tile({},{}) plane {plane}", src.x, src.y),
                        format!(
                            "{} message injected on plane {plane}; this kind rides {}",
                            packet.kind(),
                            expected.join(" or ")
                        ),
                    )
                    .with_hint(
                        "plane misassignment voids the NoC's message-dependent \
                         deadlock avoidance; inject on the canonical plane",
                    ),
                );
            }
        }
        if let Some(flits) = self.fault_intercept(i, src, plane, flits) {
            self.endpoints[i][plane.index()].inject.extend(flits);
        }
        self.stats.plane_mut(plane).packets_injected += 1;
        let frame = packet.frame();
        self.tracer.emit(self.cycle, trace_coord(src), || {
            TraceEvent::NocPacketInject {
                plane: plane.index(),
                frame,
            }
        });
        Ok(())
    }

    /// Applies any armed link-degradation fault to a packet about to enter
    /// its injection queue. Returns the flits back when the packet proceeds
    /// normally; `None` when a [`DelayFault`] (or FIFO ordering behind an
    /// earlier held packet on the same `(tile, plane)` link) holds it in
    /// [`MeshFaults::delayed`] until its release cycle.
    fn fault_intercept(
        &mut self,
        tile: usize,
        src: Coord,
        plane: Plane,
        flits: Vec<Flit>,
    ) -> Option<Vec<Flit>> {
        let cycle = self.cycle;
        let Some(f) = self.faults.as_deref_mut() else {
            return Some(flits);
        };
        let pi = plane.index();
        let seq = f.inject_seen[pi];
        f.inject_seen[pi] += 1;
        let (hit, extra) = match f.delays.iter().find(|d| {
            d.plane == pi
                && seq >= d.from_packet
                && seq - d.from_packet < d.count
                && d.window.contains(cycle)
        }) {
            Some(d) => (true, d.extra_cycles),
            None => (false, 0),
        };
        // A packet behind a held one on the same (tile, plane) must wait
        // too: the degraded link preserves order, it only adds latency.
        let behind = f
            .delayed
            .iter()
            .filter(|d| d.tile == tile && d.plane == plane)
            .map(|d| d.release)
            .max();
        if !hit && behind.is_none() {
            return Some(flits);
        }
        let release = (cycle + extra).max(behind.unwrap_or(0));
        f.delayed.push_back(DelayedPacket {
            tile,
            plane,
            flits,
            release,
        });
        if hit {
            f.fired += 1;
            let detail = format!(
                "noc_delay: plane {plane} packet {seq} at ({},{}) held until cycle {release}",
                src.x, src.y
            );
            self.tracer
                .emit(cycle, trace_coord(src), || TraceEvent::FaultInjected {
                    fault: "noc_delay",
                    detail,
                });
        }
        None
    }

    /// Moves delayed packets whose release cycle has arrived into their
    /// injection queues, preserving per-link order. Runs at the top of
    /// every tick; a no-op unless a delay fault has fired.
    fn release_delayed(&mut self) {
        let Some(mut f) = self.faults.take() else {
            return;
        };
        if !f.delayed.is_empty() {
            let cycle = self.cycle;
            // A (tile, plane) link whose oldest held packet is not yet due
            // (or cannot fit) blocks every later packet on the same link.
            let mut blocked: Vec<(usize, Plane)> = Vec::new();
            let mut idx = 0;
            while idx < f.delayed.len() {
                let d = &f.delayed[idx];
                let key = (d.tile, d.plane);
                if blocked.contains(&key) {
                    idx += 1;
                    continue;
                }
                let queue = &mut self.endpoints[d.tile][d.plane.index()].inject;
                let free = self.config.inject_queue_depth.saturating_sub(queue.len());
                if d.release > cycle || free < d.flits.len() {
                    blocked.push(key);
                    idx += 1;
                    continue;
                }
                let d = f.delayed.remove(idx).expect("index in bounds");
                self.endpoints[d.tile][d.plane.index()]
                    .inject
                    .extend(d.flits);
            }
        }
        self.faults = Some(f);
    }

    /// Applies any armed flit-corruption fault to a completed packet about
    /// to be handed to its destination tile. Only trailing *data* words of
    /// DMA payloads are corruptible (see [`corruptible`]); the flip is a
    /// single XOR so the packet's length and routing are untouched.
    fn fault_corrupt(&mut self, dest: Coord, pkt: &mut Packet) {
        let cycle = self.cycle;
        let Some(f) = self.faults.as_deref_mut() else {
            return;
        };
        if !corruptible(pkt) {
            return;
        }
        let plane = pkt.plane();
        let pi = plane.index();
        let seq = f.data_ejected[pi];
        f.data_ejected[pi] += 1;
        let Some(c) = f.corrupts.iter().find(|c| {
            c.plane == pi
                && seq >= c.from_packet
                && seq - c.from_packet < c.count
                && c.window.contains(cycle)
        }) else {
            return;
        };
        let mask = c.xor_mask;
        f.fired += 1;
        let last = pkt
            .payload_mut()
            .last_mut()
            .expect("corruptible packets have data words");
        *last ^= mask;
        let kind = pkt.kind();
        let detail = format!(
            "noc_corrupt: plane {plane} {kind} packet {seq} at ({},{}): \
             last data word xor {mask:#x}",
            dest.x, dest.y
        );
        self.tracer
            .emit(cycle, trace_coord(dest), || TraceEvent::FaultInjected {
                fault: "noc_corrupt",
                detail,
            });
    }

    /// Returns a reference to the oldest delivered packet at `(coord,
    /// plane)` without removing it.
    pub fn peek(&self, coord: Coord, plane: Plane) -> Option<&Packet> {
        let i = self.tile_index(coord);
        self.endpoints[i][plane.index()].eject.front()
    }

    /// Removes and returns the oldest delivered packet at `(coord, plane)`.
    pub fn eject(&mut self, coord: Coord, plane: Plane) -> Option<Packet> {
        let i = self.tile_index(coord);
        self.endpoints[i][plane.index()].eject.pop_front()
    }

    /// Number of delivered packets waiting at `(coord, plane)`.
    pub fn delivered_len(&self, coord: Coord, plane: Plane) -> usize {
        let i = self.tile_index(coord);
        self.endpoints[i][plane.index()].eject.len()
    }

    /// Total packets delivered to ejection queues but not yet ejected by
    /// their tiles, across all coordinates and planes.
    pub fn undelivered_total(&self) -> usize {
        self.endpoints
            .iter()
            .map(|planes| planes.iter().map(|ep| ep.eject.len()).sum::<usize>())
            .sum()
    }

    /// Whether any traffic (queued flits or partial packets) remains in the
    /// network, including packets held back by an armed delay fault.
    /// Delivered-but-unejected packets do not count as in-flight; see
    /// [`Mesh::undelivered_total`] for those.
    pub fn is_idle(&self) -> bool {
        self.traffic_idle() && self.faults.as_deref().is_none_or(|f| f.delayed.is_empty())
    }

    /// Whether the queues and routers themselves are empty — the
    /// fast-forward precondition (fault-delayed packets carry an absolute
    /// release cycle, so bulk-advancing over them is safe).
    fn traffic_idle(&self) -> bool {
        for (ti, r) in self.routers.iter().enumerate() {
            for plane in Plane::ALL {
                if !self.endpoints[ti][plane.index()].inject.is_empty() {
                    return false;
                }
                for port in Port::ALL {
                    if r.occupancy(plane, port) > 0 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Advances the NoC by one cycle: local injection, router arbitration,
    /// link traversal, local ejection.
    pub fn tick(&mut self) {
        let cols = self.config.cols;
        let rows = self.config.rows;
        let n = cols * rows;

        // Phase 0: hand any fault-delayed packets whose release cycle has
        // arrived to their injection queues (no-op without armed faults).
        if self.faults.is_some() {
            self.release_delayed();
        }

        // Phase 1: move up to one flit per (tile, plane) from the injection
        // queue into the router's local input port.
        for ti in 0..n {
            for plane in Plane::ALL {
                let free = self.routers[ti].free_slots(plane, Port::Local);
                if free == 0 {
                    continue;
                }
                if let Some(flit) = self.endpoints[ti][plane.index()].inject.pop_front() {
                    self.routers[ti].push_input(plane, Port::Local, flit);
                    if let Some(san) = self.sanitizer.as_deref_mut() {
                        san.observe_push(ti, plane, Port::Local);
                    }
                }
            }
        }

        // Phase 2: snapshot downstream free space. free[tile][plane][port]
        // is the space in that router's *input* queue.
        let mut free = vec![[[0usize; Port::COUNT]; Plane::COUNT]; n];
        for (ti, r) in self.routers.iter().enumerate() {
            for plane in Plane::ALL {
                for port in Port::ALL {
                    free[ti][plane.index()][port.index()] = r.free_slots(plane, port);
                }
            }
        }
        // Local "downstream" capacity: ejection queue slots (in packets; a
        // partial packet may always continue, handled by treating a
        // non-empty reassembly as free).
        let mut local_free = vec![[0usize; Plane::COUNT]; n];
        #[allow(clippy::needless_range_loop)] // ti also indexes self.endpoints
        for ti in 0..n {
            for plane in Plane::ALL {
                let ep = &self.endpoints[ti][plane.index()];
                local_free[ti][plane.index()] =
                    self.config.eject_queue_depth.saturating_sub(ep.eject.len());
            }
        }

        // Phase 3: arbitration per router; collect transfers.
        let mut all_transfers: Vec<(usize, Transfer)> = Vec::new();
        for ti in 0..n {
            let coord = self.routers[ti].coord();
            let transfers = {
                let free_ref = &mut free;
                let local_ref = &mut local_free;
                self.routers[ti].select(|plane, out| {
                    if out == Port::Local {
                        local_ref[ti][plane.index()]
                    } else {
                        match out.step(coord) {
                            Some(nc) if (nc.x as usize) < cols && (nc.y as usize) < rows => {
                                let ni = nc.y as usize * cols + nc.x as usize;
                                free_ref[ni][plane.index()][out.opposite().index()]
                            }
                            _ => 0, // edge of the mesh: nothing downstream
                        }
                    }
                })
            };
            // Reserve the space consumed by the selected transfers so other
            // routers (and later ports of this one) see updated capacity.
            for t in &transfers {
                if t.out_port == Port::Local {
                    // A slot is only consumed when the tail completes a
                    // packet; approximating per-flit is safe because depth
                    // is in packets and only tails commit.
                    if t.flit.kind.is_tail() {
                        local_free[ti][t.plane.index()] =
                            local_free[ti][t.plane.index()].saturating_sub(1);
                    }
                } else if let Some(nc) = t.out_port.step(self.routers[ti].coord()) {
                    let ni = nc.y as usize * cols + nc.x as usize;
                    let slot = &mut free[ni][t.plane.index()][t.out_port.opposite().index()];
                    *slot = slot.saturating_sub(1);
                }
            }
            if let Some(san) = self.sanitizer.as_deref_mut() {
                for t in &transfers {
                    san.observe_pop(ti, t.plane, t.in_port);
                }
            }
            all_transfers.extend(transfers.into_iter().map(|t| (ti, t)));
        }

        // Phase 4: commit — link traversal and local ejection.
        for (ti, t) in all_transfers {
            if t.out_port == Port::Local {
                let plane = t.plane;
                let is_tail = t.flit.kind.is_tail();
                let inject_cycle = t.flit.inject_cycle;
                let ep = &mut self.endpoints[ti][plane.index()];
                let (completed, violation) = ep.reasm.push(t.flit);
                if let Some(v) = violation {
                    let coord = self.routers[ti].coord();
                    match self.sanitizer.as_deref_mut() {
                        Some(san) if san.config.wormhole => san.record(Diagnostic::error(
                            codes::WORMHOLE_INTERLEAVING,
                            format!("tile({},{}) plane {plane}", coord.x, coord.y),
                            match v {
                                ReasmViolation::HeadInterleaved => {
                                    "wormhole interleaving: a head flit arrived while \
                                     another packet was still reassembling"
                                }
                                ReasmViolation::StrayFlit => {
                                    "wormhole interleaving: a body or tail flit arrived \
                                     with no packet under reassembly"
                                }
                            },
                        )),
                        _ => debug_assert!(
                            false,
                            "wormhole violation {v:?} at ({},{}) plane {plane}",
                            coord.x, coord.y
                        ),
                    }
                }
                if let Some(mut pkt) = completed {
                    debug_assert!(is_tail);
                    if let Some(san) = self.sanitizer.as_deref_mut() {
                        san.delivered[plane.index()] += pkt.flit_len() as u64;
                    }
                    let latency = (self.cycle + 1).saturating_sub(inject_cycle);
                    self.stats.plane_mut(plane).record_delivery(latency);
                    let dest = self.routers[ti].coord();
                    let frame = pkt.frame();
                    self.tracer.emit(self.cycle + 1, trace_coord(dest), || {
                        TraceEvent::NocPacketEject {
                            plane: plane.index(),
                            latency,
                            frame,
                        }
                    });
                    if self.faults.is_some() {
                        self.fault_corrupt(dest, &mut pkt);
                    }
                    let ep = &mut self.endpoints[ti][plane.index()];
                    ep.eject.push_back(pkt);
                }
            } else {
                let coord = self.routers[ti].coord();
                let nc = t.out_port.step(coord).expect("transfer stays in mesh");
                let ni = self.tile_index(nc);
                self.stats.plane_mut(t.plane).flit_hops += 1;
                self.routers[ni].push_input(t.plane, t.out_port.opposite(), t.flit);
                if let Some(san) = self.sanitizer.as_deref_mut() {
                    san.observe_push(ni, t.plane, t.out_port.opposite());
                }
            }
        }

        self.cycle += 1;
        self.stats.cycles = self.cycle;
        if self.sanitizer.is_some() {
            self.sanitize_audit();
        }
    }

    /// Audits the conservation invariants against the live state; any
    /// divergence becomes a deduplicated diagnostic. Runs after every
    /// tick and at fast-forward boundaries when the sanitizer is on.
    fn sanitize_audit(&mut self) {
        let Some(mut san) = self.sanitizer.take() else {
            return;
        };
        if san.config.credits {
            for (ti, r) in self.routers.iter().enumerate() {
                let coord = r.coord();
                for plane in Plane::ALL {
                    for port in Port::ALL {
                        let shadow = san.shadow_occupancy(ti, plane, port);
                        let actual = r.occupancy(plane, port) as u64;
                        if shadow != actual {
                            san.record(
                                Diagnostic::error(
                                    codes::CREDIT_CONSERVATION,
                                    format!(
                                        "router({},{}) plane {plane} port {port}",
                                        coord.x, coord.y
                                    ),
                                    "credit conservation violated: shadow link occupancy \
                                     diverges from the router queue",
                                )
                                .with_hint(
                                    "a credit was lost or duplicated on this link; every \
                                     queue push/pop must move exactly one credit",
                                ),
                            );
                        }
                    }
                }
            }
        }
        if san.config.flits {
            for plane in Plane::ALL {
                let pi = plane.index();
                let mut in_flight = 0u64;
                for (ti, r) in self.routers.iter().enumerate() {
                    in_flight += self.endpoints[ti][pi].inject.len() as u64;
                    in_flight += self.endpoints[ti][pi].reasm.pending_flits() as u64;
                    for port in Port::ALL {
                        in_flight += r.occupancy(plane, port) as u64;
                    }
                }
                // Packets held by a delay fault were counted at injection
                // but sit outside the queues; they are still in flight.
                if let Some(f) = self.faults.as_deref() {
                    in_flight += f
                        .delayed
                        .iter()
                        .filter(|d| d.plane.index() == pi)
                        .map(|d| d.flits.len() as u64)
                        .sum::<u64>();
                }
                if san.injected[pi] != san.delivered[pi] + in_flight {
                    san.record(
                        Diagnostic::error(
                            codes::FLIT_CONSERVATION,
                            format!("plane {plane}"),
                            "flit conservation violated: injected != delivered + in-flight",
                        )
                        .with_hint(
                            "a flit was dropped or fabricated between injection and \
                             ejection; check queue commits and reassembly",
                        ),
                    );
                }
            }
        }
        self.sanitizer = Some(san);
    }

    /// Ticks until the network drains or `max_cycles` elapse; returns the
    /// number of cycles executed.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycle;
        while !self.is_idle() && self.cycle - start < max_cycles {
            self.tick();
        }
        self.cycle - start
    }

    /// Event-driven progress report: the mesh is [`Progress::Active`]
    /// while any flit is queued or in flight, or while delivered packets
    /// sit unejected (their tiles will drain them on the next tick);
    /// otherwise it is quiescent. A router moves flits every cycle it has
    /// any, so the mesh never blocks on an internal latency — except for
    /// packets held by a delay fault, whose absolute release cycle is
    /// reported as [`Progress::Blocked`] so fast-forward stays exact.
    pub fn progress(&self) -> Progress {
        if !self.traffic_idle() || self.undelivered_total() > 0 {
            return Progress::Active;
        }
        if let Some(f) = self.faults.as_deref() {
            if let Some(release) = f.delayed.iter().map(|d| d.release).min() {
                return if release <= self.cycle {
                    Progress::Active
                } else {
                    Progress::Blocked { until: release }
                };
            }
        }
        Progress::Quiescent
    }

    /// Bulk-advances the clock over `delta` traffic-free cycles.
    pub fn advance(&mut self, delta: u64) {
        debug_assert!(
            self.traffic_idle(),
            "mesh fast-forward with traffic in flight would skip flit hops"
        );
        debug_assert!(
            self.faults
                .as_deref()
                .and_then(|f| f.delayed.iter().map(|d| d.release).min())
                .is_none_or(|release| self.cycle + delta <= release),
            "mesh fast-forward past a delayed packet's release cycle"
        );
        self.cycle += delta;
        self.stats.cycles = self.cycle;
        // Fast-forward boundary: the span was traffic-free, so no new
        // violation can arise inside it, but auditing here keeps the
        // event-driven verdict aligned with the naive engine's
        // every-cycle audits.
        if self.sanitizer.is_some() {
            self.sanitize_audit();
        }
    }
}

impl Schedulable for Mesh {
    type Fabric = ();

    fn tick(&mut self, _fabric: &mut ()) -> Progress {
        Mesh::tick(self);
        Mesh::progress(self)
    }

    fn progress(&self, _now: u64) -> Progress {
        Mesh::progress(self)
    }

    fn advance(&mut self, delta: u64) {
        Mesh::advance(self, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgKind;

    fn mesh3x3() -> Mesh {
        Mesh::new(MeshConfig::new(3, 3)).expect("valid mesh")
    }

    fn pkt(src: (u8, u8), dst: (u8, u8), words: Vec<u64>) -> Packet {
        Packet::new(
            Coord::new(src.0, src.1),
            Coord::new(dst.0, dst.1),
            Plane::DmaRsp,
            MsgKind::DmaData,
            words,
        )
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(Mesh::new(MeshConfig::new(0, 3)).is_err());
        assert!(Mesh::new(MeshConfig::new(3, 0)).is_err());
        assert!(Mesh::new(MeshConfig::new(300, 1)).is_err());
    }

    #[test]
    fn delivers_single_packet() {
        let mut m = mesh3x3();
        m.inject(pkt((0, 0), (2, 2), vec![42])).unwrap();
        m.run_until_idle(1000);
        let got = m.eject(Coord::new(2, 2), Plane::DmaRsp).expect("delivered");
        assert_eq!(got.payload(), &[42]);
        assert_eq!(m.stats().plane(Plane::DmaRsp).packets_delivered, 1);
    }

    #[test]
    fn self_delivery_works() {
        let mut m = mesh3x3();
        m.inject(pkt((1, 1), (1, 1), vec![7])).unwrap();
        m.run_until_idle(100);
        let got = m.eject(Coord::new(1, 1), Plane::DmaRsp).expect("delivered");
        assert_eq!(got.payload(), &[7]);
    }

    #[test]
    fn latency_matches_hops_plus_serialization() {
        let mut m = mesh3x3();
        // 1-flit packet over 4 hops: inject->local (1) + 4 link hops + eject.
        m.inject(pkt((0, 0), (2, 2), vec![])).unwrap();
        m.run_until_idle(100);
        let lat = m.stats().plane(Plane::DmaRsp).max_latency;
        // Lower bound: manhattan distance + 2 (inject + eject stage).
        assert!(lat >= 4, "latency {lat} too small");
        assert!(lat <= 12, "latency {lat} too large for an idle mesh");
    }

    #[test]
    fn preserves_payload_order_for_long_packets() {
        let mut m = mesh3x3();
        let words: Vec<u64> = (0..100).collect();
        m.inject(pkt((0, 1), (2, 1), words.clone())).unwrap();
        m.run_until_idle(10_000);
        let got = m.eject(Coord::new(2, 1), Plane::DmaRsp).expect("delivered");
        assert_eq!(got.payload(), words.as_slice());
    }

    #[test]
    fn planes_are_independent() {
        let mut m = mesh3x3();
        let mut a = pkt((0, 0), (2, 0), vec![1]);
        a = Packet::new(
            a.src(),
            a.dest(),
            Plane::DmaReq,
            MsgKind::DmaLoadReq,
            vec![1],
        );
        let b = pkt((0, 0), (2, 0), vec![2]);
        m.inject(a).unwrap();
        m.inject(b).unwrap();
        m.run_until_idle(1000);
        assert_eq!(m.delivered_len(Coord::new(2, 0), Plane::DmaReq), 1);
        assert_eq!(m.delivered_len(Coord::new(2, 0), Plane::DmaRsp), 1);
    }

    #[test]
    fn many_to_one_all_delivered() {
        let mut m = mesh3x3();
        let dst = (1u8, 1u8);
        let mut expected = 0;
        for x in 0..3u8 {
            for y in 0..3u8 {
                if (x, y) == dst {
                    continue;
                }
                m.inject(pkt((x, y), dst, vec![x as u64, y as u64]))
                    .unwrap();
                expected += 1;
            }
        }
        m.run_until_idle(10_000);
        let mut got = 0;
        while m.eject(Coord::new(1, 1), Plane::DmaRsp).is_some() {
            got += 1;
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn injection_backpressure() {
        let mut cfg = MeshConfig::new(2, 2);
        cfg.inject_queue_depth = 4;
        let mut m = Mesh::new(cfg).unwrap();
        // 5-flit packet cannot fit a 4-flit queue.
        let err = m.inject(pkt((0, 0), (1, 1), vec![0; 4])).unwrap_err();
        assert!(matches!(err, NocError::InjectQueueFull { .. }));
        // A 3-flit packet fits.
        m.inject(pkt((0, 0), (1, 1), vec![0; 2])).unwrap();
    }

    #[test]
    fn ejection_backpressure_stalls_but_never_drops() {
        let mut cfg = MeshConfig::new(2, 1);
        cfg.eject_queue_depth = 1;
        let mut m = Mesh::new(cfg).unwrap();
        for i in 0..4 {
            m.inject(pkt((0, 0), (1, 0), vec![i])).unwrap();
        }
        // Tick a while without draining: only 1 packet may sit ejected.
        for _ in 0..200 {
            m.tick();
        }
        assert_eq!(m.delivered_len(Coord::new(1, 0), Plane::DmaRsp), 1);
        // Drain one at a time; all four packets arrive in order.
        let mut seen = Vec::new();
        let mut guard = 0;
        while seen.len() < 4 {
            if let Some(p) = m.eject(Coord::new(1, 0), Plane::DmaRsp) {
                seen.push(p.payload()[0]);
            }
            m.tick();
            guard += 1;
            assert!(guard < 1000, "packets lost under ejection back-pressure");
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn wormhole_no_payload_interleaving_under_contention() {
        let mut m = mesh3x3();
        // Two long packets from different sources to the same destination
        // must arrive with intact payloads.
        let a: Vec<u64> = (0..50).map(|i| 1000 + i).collect();
        let b: Vec<u64> = (0..50).map(|i| 2000 + i).collect();
        m.inject(pkt((0, 0), (2, 2), a.clone())).unwrap();
        m.inject(pkt((0, 2), (2, 2), b.clone())).unwrap();
        m.run_until_idle(10_000);
        let mut payloads = Vec::new();
        while let Some(p) = m.eject(Coord::new(2, 2), Plane::DmaRsp) {
            payloads.push(p.into_payload());
        }
        payloads.sort();
        assert_eq!(payloads, vec![a, b]);
    }

    #[test]
    fn stats_count_hops() {
        let mut m = mesh3x3();
        m.inject(pkt((0, 0), (2, 0), vec![])).unwrap(); // 2 hops, 1 flit
        m.run_until_idle(100);
        assert_eq!(m.stats().plane(Plane::DmaRsp).flit_hops, 2);
    }

    #[test]
    fn tracer_sees_inject_and_eject() {
        use esp4ml_trace::{TraceEvent, Tracer};
        let mut m = mesh3x3();
        let tracer = Tracer::ring_buffer_with_capacity(64);
        m.set_tracer(tracer.clone());
        m.inject(pkt((0, 0), (2, 1), vec![1, 2])).unwrap();
        m.run_until_idle(1000);
        let events = tracer.drain();
        let injects: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::NocPacketInject { .. }))
            .collect();
        let ejects: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::NocPacketEject { .. }))
            .collect();
        assert_eq!(injects.len(), 1);
        assert_eq!(ejects.len(), 1);
        assert_eq!(injects[0].source, esp4ml_trace::TileCoord::new(0, 0));
        assert_eq!(ejects[0].source, esp4ml_trace::TileCoord::new(2, 1));
        // The eject event's latency matches the stats the mesh recorded.
        if let TraceEvent::NocPacketEject { plane, latency, .. } = ejects[0].event {
            assert_eq!(plane, Plane::DmaRsp.index());
            assert_eq!(latency, m.stats().plane(Plane::DmaRsp).max_latency);
            assert!(ejects[0].cycle >= injects[0].cycle + latency.min(ejects[0].cycle));
        }
    }

    #[test]
    fn min_latency_tracked_on_delivery() {
        let mut m = mesh3x3();
        m.inject(pkt((0, 0), (2, 2), vec![])).unwrap(); // 4 hops
        m.inject(pkt((1, 1), (1, 2), vec![])).unwrap(); // 1 hop
        m.run_until_idle(1000);
        let ps = m.stats().plane(Plane::DmaRsp);
        assert_eq!(ps.packets_delivered, 2);
        assert!(ps.min_latency > 0);
        assert!(ps.min_latency < ps.max_latency);
    }

    #[test]
    fn is_idle_reflects_traffic() {
        let mut m = mesh3x3();
        assert!(m.is_idle());
        m.inject(pkt((0, 0), (2, 2), vec![1, 2, 3])).unwrap();
        assert!(!m.is_idle());
        m.run_until_idle(1000);
        assert!(m.is_idle());
    }
}

#[cfg(test)]
mod traffic_tests {
    use super::*;
    use crate::MsgKind;

    #[test]
    fn traffic_matrix_tracks_route() {
        let mut m = Mesh::new(MeshConfig::new(3, 3)).unwrap();
        // XY route (0,0) -> (2,0): routers (0,0) and (1,0) forward.
        m.inject(Packet::new(
            Coord::new(0, 0),
            Coord::new(2, 0),
            Plane::DmaRsp,
            MsgKind::DmaData,
            vec![1, 2],
        ))
        .unwrap();
        m.run_until_idle(100);
        let t = m.traffic_matrix();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0][0], 3); // 3 flits forwarded east
        assert_eq!(t[0][1], 3);
        assert_eq!(t[0][2], 0); // destination only ejects locally
        assert_eq!(t[1][0], 0); // off-route routers untouched
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::MsgKind;
    use esp4ml_fault::{FaultKind, FaultSpec};

    fn dma_pkt(src: (u8, u8), dst: (u8, u8), words: Vec<u64>) -> Packet {
        Packet::new(
            Coord::new(src.0, src.1),
            Coord::new(dst.0, dst.1),
            Plane::DmaRsp,
            MsgKind::DmaData,
            words,
        )
    }

    fn delay_spec(from_packet: u64, count: u64, extra_cycles: u64) -> FaultSpec {
        FaultSpec::new(FaultKind::NocDelay {
            plane: Plane::DmaRsp.index(),
            from_packet,
            count,
            extra_cycles,
        })
    }

    #[test]
    fn non_noc_faults_are_not_installed() {
        let mut m = Mesh::new(MeshConfig::new(3, 3)).unwrap();
        let spec = FaultSpec::permanent_hang("nv0");
        assert!(!m.install_fault(&spec));
        assert_eq!(m.faults_fired(), 0);
    }

    #[test]
    fn delay_fault_adds_exactly_extra_cycles() {
        let latency_with_extra = |extra: Option<u64>| {
            let mut m = Mesh::new(MeshConfig::new(3, 3)).unwrap();
            if let Some(extra) = extra {
                assert!(m.install_fault(&delay_spec(0, 1, extra)));
            }
            m.inject(dma_pkt((0, 0), (2, 2), vec![1, 2, 3])).unwrap();
            m.run_until_idle(10_000);
            assert_eq!(m.stats().plane(Plane::DmaRsp).packets_delivered, 1);
            m.stats().plane(Plane::DmaRsp).max_latency
        };
        let base = latency_with_extra(None);
        let delayed = latency_with_extra(Some(75));
        assert_eq!(delayed, base + 75, "delay must add exactly extra_cycles");
    }

    #[test]
    fn delay_fault_counts_as_fired_and_traced() {
        use esp4ml_trace::Tracer;
        let mut m = Mesh::new(MeshConfig::new(3, 3)).unwrap();
        let tracer = Tracer::ring_buffer_with_capacity(64);
        m.set_tracer(tracer.clone());
        assert!(m.install_fault(&delay_spec(0, 1, 20)));
        m.inject(dma_pkt((0, 0), (1, 1), vec![9])).unwrap();
        m.run_until_idle(10_000);
        assert_eq!(m.faults_fired(), 1);
        let events = tracer.drain();
        assert!(events.iter().any(|e| matches!(
            &e.event,
            TraceEvent::FaultInjected {
                fault: "noc_delay",
                ..
            }
        )));
    }

    #[test]
    fn delayed_link_preserves_packet_order() {
        let mut m = Mesh::new(MeshConfig::new(3, 3)).unwrap();
        // Delay only the first packet; the second must still arrive after it.
        assert!(m.install_fault(&delay_spec(0, 1, 200)));
        m.inject(dma_pkt((0, 0), (2, 0), vec![0, 111])).unwrap();
        m.inject(dma_pkt((0, 0), (2, 0), vec![0, 222])).unwrap();
        m.run_until_idle(10_000);
        let first = m.eject(Coord::new(2, 0), Plane::DmaRsp).expect("first");
        let second = m.eject(Coord::new(2, 0), Plane::DmaRsp).expect("second");
        assert_eq!(first.payload(), &[0, 111]);
        assert_eq!(second.payload(), &[0, 222]);
    }

    #[test]
    fn delayed_packet_reports_blocked_progress() {
        let mut m = Mesh::new(MeshConfig::new(3, 3)).unwrap();
        assert!(m.install_fault(&delay_spec(0, 1, 100)));
        m.inject(dma_pkt((0, 0), (2, 2), vec![5])).unwrap();
        // The packet is held outside the queues: traffic is idle but the
        // mesh is not, and progress points at the release cycle.
        assert!(!m.is_idle());
        assert_eq!(m.progress(), Progress::Blocked { until: 100 });
        // Fast-forwarding to the release cycle then ticking delivers it.
        m.advance(100);
        m.run_until_idle(10_000);
        assert!(m.is_idle());
        assert_eq!(m.stats().plane(Plane::DmaRsp).packets_delivered, 1);
    }

    #[test]
    fn sanitizer_stays_clean_across_delay_fault() {
        let mut m = Mesh::new(MeshConfig::new(3, 3)).unwrap();
        m.enable_sanitizer(SanitizerConfig::noc_only());
        assert!(m.install_fault(&delay_spec(0, 1, 40)));
        m.inject(dma_pkt((0, 0), (2, 2), vec![1, 2, 3, 4])).unwrap();
        // Audit while the packet is still held: its flits are in flight.
        m.tick();
        m.run_until_idle(10_000);
        let report = m.sanitizer_report().expect("sanitizer installed");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn corrupt_fault_flips_exactly_one_data_word() {
        let mask = 0x0f0f;
        let mut m = Mesh::new(MeshConfig::new(3, 3)).unwrap();
        assert!(m.install_fault(&FaultSpec::new(FaultKind::NocCorrupt {
            plane: Plane::DmaRsp.index(),
            from_packet: 0,
            count: 1,
            xor_mask: mask,
        })));
        m.inject(dma_pkt((0, 0), (2, 1), vec![7, 10, 20])).unwrap();
        m.run_until_idle(10_000);
        m.inject(dma_pkt((0, 0), (2, 1), vec![7, 30, 40])).unwrap();
        m.run_until_idle(10_000);
        let hit = m.eject(Coord::new(2, 1), Plane::DmaRsp).expect("first");
        let clean = m.eject(Coord::new(2, 1), Plane::DmaRsp).expect("second");
        // Only the last data word of the first matching packet is flipped;
        // the offset header and every other packet are untouched.
        assert_eq!(hit.payload(), &[7, 10, 20 ^ mask]);
        assert_eq!(clean.payload(), &[7, 30, 40]);
        assert_eq!(m.faults_fired(), 1);
    }

    #[test]
    fn corrupt_fault_skips_headers_and_control_packets() {
        let mut m = Mesh::new(MeshConfig::new(3, 3)).unwrap();
        assert!(m.install_fault(&FaultSpec::new(FaultKind::NocCorrupt {
            plane: Plane::IoIrq.index(),
            from_packet: 0,
            count: u64::MAX,
            xor_mask: 0xffff,
        })));
        // IRQs carry no corruptible data words: the fault never fires.
        m.inject(Packet::new(
            Coord::new(0, 0),
            Coord::new(2, 0),
            Plane::IoIrq,
            MsgKind::Irq,
            vec![],
        ))
        .unwrap();
        m.run_until_idle(10_000);
        assert_eq!(m.faults_fired(), 0);
        assert!(m.eject(Coord::new(2, 0), Plane::IoIrq).is_some());
    }

    #[test]
    fn fault_free_runs_are_untouched_by_armed_other_plane() {
        // A fault armed on a different plane never fires and never delays.
        let run = |armed: bool| {
            let mut m = Mesh::new(MeshConfig::new(3, 3)).unwrap();
            if armed {
                assert!(m.install_fault(&FaultSpec::new(FaultKind::NocDelay {
                    plane: Plane::DmaReq.index(),
                    from_packet: 0,
                    count: u64::MAX,
                    extra_cycles: 500,
                })));
            }
            m.inject(dma_pkt((0, 0), (2, 2), vec![1, 2, 3])).unwrap();
            m.run_until_idle(10_000);
            (
                m.cycle(),
                m.stats().plane(Plane::DmaRsp).max_latency,
                m.faults_fired(),
            )
        };
        let (c0, l0, f0) = run(false);
        let (c1, l1, f1) = run(true);
        assert_eq!((c0, l0), (c1, l1));
        assert_eq!((f0, f1), (0, 0));
    }
}

#[cfg(test)]
mod sanitizer_tests {
    use super::*;
    use crate::MsgKind;
    use esp4ml_check::codes;

    fn sanitized_mesh() -> Mesh {
        let mut m = Mesh::new(MeshConfig::new(3, 3)).expect("valid mesh");
        m.enable_sanitizer(SanitizerConfig::noc_only());
        m
    }

    fn dma_pkt(src: (u8, u8), dst: (u8, u8), words: Vec<u64>) -> Packet {
        Packet::new(
            Coord::new(src.0, src.1),
            Coord::new(dst.0, dst.1),
            Plane::DmaRsp,
            MsgKind::DmaData,
            words,
        )
    }

    #[test]
    fn clean_traffic_yields_clean_verdict() {
        let mut m = sanitized_mesh();
        for y in 0..3u8 {
            m.inject(dma_pkt((0, y), (2, 2 - y), vec![1, 2, 3, 4]))
                .unwrap();
        }
        m.run_until_idle(1_000);
        let report = m.sanitizer_report().expect("sanitizer installed");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn leaked_credit_is_caught() {
        let mut m = sanitized_mesh();
        m.inject(dma_pkt((0, 0), (2, 2), vec![7])).unwrap();
        m.fault_leak_credit(Coord::new(1, 0), Plane::DmaRsp, Port::West);
        m.run_until_idle(1_000);
        let report = m.sanitizer_report().expect("sanitizer installed");
        assert!(report.has_errors());
        let diag = &report.diagnostics[0];
        assert_eq!(diag.code, codes::CREDIT_CONSERVATION);
        assert!(diag.location.contains("router(1,0)"), "{diag}");
        // The verdict is deduplicated: one finding per leaked link, no
        // matter how many cycles the audit re-observes it.
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.code == codes::CREDIT_CONSERVATION)
                .count(),
            1
        );
    }

    #[test]
    fn phantom_flit_breaks_conservation() {
        let mut m = sanitized_mesh();
        m.inject(dma_pkt((0, 0), (1, 1), vec![1])).unwrap();
        m.fault_phantom_flit(Plane::DmaRsp);
        m.run_until_idle(1_000);
        let report = m.sanitizer_report().expect("sanitizer installed");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::FLIT_CONSERVATION && d.location.contains("dma-rsp")));
    }

    #[test]
    fn plane_misassignment_is_flagged_at_inject() {
        let mut m = sanitized_mesh();
        // An IRQ does not belong on the DMA response plane.
        m.inject(Packet::new(
            Coord::new(0, 0),
            Coord::new(2, 0),
            Plane::DmaRsp,
            MsgKind::Irq,
            vec![],
        ))
        .unwrap();
        m.run_until_idle(1_000);
        let report = m.sanitizer_report().expect("sanitizer installed");
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.code == codes::PLANE_MISASSIGNMENT)
            .expect("plane misassignment flagged");
        assert!(diag.message.contains("io-irq"), "{diag}");
        // The mis-planed packet itself is otherwise conserved.
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::FLIT_CONSERVATION));
    }

    #[test]
    fn verdict_is_identical_across_tick_and_advance_audits() {
        // Same faulty scenario, audited densely (extra ticks) vs
        // sparsely (advance over the idle tail): byte-identical reports.
        let run = |idle_ticks: bool| {
            let mut m = sanitized_mesh();
            m.inject(dma_pkt((0, 0), (2, 2), vec![7])).unwrap();
            m.fault_leak_credit(Coord::new(1, 0), Plane::DmaRsp, Port::West);
            m.run_until_idle(1_000);
            if idle_ticks {
                for _ in 0..50 {
                    m.tick();
                }
            } else {
                m.advance(50);
            }
            serde_json::to_string(&m.sanitizer_report().expect("report")).unwrap()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn without_sanitizer_no_report() {
        let m = Mesh::new(MeshConfig::new(2, 2)).unwrap();
        assert!(!m.sanitizer_enabled());
        assert!(m.sanitizer_report().is_none());
    }
}
