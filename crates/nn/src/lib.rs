//! Minimal neural-network substrate: the Keras analog of the ESP4ML flow.
//!
//! The paper trains its two ML models (an MLP digit classifier and a
//! denoising autoencoder) in Keras and hands them to HLS4ML as a JSON
//! topology plus an HDF5 weight file. This crate reproduces that front end
//! in pure Rust:
//!
//! * [`Matrix`] — a small row-major `f32` matrix with the handful of BLAS
//!   kernels dense training needs.
//! * [`Sequential`] — a feed-forward model built from [`LayerSpec`]s
//!   (Dense with activation, Dropout, GaussianNoise — exactly the layers
//!   the paper's two networks use).
//! * [`Trainer`] — mini-batch SGD/Adam with cross-entropy or MSE loss.
//! * [`ModelFile`] — JSON topology + little-endian binary weights (the
//!   `model.json` / `model.h5` analog consumed by the HLS4ML compiler
//!   crate).
//!
//! # Example
//!
//! ```
//! use esp4ml_nn::{Sequential, LayerSpec, Activation, Matrix};
//!
//! let mut model = Sequential::new(4);
//! model.push(LayerSpec::dense(8, Activation::Relu));
//! model.push(LayerSpec::dense(3, Activation::Softmax));
//! let x = Matrix::zeros(1, 4);
//! let y = model.forward(&x);
//! assert_eq!(y.cols(), 3);
//! let sum: f32 = y.row(0).iter().sum();
//! assert!((sum - 1.0).abs() < 1e-5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod data;
mod layer;
mod loss;
mod matrix;
mod metrics;
mod model;
mod optimizer;
mod serialize;
mod train;

pub use activation::Activation;
pub use data::Dataset;
pub use layer::{DenseLayer, LayerSpec};
pub use loss::Loss;
pub use matrix::Matrix;
pub use metrics::ConfusionMatrix;
pub use model::Sequential;
pub use optimizer::{Optimizer, OptimizerKind};
pub use serialize::{ModelFile, SerializeError};
pub use train::{accuracy, reconstruction_error, TrainConfig, TrainReport, Trainer};
