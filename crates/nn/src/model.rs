//! Sequential feed-forward models.

use crate::layer::NoiseLayer;
use crate::{Activation, DenseLayer, LayerSpec, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything recorded during a training-mode forward pass.
#[derive(Debug, Clone)]
pub(crate) struct TrainTrace {
    /// Input to dense layer `i` (after any preceding noise layer).
    pub(crate) inputs: Vec<Matrix>,
    /// Post-activation output of dense layer `i` (before following noise).
    pub(crate) outputs: Vec<Matrix>,
    /// Final network output.
    pub(crate) output: Matrix,
    /// Per noise-spec mask, in spec order (`Some` only for dropout).
    pub(crate) masks: Vec<Option<Matrix>>,
}

/// A Keras-style sequential model.
///
/// Layers are appended with [`Sequential::push`]; dense weights are
/// materialized immediately with Glorot initialization from the model's
/// deterministic seed, so a freshly built model is ready for both
/// [`Sequential::forward`] and training.
///
/// Dropout and Gaussian-noise layers are active only during training, as in
/// Keras; inference skips them.
#[derive(Debug, Clone)]
pub struct Sequential {
    input_dim: usize,
    specs: Vec<LayerSpec>,
    pub(crate) dense: Vec<DenseLayer>,
    /// Index into `dense` for each spec that is trainable.
    rng: StdRng,
}

impl Sequential {
    /// Creates an empty model with the given input dimension and the
    /// default seed (42).
    pub fn new(input_dim: usize) -> Self {
        Sequential::with_seed(input_dim, 42)
    }

    /// Creates an empty model with an explicit weight-initialization seed.
    pub fn with_seed(input_dim: usize, seed: u64) -> Self {
        Sequential {
            input_dim,
            specs: Vec::new(),
            dense: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Appends a layer, materializing weights for dense layers.
    ///
    /// # Panics
    ///
    /// Panics if a dense layer has zero units or a dropout rate is outside
    /// `[0, 1)`.
    pub fn push(&mut self, spec: LayerSpec) {
        match spec {
            LayerSpec::Dense { units, activation } => {
                assert!(units > 0, "dense layer needs at least one unit");
                let n_in = self.output_dim();
                self.dense
                    .push(DenseLayer::init_for(n_in, units, activation, &mut self.rng));
            }
            LayerSpec::Dropout { rate } => {
                assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
            }
            LayerSpec::GaussianNoise { stddev } => {
                assert!(stddev >= 0.0, "noise stddev must be non-negative");
            }
        }
        self.specs.push(spec);
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Current output dimension (input dimension if no dense layer yet).
    pub fn output_dim(&self) -> usize {
        self.dense.last().map_or(self.input_dim, |l| l.n_out())
    }

    /// The layer specifications in order.
    pub fn specs(&self) -> &[LayerSpec] {
        &self.specs
    }

    /// The materialized dense layers in order.
    pub fn dense_layers(&self) -> &[DenseLayer] {
        &self.dense
    }

    /// Mutable access to the dense layers (used by the trainer and by
    /// weight loading).
    pub fn dense_layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.dense
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.dense.iter().map(DenseLayer::param_count).sum()
    }

    /// The dimensions of the network as `[input, hidden..., output]` — the
    /// "1024x256x128x64x32x10" notation of the paper.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.input_dim];
        dims.extend(self.dense.iter().map(|l| l.n_out()));
        dims
    }

    /// Inference forward pass on a batch (`[batch x input_dim]`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input_dim, "input dimension mismatch");
        let mut a = x.clone();
        for layer in &self.dense {
            a = layer.forward(&a);
        }
        a
    }

    /// Predicted class index per row (argmax over the output).
    pub fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        let y = self.forward(x);
        (0..y.rows())
            .map(|r| {
                y.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty output")
            })
            .collect()
    }

    /// Training-mode forward pass, recording everything backprop needs.
    pub(crate) fn forward_training(&self, x: &Matrix, rng: &mut StdRng) -> TrainTrace {
        let mut trace = TrainTrace {
            inputs: Vec::with_capacity(self.dense.len()),
            outputs: Vec::with_capacity(self.dense.len()),
            output: Matrix::zeros(0, 0),
            masks: Vec::new(),
        };
        let mut a = x.clone();
        let mut dense_idx = 0;
        for spec in &self.specs {
            match *spec {
                LayerSpec::Dense { .. } => {
                    trace.inputs.push(a.clone());
                    a = self.dense[dense_idx].forward(&a);
                    trace.outputs.push(a.clone());
                    dense_idx += 1;
                }
                LayerSpec::Dropout { rate } => {
                    let mask = NoiseLayer::Dropout { rate }.apply_training(&mut a, rng);
                    trace.masks.push(mask);
                }
                LayerSpec::GaussianNoise { stddev } => {
                    NoiseLayer::Gaussian { stddev }.apply_training(&mut a, rng);
                    trace.masks.push(None);
                }
            }
        }
        trace.output = a;
        trace
    }

    /// Builds the paper's MLP classifier: 1024×256×128×64×32×10 with ReLU
    /// hidden layers, dropout 0.2, softmax output.
    pub fn svhn_classifier() -> Self {
        let mut m = Sequential::new(1024);
        for units in [256, 128, 64, 32] {
            m.push(LayerSpec::dense(units, Activation::Relu));
            m.push(LayerSpec::Dropout { rate: 0.2 });
        }
        m.push(LayerSpec::dense(10, Activation::Softmax));
        m
    }

    /// Builds the paper's denoising autoencoder: 1024×256×128×1024 with a
    /// compression factor of 8 at the bottleneck, Gaussian noise at the
    /// input during training, sigmoid reconstruction output.
    pub fn svhn_denoiser() -> Self {
        let mut m = Sequential::new(1024);
        m.push(LayerSpec::GaussianNoise { stddev: 0.1 });
        m.push(LayerSpec::dense(256, Activation::Relu));
        m.push(LayerSpec::dense(128, Activation::Relu));
        m.push(LayerSpec::dense(1024, Activation::Sigmoid));
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_track_topology() {
        let m = Sequential::svhn_classifier();
        assert_eq!(m.dims(), vec![1024, 256, 128, 64, 32, 10]);
        assert_eq!(m.output_dim(), 10);
        // 1024*256+256 + 256*128+128 + 128*64+64 + 64*32+32 + 32*10+10
        assert_eq!(m.param_count(), 305_472 + 490);
    }

    #[test]
    fn denoiser_dims_match_paper() {
        let m = Sequential::svhn_denoiser();
        assert_eq!(m.dims(), vec![1024, 256, 128, 1024]);
        // Compression factor at the bottleneck: 1024 / 128 = 8.
        assert_eq!(1024 / *m.dims().iter().min().expect("dims"), 8);
    }

    #[test]
    fn forward_is_deterministic_for_same_seed() {
        let build = || {
            let mut m = Sequential::with_seed(4, 7);
            m.push(LayerSpec::dense(8, Activation::Relu));
            m.push(LayerSpec::dense(2, Activation::Softmax));
            m
        };
        let x = Matrix::from_vec(1, 4, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(build().forward(&x), build().forward(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Sequential::with_seed(4, 1);
        a.push(LayerSpec::dense(4, Activation::Linear));
        let mut b = Sequential::with_seed(4, 2);
        b.push(LayerSpec::dense(4, Activation::Linear));
        assert_ne!(
            a.dense_layers()[0].weights.as_slice(),
            b.dense_layers()[0].weights.as_slice()
        );
    }

    #[test]
    fn predict_classes_argmax() {
        let mut m = Sequential::new(2);
        m.push(LayerSpec::dense(2, Activation::Linear));
        // Force identity-ish weights.
        let l = &mut m.dense_layers_mut()[0];
        l.weights = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        l.bias = vec![0.0, 0.0];
        let x = Matrix::from_vec(2, 2, vec![3.0, 1.0, 0.0, 2.0]);
        assert_eq!(m.predict_classes(&x), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn forward_rejects_wrong_width() {
        let mut m = Sequential::new(4);
        m.push(LayerSpec::dense(2, Activation::Linear));
        m.forward(&Matrix::zeros(1, 3));
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn invalid_dropout_rejected() {
        let mut m = Sequential::new(4);
        m.push(LayerSpec::Dropout { rate: 1.5 });
    }

    #[test]
    fn training_forward_returns_layer_inputs() {
        use rand::SeedableRng;
        let m = Sequential::svhn_denoiser();
        let x = Matrix::zeros(2, 1024);
        let mut rng = StdRng::seed_from_u64(0);
        let trace = m.forward_training(&x, &mut rng);
        assert_eq!(trace.inputs.len(), 3);
        assert_eq!(trace.outputs.len(), 3);
        assert_eq!(trace.output.cols(), 1024);
        assert_eq!(trace.masks.len(), 1); // the noise layer
                                          // Gaussian noise must have perturbed the first dense input.
        assert!(trace.inputs[0].norm() > 0.0);
    }
}
