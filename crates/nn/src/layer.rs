//! Layers of a sequential model.

use crate::{Activation, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Samples a standard-normal value via the Box–Muller transform (kept local
/// to avoid a `rand_distr` dependency).
pub(crate) fn sample_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Specification of one layer in a [`Sequential`](crate::Sequential) model,
/// before weights are materialized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully-connected layer with `units` outputs and an activation.
    Dense {
        /// Output dimension.
        units: usize,
        /// Activation applied after the affine transform.
        activation: Activation,
    },
    /// Dropout regularization (training only; identity at inference). The
    /// paper uses rate 0.2 on the classifier.
    Dropout {
        /// Fraction of activations zeroed during training.
        rate: f32,
    },
    /// Additive Gaussian noise (training only). The paper injects noise
    /// when training the denoising autoencoder.
    GaussianNoise {
        /// Standard deviation of the injected noise.
        stddev: f32,
    },
}

impl LayerSpec {
    /// Shorthand for a dense layer spec.
    pub fn dense(units: usize, activation: Activation) -> Self {
        LayerSpec::Dense { units, activation }
    }

    /// Whether this layer owns trainable parameters.
    pub fn is_trainable(&self) -> bool {
        matches!(self, LayerSpec::Dense { .. })
    }
}

/// A materialized dense layer: weights `[n_in x n_out]`, bias `[n_out]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Weight matrix, `n_in x n_out`.
    pub weights: Matrix,
    /// Bias vector, length `n_out`.
    pub bias: Vec<f32>,
    /// Activation function.
    pub activation: Activation,
}

impl DenseLayer {
    /// Glorot-uniform initialization, matching the Keras default for Dense
    /// layers.
    pub fn glorot(n_in: usize, n_out: usize, activation: Activation, rng: &mut StdRng) -> Self {
        let limit = (6.0f32 / (n_in + n_out) as f32).sqrt();
        let data = (0..n_in * n_out)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        DenseLayer {
            weights: Matrix::from_vec(n_in, n_out, data),
            bias: vec![0.0; n_out],
            activation,
        }
    }

    /// He-normal initialization (Kaiming), which preserves activation
    /// variance through deep ReLU stacks; used for ReLU layers so the
    /// paper's five-layer MLP trains from scratch.
    pub fn he(n_in: usize, n_out: usize, activation: Activation, rng: &mut StdRng) -> Self {
        let std = (2.0f32 / n_in as f32).sqrt();
        let data = (0..n_in * n_out)
            .map(|_| std * sample_normal(rng))
            .collect();
        DenseLayer {
            weights: Matrix::from_vec(n_in, n_out, data),
            bias: vec![0.0; n_out],
            activation,
        }
    }

    /// Initialization matched to the activation: He for ReLU, Glorot
    /// otherwise (the Keras-recommended pairing).
    pub fn init_for(n_in: usize, n_out: usize, activation: Activation, rng: &mut StdRng) -> Self {
        match activation {
            Activation::Relu => DenseLayer::he(n_in, n_out, activation, rng),
            _ => DenseLayer::glorot(n_in, n_out, activation, rng),
        }
    }

    /// Input dimension.
    pub fn n_in(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn n_out(&self) -> usize {
        self.weights.cols()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.n_in() * self.n_out() + self.bias.len()
    }

    /// Forward pass on a batch (`[batch x n_in] -> [batch x n_out]`).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.weights);
        z.add_row_vector(&self.bias);
        self.activation.apply(&mut z);
        z
    }
}

/// Runtime state of a non-parametric layer during training.
#[derive(Debug, Clone)]
pub(crate) enum NoiseLayer {
    Dropout { rate: f32 },
    Gaussian { stddev: f32 },
}

impl NoiseLayer {
    /// Applies the layer in training mode, returning the mask needed for
    /// backprop (dropout) or `None` (additive noise backprops unchanged).
    pub(crate) fn apply_training(&self, x: &mut Matrix, rng: &mut StdRng) -> Option<Matrix> {
        match *self {
            NoiseLayer::Dropout { rate } => {
                let keep = 1.0 - rate;
                let mut mask = Matrix::zeros(x.rows(), x.cols());
                for (m, v) in mask.as_mut_slice().iter_mut().zip(x.as_mut_slice()) {
                    if rng.gen::<f32>() < keep {
                        *m = 1.0 / keep; // inverted dropout
                    }
                    *v *= *m;
                }
                Some(mask)
            }
            NoiseLayer::Gaussian { stddev } => {
                for v in x.as_mut_slice() {
                    *v += stddev * sample_normal(rng);
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn glorot_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = DenseLayer::glorot(100, 50, Activation::Relu, &mut rng);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(l.weights.as_slice().iter().all(|w| w.abs() <= limit));
        assert!(l.bias.iter().all(|&b| b == 0.0));
        assert_eq!(l.param_count(), 100 * 50 + 50);
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = DenseLayer::glorot(4, 3, Activation::Linear, &mut rng);
        let y = l.forward(&Matrix::zeros(5, 4));
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn forward_applies_bias_and_activation() {
        let l = DenseLayer {
            weights: Matrix::zeros(2, 2),
            bias: vec![-1.0, 2.0],
            activation: Activation::Relu,
        };
        let y = l.forward(&Matrix::zeros(1, 2));
        assert_eq!(y.as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn dropout_scales_survivors() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = NoiseLayer::Dropout { rate: 0.5 };
        let mut x = Matrix::from_vec(1, 1000, vec![1.0; 1000]);
        let mask = layer.apply_training(&mut x, &mut rng).expect("mask");
        let survivors = x.as_slice().iter().filter(|&&v| v > 0.0).count();
        // Expect ~500 survivors, each scaled to 2.0.
        assert!((300..700).contains(&survivors));
        assert!(x
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        assert_eq!(mask.cols(), 1000);
    }

    #[test]
    fn gaussian_noise_perturbs() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = NoiseLayer::Gaussian { stddev: 0.1 };
        let mut x = Matrix::zeros(1, 100);
        assert!(layer.apply_training(&mut x, &mut rng).is_none());
        let norm = x.norm();
        assert!(norm > 0.0 && norm < 10.0);
    }

    #[test]
    fn spec_trainability() {
        assert!(LayerSpec::dense(8, Activation::Relu).is_trainable());
        assert!(!LayerSpec::Dropout { rate: 0.2 }.is_trainable());
        assert!(!LayerSpec::GaussianNoise { stddev: 0.1 }.is_trainable());
    }
}
