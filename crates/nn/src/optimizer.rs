//! Gradient-descent optimizers.

use serde::{Deserialize, Serialize};

/// The optimizer family and its hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam (Kingma & Ba), the Keras default for the paper's models.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
}

impl OptimizerKind {
    /// SGD with typical defaults (`lr = 0.01`, `momentum = 0.9`).
    pub fn sgd() -> Self {
        OptimizerKind::Sgd {
            lr: 0.01,
            momentum: 0.9,
        }
    }

    /// Adam with the Keras defaults (`lr = 0.001`).
    pub fn adam() -> Self {
        OptimizerKind::Adam {
            lr: 0.001,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-7,
        }
    }
}

/// Per-parameter-tensor optimizer state.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    /// First moment / momentum buffer per parameter tensor.
    m: Vec<Vec<f32>>,
    /// Second moment buffer (Adam only).
    v: Vec<Vec<f32>>,
    /// Step counter for Adam bias correction.
    t: u64,
}

impl Optimizer {
    /// Creates optimizer state for tensors of the given sizes.
    pub fn new(kind: OptimizerKind, tensor_sizes: &[usize]) -> Self {
        Optimizer {
            kind,
            m: tensor_sizes.iter().map(|&n| vec![0.0; n]).collect(),
            v: tensor_sizes.iter().map(|&n| vec![0.0; n]).collect(),
            t: 0,
        }
    }

    /// The configured optimizer kind.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Begins a new optimization step (advances Adam's bias-correction
    /// counter). Call once per batch, before [`Optimizer::update`].
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Applies the gradient `grad` to `params` for tensor `idx`.
    ///
    /// # Panics
    ///
    /// Panics if sizes mismatch the construction-time layout.
    pub fn update(&mut self, idx: usize, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "gradient size mismatch");
        assert_eq!(params.len(), self.m[idx].len(), "tensor layout mismatch");
        match self.kind {
            OptimizerKind::Sgd { lr, momentum } => {
                let m = &mut self.m[idx];
                for ((p, &g), mv) in params.iter_mut().zip(grad).zip(m.iter_mut()) {
                    *mv = momentum * *mv - lr * g;
                    *p += *mv;
                }
            }
            OptimizerKind::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let t = self.t.max(1) as i32;
                let bc1 = 1.0 - beta1.powi(t);
                let bc2 = 1.0 - beta2.powi(t);
                let m = &mut self.m[idx];
                let v = &mut self.v[idx];
                for (((p, &g), mv), vv) in params
                    .iter_mut()
                    .zip(grad)
                    .zip(m.iter_mut())
                    .zip(v.iter_mut())
                {
                    *mv = beta1 * *mv + (1.0 - beta1) * g;
                    *vv = beta2 * *vv + (1.0 - beta2) * g * g;
                    let mhat = *mv / bc1;
                    let vhat = *vv / bc2;
                    *p -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = x² from x = 1 should converge towards 0.
    fn descend(kind: OptimizerKind, steps: usize) -> f32 {
        let mut opt = Optimizer::new(kind, &[1]);
        let mut x = vec![1.0f32];
        for _ in 0..steps {
            opt.begin_step();
            let grad = [2.0 * x[0]];
            opt.update(0, &mut x, &grad);
        }
        x[0].abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(descend(OptimizerKind::sgd(), 200) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Adam moves ~lr per step under a constant-sign gradient, then
        // dithers near the optimum with amplitude O(lr).
        assert!(descend(OptimizerKind::adam(), 3000) < 0.05);
    }

    #[test]
    fn sgd_without_momentum_is_plain_descent() {
        let kind = OptimizerKind::Sgd {
            lr: 0.1,
            momentum: 0.0,
        };
        let mut opt = Optimizer::new(kind, &[1]);
        let mut x = vec![1.0f32];
        opt.begin_step();
        opt.update(0, &mut x, &[2.0]); // x -= 0.1 * 2
        assert!((x[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_size_is_about_lr() {
        let mut opt = Optimizer::new(OptimizerKind::adam(), &[1]);
        let mut x = vec![0.0f32];
        opt.begin_step();
        opt.update(0, &mut x, &[123.0]);
        // Bias-corrected first step magnitude ≈ lr regardless of gradient.
        assert!((x[0].abs() - 0.001).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "gradient size mismatch")]
    fn mismatched_sizes_panic() {
        let mut opt = Optimizer::new(OptimizerKind::sgd(), &[2]);
        let mut x = vec![0.0f32; 2];
        opt.update(0, &mut x, &[1.0]);
    }
}
