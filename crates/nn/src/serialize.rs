//! Model serialization: JSON topology + binary weights.
//!
//! This mirrors the interface the paper's flow uses between Keras and
//! HLS4ML: a `model.json` describing the network topology and a `model.h5`
//! carrying weights and biases. The weight container here is a simple
//! little-endian binary format rather than HDF5, but it plays the same
//! role: the HLS4ML-analog compiler consumes exactly these two artifacts.

use crate::{Activation, LayerSpec, Matrix, Sequential};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors from model (de)serialization.
#[derive(Debug)]
#[non_exhaustive]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON topology.
    Json(serde_json::Error),
    /// The weight blob is not in the expected format.
    BadWeightFormat(String),
    /// Weights do not match the topology.
    ShapeMismatch {
        /// Index of the offending dense layer.
        layer: usize,
        /// Expected `(rows, cols)`.
        expected: (usize, usize),
        /// Found `(rows, cols)`.
        found: (usize, usize),
    },
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Json(e) => write!(f, "topology json error: {e}"),
            SerializeError::BadWeightFormat(msg) => write!(f, "bad weight blob: {msg}"),
            SerializeError::ShapeMismatch {
                layer,
                expected,
                found,
            } => write!(
                f,
                "layer {layer} weight shape {found:?} does not match topology {expected:?}"
            ),
        }
    }
}

impl Error for SerializeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SerializeError::Io(e) => Some(e),
            SerializeError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

impl From<serde_json::Error> for SerializeError {
    fn from(e: serde_json::Error) -> Self {
        SerializeError::Json(e)
    }
}

/// JSON schema of the topology file (Keras-flavoured).
#[derive(Debug, Serialize, Deserialize)]
struct TopologyJson {
    class_name: String,
    config: TopologyConfig,
}

#[derive(Debug, Serialize, Deserialize)]
struct TopologyConfig {
    input_dim: usize,
    layers: Vec<LayerJson>,
}

#[derive(Debug, Serialize, Deserialize)]
struct LayerJson {
    class_name: String,
    config: serde_json::Value,
}

const WEIGHT_MAGIC: &[u8; 4] = b"ESPW";

/// Saves and loads models as `(topology.json, weights.bin)` pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelFile;

impl ModelFile {
    /// Renders the topology as Keras-style JSON.
    pub fn topology_json(model: &Sequential) -> String {
        let layers = model
            .specs()
            .iter()
            .map(|spec| match *spec {
                LayerSpec::Dense { units, activation } => LayerJson {
                    class_name: "Dense".into(),
                    config: serde_json::json!({
                        "units": units,
                        "activation": activation.keras_name(),
                    }),
                },
                LayerSpec::Dropout { rate } => LayerJson {
                    class_name: "Dropout".into(),
                    config: serde_json::json!({ "rate": rate }),
                },
                LayerSpec::GaussianNoise { stddev } => LayerJson {
                    class_name: "GaussianNoise".into(),
                    config: serde_json::json!({ "stddev": stddev }),
                },
            })
            .collect();
        let topo = TopologyJson {
            class_name: "Sequential".into(),
            config: TopologyConfig {
                input_dim: model.input_dim(),
                layers,
            },
        };
        serde_json::to_string_pretty(&topo).expect("topology serializes")
    }

    /// Rebuilds a model (freshly initialized weights) from topology JSON.
    ///
    /// # Errors
    ///
    /// [`SerializeError::Json`] on malformed input or unknown layer kinds.
    pub fn from_topology_json(json: &str) -> Result<Sequential, SerializeError> {
        let topo: TopologyJson = serde_json::from_str(json)?;
        let mut model = Sequential::new(topo.config.input_dim);
        for layer in topo.config.layers {
            let spec = match layer.class_name.as_str() {
                "Dense" => {
                    let units = layer.config["units"].as_u64().ok_or_else(|| {
                        SerializeError::BadWeightFormat("dense units missing".into())
                    })? as usize;
                    let act = match layer.config["activation"].as_str() {
                        Some("relu") => Activation::Relu,
                        Some("sigmoid") => Activation::Sigmoid,
                        Some("tanh") => Activation::Tanh,
                        Some("softmax") => Activation::Softmax,
                        _ => Activation::Linear,
                    };
                    LayerSpec::dense(units, act)
                }
                "Dropout" => LayerSpec::Dropout {
                    rate: layer.config["rate"].as_f64().unwrap_or(0.0) as f32,
                },
                "GaussianNoise" => LayerSpec::GaussianNoise {
                    stddev: layer.config["stddev"].as_f64().unwrap_or(0.0) as f32,
                },
                other => {
                    return Err(SerializeError::BadWeightFormat(format!(
                        "unknown layer class {other}"
                    )))
                }
            };
            model.push(spec);
        }
        Ok(model)
    }

    /// Serializes all dense-layer weights and biases to the binary blob.
    pub fn weights_bytes(model: &Sequential) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(WEIGHT_MAGIC);
        let n = model.dense_layers().len() as u32;
        out.extend_from_slice(&n.to_le_bytes());
        for layer in model.dense_layers() {
            out.extend_from_slice(&(layer.n_in() as u32).to_le_bytes());
            out.extend_from_slice(&(layer.n_out() as u32).to_le_bytes());
            for &w in layer.weights.as_slice() {
                out.extend_from_slice(&w.to_le_bytes());
            }
            for &b in &layer.bias {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        out
    }

    /// Loads weights from a blob into an already-built model.
    ///
    /// # Errors
    ///
    /// [`SerializeError::BadWeightFormat`] on truncation or bad magic;
    /// [`SerializeError::ShapeMismatch`] if shapes disagree with topology.
    pub fn load_weights_bytes(model: &mut Sequential, bytes: &[u8]) -> Result<(), SerializeError> {
        let bad = |m: &str| SerializeError::BadWeightFormat(m.to_string());
        if bytes.len() < 8 || &bytes[0..4] != WEIGHT_MAGIC {
            return Err(bad("missing ESPW magic"));
        }
        let n = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        if n != model.dense_layers().len() {
            return Err(bad("layer count mismatch"));
        }
        let mut off = 8usize;
        let read_u32 = |bytes: &[u8], off: usize| -> Result<u32, SerializeError> {
            bytes
                .get(off..off + 4)
                .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
                .ok_or_else(|| bad("truncated header"))
        };
        for li in 0..n {
            let rows = read_u32(bytes, off)? as usize;
            let cols = read_u32(bytes, off + 4)? as usize;
            off += 8;
            let layer = &model.dense_layers()[li];
            let expected = (layer.n_in(), layer.n_out());
            if (rows, cols) != expected {
                return Err(SerializeError::ShapeMismatch {
                    layer: li,
                    expected,
                    found: (rows, cols),
                });
            }
            let wn = rows * cols;
            let need = (wn + cols) * 4;
            let Some(slice) = bytes.get(off..off + need) else {
                return Err(bad("truncated weight data"));
            };
            let mut floats = slice
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")));
            let w: Vec<f32> = floats.by_ref().take(wn).collect();
            let b: Vec<f32> = floats.collect();
            let layer = &mut model.dense_layers_mut()[li];
            layer.weights = Matrix::from_vec(rows, cols, w);
            layer.bias = b;
            off += need;
        }
        Ok(())
    }

    /// Saves the `(topology.json, weights.bin)` pair to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(
        model: &Sequential,
        topology_path: &Path,
        weights_path: &Path,
    ) -> Result<(), SerializeError> {
        fs::write(topology_path, Self::topology_json(model))?;
        fs::write(weights_path, Self::weights_bytes(model))?;
        Ok(())
    }

    /// Loads a model from a `(topology.json, weights.bin)` pair.
    ///
    /// # Errors
    ///
    /// Propagates I/O, JSON and weight-format failures.
    pub fn load(topology_path: &Path, weights_path: &Path) -> Result<Sequential, SerializeError> {
        let topo = fs::read_to_string(topology_path)?;
        let mut model = Self::from_topology_json(&topo)?;
        let blob = fs::read(weights_path)?;
        Self::load_weights_bytes(&mut model, &blob)?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn sample_model() -> Sequential {
        let mut m = Sequential::with_seed(4, 99);
        m.push(LayerSpec::dense(8, Activation::Relu));
        m.push(LayerSpec::Dropout { rate: 0.2 });
        m.push(LayerSpec::dense(3, Activation::Softmax));
        m
    }

    #[test]
    fn topology_roundtrip() {
        let m = sample_model();
        let json = ModelFile::topology_json(&m);
        let rebuilt = ModelFile::from_topology_json(&json).unwrap();
        assert_eq!(rebuilt.dims(), m.dims());
        assert_eq!(rebuilt.specs(), m.specs());
    }

    #[test]
    fn weights_roundtrip_preserves_outputs() {
        let m = sample_model();
        let blob = ModelFile::weights_bytes(&m);
        let mut rebuilt = ModelFile::from_topology_json(&ModelFile::topology_json(&m)).unwrap();
        ModelFile::load_weights_bytes(&mut rebuilt, &blob).unwrap();
        let x = Matrix::from_vec(1, 4, vec![0.3, -0.1, 0.8, 0.2]);
        assert_eq!(m.forward(&x), rebuilt.forward(&x));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut m = sample_model();
        let err = ModelFile::load_weights_bytes(&mut m, b"NOPE....").unwrap_err();
        assert!(matches!(err, SerializeError::BadWeightFormat(_)));
    }

    #[test]
    fn truncated_blob_rejected() {
        let m = sample_model();
        let blob = ModelFile::weights_bytes(&m);
        let mut target = sample_model();
        let err = ModelFile::load_weights_bytes(&mut target, &blob[..blob.len() - 5]).unwrap_err();
        assert!(matches!(err, SerializeError::BadWeightFormat(_)));
    }

    #[test]
    fn shape_mismatch_detected() {
        let m = sample_model();
        let blob = ModelFile::weights_bytes(&m);
        let mut other = Sequential::with_seed(4, 1);
        other.push(LayerSpec::dense(9, Activation::Relu)); // 8 != 9
        other.push(LayerSpec::dense(3, Activation::Softmax));
        let err = ModelFile::load_weights_bytes(&mut other, &blob).unwrap_err();
        assert!(matches!(err, SerializeError::ShapeMismatch { .. }));
    }

    #[test]
    fn unknown_layer_class_rejected() {
        let json = r#"{"class_name":"Sequential","config":{"input_dim":4,
            "layers":[{"class_name":"Conv2D","config":{}}]}}"#;
        assert!(ModelFile::from_topology_json(json).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("esp4ml_nn_test");
        fs::create_dir_all(&dir).unwrap();
        let topo = dir.join("model.json");
        let weights = dir.join("model.espw");
        let m = sample_model();
        ModelFile::save(&m, &topo, &weights).unwrap();
        let loaded = ModelFile::load(&topo, &weights).unwrap();
        let x = Matrix::from_vec(2, 4, vec![0.0, 1.0, 2.0, 3.0, -1.0, 0.5, 0.2, 0.9]);
        assert_eq!(m.forward(&x), loaded.forward(&x));
    }
}
