//! Datasets and batching.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A supervised dataset: inputs `x` and targets `y`, row-aligned.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Inputs, one sample per row.
    pub x: Matrix,
    /// Targets, one sample per row (one-hot labels or regression targets).
    pub y: Matrix,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` have different row counts.
    pub fn new(x: Matrix, y: Matrix) -> Self {
        assert_eq!(x.rows(), y.rows(), "x/y row mismatch");
        Dataset { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into `(train, test)` with `test_fraction` of the samples in
    /// the test set (taken from the end; shuffle first if order matters).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= test_fraction < 1.0`.
    pub fn split(&self, test_fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_fraction));
        let n_test = (self.len() as f64 * test_fraction).round() as usize;
        let n_train = self.len() - n_test;
        let take = |lo: usize, hi: usize| {
            let xs: Vec<f32> = (lo..hi).flat_map(|r| self.x.row(r).to_vec()).collect();
            let ys: Vec<f32> = (lo..hi).flat_map(|r| self.y.row(r).to_vec()).collect();
            Dataset::new(
                Matrix::from_vec(hi - lo, self.x.cols(), xs),
                Matrix::from_vec(hi - lo, self.y.cols(), ys),
            )
        };
        (take(0, n_train), take(n_train, self.len()))
    }

    /// Shuffles the samples in place.
    pub fn shuffle(&mut self, rng: &mut StdRng) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let xs: Vec<f32> = order.iter().flat_map(|&r| self.x.row(r).to_vec()).collect();
        let ys: Vec<f32> = order.iter().flat_map(|&r| self.y.row(r).to_vec()).collect();
        self.x = Matrix::from_vec(self.len(), self.x.cols(), xs);
        self.y = Matrix::from_vec(self.y.rows(), self.y.cols(), ys);
    }

    /// Iterates over `(x_batch, y_batch)` mini-batches of up to
    /// `batch_size` rows.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Matrix, Matrix)> + '_ {
        assert!(batch_size > 0, "batch size must be positive");
        let n = self.len();
        (0..n).step_by(batch_size).map(move |lo| {
            let hi = (lo + batch_size).min(n);
            let xs: Vec<f32> = (lo..hi).flat_map(|r| self.x.row(r).to_vec()).collect();
            let ys: Vec<f32> = (lo..hi).flat_map(|r| self.y.row(r).to_vec()).collect();
            (
                Matrix::from_vec(hi - lo, self.x.cols(), xs),
                Matrix::from_vec(hi - lo, self.y.cols(), ys),
            )
        })
    }

    /// Builds one-hot target rows from class labels.
    ///
    /// # Panics
    ///
    /// Panics if any label is `>= n_classes`.
    pub fn one_hot(labels: &[usize], n_classes: usize) -> Matrix {
        let mut y = Matrix::zeros(labels.len(), n_classes);
        for (r, &c) in labels.iter().enumerate() {
            assert!(c < n_classes, "label {c} out of range");
            y[(r, c)] = 1.0;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ds(n: usize) -> Dataset {
        let x = Matrix::from_vec(n, 2, (0..2 * n).map(|i| i as f32).collect());
        let y = Matrix::from_vec(n, 1, (0..n).map(|i| i as f32).collect());
        Dataset::new(x, y)
    }

    #[test]
    fn split_fractions() {
        let (train, test) = ds(10).split(0.3);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Alignment preserved: y of first test row is 7.
        assert_eq!(test.y[(0, 0)], 7.0);
        assert_eq!(test.x[(0, 0)], 14.0);
    }

    #[test]
    fn batches_cover_everything() {
        let d = ds(10);
        let mut rows = 0;
        for (x, y) in d.batches(3) {
            assert_eq!(x.rows(), y.rows());
            rows += x.rows();
        }
        assert_eq!(rows, 10);
        let sizes: Vec<usize> = d.batches(3).map(|(x, _)| x.rows()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn shuffle_preserves_alignment() {
        let mut d = ds(20);
        let mut rng = StdRng::seed_from_u64(9);
        d.shuffle(&mut rng);
        for r in 0..d.len() {
            // x row i was [2i, 2i+1], y row i was [i].
            let label = d.y[(r, 0)] as usize;
            assert_eq!(d.x[(r, 0)], 2.0 * label as f32);
            assert_eq!(d.x[(r, 1)], 2.0 * label as f32 + 1.0);
        }
    }

    #[test]
    fn one_hot_encoding() {
        let y = Dataset::one_hot(&[2, 0], 3);
        assert_eq!(y.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(y.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_label() {
        Dataset::one_hot(&[3], 3);
    }
}
