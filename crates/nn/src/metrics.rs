//! Classification evaluation metrics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A confusion matrix over `n` classes: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        ConfusionMatrix {
            n_classes,
            counts: vec![0; n_classes * n_classes],
        }
    }

    /// Builds a matrix from parallel truth/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range labels.
    pub fn from_pairs(n_classes: usize, truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let mut m = ConfusionMatrix::new(n_classes);
        for (&t, &p) in truth.iter().zip(predicted) {
            m.record(t, p);
        }
        m
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(
            truth < self.n_classes && predicted < self.n_classes,
            "label out of range"
        );
        self.counts[truth * self.n_classes + predicted] += 1;
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Count of samples with the given truth predicted as `predicted`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.n_classes + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.n_classes).map(|c| self.count(c, c)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Recall of one class (correct / truth-count); 0 when unseen.
    pub fn recall(&self, class: usize) -> f64 {
        let truth: u64 = (0..self.n_classes).map(|p| self.count(class, p)).sum();
        if truth == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / truth as f64
        }
    }

    /// Precision of one class (correct / predicted-count); 0 when never
    /// predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let pred: u64 = (0..self.n_classes).map(|t| self.count(t, class)).sum();
        if pred == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / pred as f64
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "truth\\pred")?;
        for p in 0..self.n_classes {
            write!(f, "{p:>6}")?;
        }
        writeln!(f, "   recall")?;
        for t in 0..self.n_classes {
            write!(f, "{t:>10}")?;
            for p in 0..self.n_classes {
                write!(f, "{:>6}", self.count(t, p))?;
            }
            writeln!(f, "   {:>5.1}%", 100.0 * self.recall(t))?;
        }
        writeln!(f, "overall accuracy: {:.1}%", 100.0 * self.accuracy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_pairs(3, &[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.recall(1), 1.0);
        assert_eq!(m.precision(2), 1.0);
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn mixed_predictions() {
        // truth: 0,0,1,1 — predicted: 0,1,1,1
        let m = ConfusionMatrix::from_pairs(2, &[0, 0, 1, 1], &[0, 1, 1, 1]);
        assert_eq!(m.accuracy(), 0.75);
        assert_eq!(m.recall(0), 0.5);
        assert_eq!(m.precision(1), 2.0 / 3.0);
        assert_eq!(m.count(0, 1), 1);
    }

    #[test]
    fn unseen_class_has_zero_recall() {
        let m = ConfusionMatrix::from_pairs(3, &[0], &[0]);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.precision(2), 0.0);
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        assert_eq!(ConfusionMatrix::new(4).accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let mut m = ConfusionMatrix::new(2);
        // Manual message via assert in record.
        m.record(2, 0);
    }

    #[test]
    fn display_renders() {
        let m = ConfusionMatrix::from_pairs(2, &[0, 1], &[0, 0]);
        let s = m.to_string();
        assert!(s.contains("overall accuracy: 50.0%"));
    }
}
