//! Mini-batch training (backpropagation).

use crate::{Dataset, LayerSpec, Loss, Matrix, Optimizer, OptimizerKind, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Loss function.
    pub loss: Loss,
    /// Optimizer and its hyper-parameters.
    pub optimizer: OptimizerKind,
    /// RNG seed (shuffling, dropout, noise).
    pub seed: u64,
    /// Whether to reshuffle each epoch.
    pub shuffle: bool,
}

impl TrainConfig {
    /// A sensible default for classification (Adam, cross-entropy).
    pub fn classifier(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            batch_size: 32,
            loss: Loss::CrossEntropy,
            optimizer: OptimizerKind::adam(),
            seed: 7,
            shuffle: true,
        }
    }

    /// A sensible default for autoencoders (Adam, MSE).
    pub fn autoencoder(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            batch_size: 32,
            loss: Loss::MeanSquaredError,
            optimizer: OptimizerKind::adam(),
            seed: 7,
            shuffle: true,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// The last epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// The training engine: full backpropagation through the model's layer
/// stack, including dropout masks and noise layers.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` or `batch_size` is zero.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.epochs > 0, "need at least one epoch");
        assert!(config.batch_size > 0, "batch size must be positive");
        Trainer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `data`, mutating its weights in place.
    pub fn fit(&self, model: &mut Sequential, data: &Dataset) -> TrainReport {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut data = data.clone();
        let sizes: Vec<usize> = model
            .dense_layers()
            .iter()
            .flat_map(|l| [l.n_in() * l.n_out(), l.n_out()])
            .collect();
        let mut opt = Optimizer::new(self.config.optimizer, &sizes);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);

        for _ in 0..self.config.epochs {
            if self.config.shuffle {
                data.shuffle(&mut rng);
            }
            let mut total = 0.0;
            let mut batches = 0usize;
            let batch_list: Vec<(Matrix, Matrix)> = data.batches(self.config.batch_size).collect();
            for (x, y) in batch_list {
                total += self.train_batch(model, &mut opt, &x, &y, &mut rng);
                batches += 1;
            }
            epoch_losses.push(total / batches.max(1) as f32);
        }
        TrainReport { epoch_losses }
    }

    /// One optimizer step on one batch; returns the batch loss.
    fn train_batch(
        &self,
        model: &mut Sequential,
        opt: &mut Optimizer,
        x: &Matrix,
        y: &Matrix,
        rng: &mut StdRng,
    ) -> f32 {
        let trace = model.forward_training(x, rng);
        let loss = self.config.loss.compute(&trace.output, y);
        let mut grad = self.config.loss.gradient(&trace.output, y);

        let specs: Vec<LayerSpec> = model.specs().to_vec();
        let mut dense_idx = model.dense_layers().len();
        let mut mask_idx = trace.masks.len();
        // Gradients per tensor, collected in reverse and applied afterwards.
        let mut updates: Vec<(usize, Vec<f32>, Vec<f32>)> = Vec::new();

        for spec in specs.iter().rev() {
            match spec {
                LayerSpec::Dense { .. } => {
                    dense_idx -= 1;
                    let layer = &model.dense_layers()[dense_idx];
                    layer
                        .activation
                        .backprop_inplace(&mut grad, &trace.outputs[dense_idx]);
                    let dw = trace.inputs[dense_idx].matmul_tn(&grad);
                    let db = grad.column_sums();
                    if dense_idx > 0 || specs.iter().take(1).any(|s| !s.is_trainable()) {
                        grad = grad.matmul_nt(&layer.weights);
                    }
                    updates.push((dense_idx, dw.as_slice().to_vec(), db));
                }
                LayerSpec::Dropout { .. } => {
                    mask_idx -= 1;
                    if let Some(mask) = &trace.masks[mask_idx] {
                        grad.hadamard_inplace(mask);
                    }
                }
                LayerSpec::GaussianNoise { .. } => {
                    mask_idx -= 1; // additive noise: gradient passes through
                }
            }
        }

        opt.begin_step();
        for (li, dw, db) in updates {
            let layer = &mut model.dense_layers_mut()[li];
            opt.update(2 * li, layer.weights.as_mut_slice(), &dw);
            opt.update(2 * li + 1, &mut layer.bias, &db);
        }
        loss
    }
}

/// Classification accuracy of `model` on `data` (targets one-hot).
pub fn accuracy(model: &Sequential, data: &Dataset) -> f64 {
    let pred = model.predict_classes(&data.x);
    let mut correct = 0usize;
    for (r, &p) in pred.iter().enumerate() {
        let truth = data
            .y
            .row(r)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite targets"))
            .map(|(i, _)| i)
            .expect("non-empty target");
        if p == truth {
            correct += 1;
        }
    }
    correct as f64 / pred.len().max(1) as f64
}

/// Relative reconstruction error `||pred - target|| / ||target||` — the
/// metric behind the paper's "3.1 % reconstruction error" for the denoiser.
pub fn reconstruction_error(model: &Sequential, data: &Dataset) -> f64 {
    let pred = model.forward(&data.x);
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (p, t) in pred.as_slice().iter().zip(data.y.as_slice()) {
        num += ((p - t) * (p - t)) as f64;
        den += (t * t) as f64;
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;

    /// A linearly separable 2-class problem in 2D.
    fn toy_classification(n: usize) -> Dataset {
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let a = i as f32 / n as f32 * std::f32::consts::TAU;
            let (cls, r) = if i % 2 == 0 {
                (0usize, 0.5)
            } else {
                (1usize, 2.0)
            };
            xs.extend([r * a.cos(), r * a.sin()]);
            labels.push(cls);
        }
        Dataset::new(Matrix::from_vec(n, 2, xs), Dataset::one_hot(&labels, 2))
    }

    #[test]
    fn classifier_learns_separable_data() {
        let mut model = Sequential::with_seed(2, 3);
        model.push(LayerSpec::dense(16, Activation::Relu));
        model.push(LayerSpec::dense(2, Activation::Softmax));
        let data = toy_classification(200);
        let before = accuracy(&model, &data);
        let report = Trainer::new(TrainConfig::classifier(30)).fit(&mut model, &data);
        let after = accuracy(&model, &data);
        assert!(after > 0.95, "accuracy {after} (was {before})");
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn autoencoder_reduces_reconstruction_error() {
        // Identity-learning task on 8-dim data with a 4-dim bottleneck of
        // truly 3-dim structure.
        let n = 128;
        let mut xs = Vec::new();
        for i in 0..n {
            let base = [
                (i as f32 * 0.1).sin().abs(),
                (i as f32 * 0.07).cos().abs(),
                (i as f32 * 0.13).sin().abs(),
            ];
            for j in 0..8 {
                xs.push(base[j % 3] * 0.8 + 0.1);
            }
        }
        let x = Matrix::from_vec(n, 8, xs);
        let data = Dataset::new(x.clone(), x);
        let mut model = Sequential::with_seed(8, 5);
        model.push(LayerSpec::dense(4, Activation::Relu));
        model.push(LayerSpec::dense(8, Activation::Sigmoid));
        let before = reconstruction_error(&model, &data);
        let mut cfg = TrainConfig::autoencoder(200);
        cfg.optimizer = OptimizerKind::Adam {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-7,
        };
        Trainer::new(cfg).fit(&mut model, &data);
        let after = reconstruction_error(&model, &data);
        assert!(after < before * 0.5, "error {after} vs {before}");
        assert!(after < 0.2, "final reconstruction error {after}");
    }

    #[test]
    fn dropout_training_still_converges() {
        let mut model = Sequential::with_seed(2, 11);
        model.push(LayerSpec::dense(16, Activation::Relu));
        model.push(LayerSpec::Dropout { rate: 0.2 });
        model.push(LayerSpec::dense(2, Activation::Softmax));
        let data = toy_classification(200);
        Trainer::new(TrainConfig::classifier(80)).fit(&mut model, &data);
        assert!(accuracy(&model, &data) > 0.9);
    }

    #[test]
    fn gradient_check_single_dense_layer() {
        // Numerical gradient check of the full train path on a tiny net.
        let mut model = Sequential::with_seed(3, 13);
        model.push(LayerSpec::dense(2, Activation::Sigmoid));
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.5, 0.0, -0.4]);
        let y = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let loss = Loss::MeanSquaredError;

        // Analytic gradient via one SGD step with lr ε and zero momentum:
        // Δw = -ε * dL/dw.
        let eps_lr = 1e-3f32;
        let mut stepped = model.clone();
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 2,
            loss,
            optimizer: OptimizerKind::Sgd {
                lr: eps_lr,
                momentum: 0.0,
            },
            seed: 1,
            shuffle: false,
        };
        Trainer::new(cfg).fit(&mut stepped, &Dataset::new(x.clone(), y.clone()));
        let w0 = model.dense_layers()[0].weights.clone();
        let w1 = stepped.dense_layers()[0].weights.clone();

        // Numerical gradient for a few weights.
        for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let h = 1e-2f32;
            let mut plus = model.clone();
            plus.dense_layers_mut()[0].weights[(r, c)] += h;
            let mut minus = model.clone();
            minus.dense_layers_mut()[0].weights[(r, c)] -= h;
            let numeric = (loss.compute(&plus.forward(&x), &y)
                - loss.compute(&minus.forward(&x), &y))
                / (2.0 * h);
            let analytic = -(w1[(r, c)] - w0[(r, c)]) / eps_lr;
            assert!(
                (numeric - analytic).abs() < 5e-2_f32.max(0.2 * numeric.abs()),
                "weight ({r},{c}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn accuracy_of_perfect_predictor_is_one() {
        let mut model = Sequential::with_seed(2, 1);
        model.push(LayerSpec::dense(2, Activation::Linear));
        let l = &mut model.dense_layers_mut()[0];
        l.weights = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        l.bias = vec![0.0; 2];
        let x = Matrix::from_vec(2, 2, vec![5.0, 0.0, 0.0, 5.0]);
        let y = Dataset::one_hot(&[0, 1], 2);
        assert_eq!(accuracy(&model, &Dataset::new(x, y)), 1.0);
    }
}
