//! A small row-major `f32` matrix.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32`.
///
/// Only the kernels needed by dense-network training are provided; all
/// shape mismatches panic, because they are programming errors in a closed
/// training loop rather than recoverable conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self * other` (`[m x k] * [k x n] -> [m x n]`), cache-friendly ikj
    /// order.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimensions");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out.data[i * n..(i + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * other` (`[k x m]^T * [k x n] -> [m x n]`).
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn outer dimensions");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * other^T` (`[m x k] * [n x k]^T -> [m x n]`).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dimensions");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Adds `vec` to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != cols`.
    pub fn add_row_vector(&mut self, vec: &[f32]) {
        assert_eq!(vec.len(), self.cols);
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(vec) {
                *v += b;
            }
        }
    }

    /// Column-wise sums (gradient of a bias).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Element-wise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise product in place (`self *= other`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard_inplace(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Scales all elements in place.
    pub fn scale_inplace(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:+.3}")).collect();
            writeln!(
                f,
                "  [{}{}]",
                shown.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_transpose_then_matmul() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // a^T is 2x3
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let c = a.matmul_tn(&b);
        // a^T = [[1,3,5],[2,4,6]]; a^T*b = [[1+5, 3+5],[2+6, 4+6]]
        assert_eq!(c.as_slice(), &[6.0, 8.0, 8.0, 10.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(2, 3, &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0]); // b^T is 3x2
        let c = a.matmul_nt(&b);
        assert_eq!(c.as_slice(), &[3.0, 5.0, 9.0, 11.0]);
    }

    #[test]
    fn bias_broadcast_and_column_sums() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(a.column_sums(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn hadamard_and_scale() {
        let mut a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[2.0, 0.5, -1.0]);
        a.hadamard_inplace(&b);
        assert_eq!(a.as_slice(), &[2.0, 1.0, -3.0]);
        a.scale_inplace(2.0);
        assert_eq!(a.as_slice(), &[4.0, 2.0, -6.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn indexing() {
        let mut a = Matrix::zeros(2, 2);
        a[(1, 0)] = 5.0;
        assert_eq!(a[(1, 0)], 5.0);
        assert_eq!(a.row(1), &[5.0, 0.0]);
    }

    proptest! {
        /// (A*B)*C == A*(B*C) within float tolerance.
        #[test]
        fn matmul_is_associative(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
            c in proptest::collection::vec(-2.0f32..2.0, 6),
        ) {
            let a = m(2, 3, &a);
            let b = m(3, 2, &b);
            let c = m(2, 3, &c);
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
                prop_assert!((l - r).abs() < 1e-3);
            }
        }

        /// matmul_tn(A, B) agrees with explicit transposition.
        #[test]
        fn tn_matches_explicit_transpose(
            a in proptest::collection::vec(-2.0f32..2.0, 12),
            b in proptest::collection::vec(-2.0f32..2.0, 8),
        ) {
            let a = m(4, 3, &a);
            let b = m(4, 2, &b);
            let mut at = Matrix::zeros(3, 4);
            for r in 0..4 { for c in 0..3 { at[(c, r)] = a[(r, c)]; } }
            let expect = at.matmul(&b);
            let got = a.matmul_tn(&b);
            for (l, r) in expect.as_slice().iter().zip(got.as_slice()) {
                prop_assert!((l - r).abs() < 1e-4);
            }
        }
    }
}
