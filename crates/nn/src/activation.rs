//! Activation functions.

use crate::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Activation applied after a dense layer's affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Activation {
    /// Identity.
    Linear,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Row-wise softmax (for classifier outputs).
    Softmax,
}

impl Activation {
    /// Applies the activation in place to a batch of pre-activations.
    pub fn apply(self, z: &mut Matrix) {
        match self {
            Activation::Linear => {}
            Activation::Relu => z.map_inplace(|v| v.max(0.0)),
            Activation::Sigmoid => z.map_inplace(|v| 1.0 / (1.0 + (-v).exp())),
            Activation::Tanh => z.map_inplace(f32::tanh),
            Activation::Softmax => {
                for r in 0..z.rows() {
                    let row = z.row_mut(r);
                    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0;
                    for v in row.iter_mut() {
                        *v = (*v - max).exp();
                        sum += *v;
                    }
                    for v in row.iter_mut() {
                        *v /= sum;
                    }
                }
            }
        }
    }

    /// Multiplies `grad` in place by the activation derivative, given the
    /// *post-activation* values `a`.
    ///
    /// For [`Activation::Softmax`] this is the identity: softmax is only
    /// used with cross-entropy loss, whose combined gradient is computed
    /// directly by the loss (the standard `softmax + CE` shortcut).
    pub fn backprop_inplace(self, grad: &mut Matrix, a: &Matrix) {
        match self {
            Activation::Linear | Activation::Softmax => {}
            Activation::Relu => {
                for (g, &v) in grad.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    if v <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for (g, &v) in grad.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    *g *= v * (1.0 - v);
                }
            }
            Activation::Tanh => {
                for (g, &v) in grad.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    *g *= 1.0 - v * v;
                }
            }
        }
    }

    /// The Keras name of the activation (used in the JSON topology).
    pub fn keras_name(self) -> &'static str {
        match self {
            Activation::Linear => "linear",
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Softmax => "softmax",
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keras_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut z = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        Activation::Relu.apply(&mut z);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut z = Matrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]);
        Activation::Sigmoid.apply(&mut z);
        let s = z.as_slice();
        assert!(s[0] < 0.001);
        assert!((s[1] - 0.5).abs() < 1e-6);
        assert!(s[2] > 0.999);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut z = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 100.0, 100.0, 100.0]);
        Activation::Softmax.apply(&mut z);
        for r in 0..2 {
            let sum: f32 = z.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Large inputs must not overflow (max-subtraction).
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relu_backprop_masks() {
        let a = Matrix::from_vec(1, 3, vec![0.0, 1.0, 2.0]);
        let mut g = Matrix::from_vec(1, 3, vec![5.0, 5.0, 5.0]);
        Activation::Relu.backprop_inplace(&mut g, &a);
        assert_eq!(g.as_slice(), &[0.0, 5.0, 5.0]);
    }

    #[test]
    fn sigmoid_backprop_peak_at_half() {
        let a = Matrix::from_vec(1, 2, vec![0.5, 0.99]);
        let mut g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        Activation::Sigmoid.backprop_inplace(&mut g, &a);
        assert!((g.as_slice()[0] - 0.25).abs() < 1e-6);
        assert!(g.as_slice()[1] < 0.02);
    }

    #[test]
    fn tanh_forward_and_backward() {
        let mut z = Matrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]);
        Activation::Tanh.apply(&mut z);
        let s = z.as_slice();
        assert!(s[0] < -0.999 && s[2] > 0.999);
        assert_eq!(s[1], 0.0);
        // Derivative peaks (= 1) at the origin, vanishes at saturation.
        let a = Matrix::from_vec(1, 2, vec![0.0, 0.999]);
        let mut g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        Activation::Tanh.backprop_inplace(&mut g, &a);
        assert_eq!(g.as_slice()[0], 1.0);
        assert!(g.as_slice()[1] < 0.01);
    }

    #[test]
    fn keras_names() {
        assert_eq!(Activation::Relu.keras_name(), "relu");
        assert_eq!(Activation::Softmax.to_string(), "softmax");
    }
}
