//! Loss functions.

use crate::Matrix;
use serde::{Deserialize, Serialize};

/// Loss function for training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Categorical cross-entropy over a softmax output (classification).
    CrossEntropy,
    /// Mean squared error (the autoencoder's reconstruction loss).
    MeanSquaredError,
}

impl Loss {
    /// Average loss over a batch.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between predictions and targets.
    pub fn compute(self, pred: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(
            (pred.rows(), pred.cols()),
            (target.rows(), target.cols()),
            "prediction/target shape mismatch"
        );
        let n = pred.rows() as f32;
        match self {
            Loss::CrossEntropy => {
                let mut total = 0.0;
                for (p, &t) in pred.as_slice().iter().zip(target.as_slice()) {
                    if t > 0.0 {
                        total -= t * p.max(1e-12).ln();
                    }
                }
                total / n
            }
            Loss::MeanSquaredError => {
                let mut total = 0.0;
                for (p, t) in pred.as_slice().iter().zip(target.as_slice()) {
                    let d = p - t;
                    total += d * d;
                }
                total / (n * pred.cols() as f32)
            }
        }
    }

    /// Gradient of the loss with respect to the network *output*.
    ///
    /// For [`Loss::CrossEntropy`] the returned gradient is the combined
    /// softmax+CE gradient `(pred - target) / batch`, to be used with a
    /// softmax output layer whose own backprop is the identity.
    pub fn gradient(self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!((pred.rows(), pred.cols()), (target.rows(), target.cols()));
        let n = pred.rows() as f32;
        let mut grad = pred.clone();
        match self {
            Loss::CrossEntropy => {
                for (g, &t) in grad.as_mut_slice().iter_mut().zip(target.as_slice()) {
                    *g = (*g - t) / n;
                }
            }
            Loss::MeanSquaredError => {
                let scale = 2.0 / (n * pred.cols() as f32);
                for (g, &t) in grad.as_mut_slice().iter_mut().zip(target.as_slice()) {
                    *g = (*g - t) * scale;
                }
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        let pred = Matrix::from_vec(1, 3, vec![0.0, 1.0, 0.0]);
        let target = pred.clone();
        assert!(Loss::CrossEntropy.compute(&pred, &target) < 1e-6);
    }

    #[test]
    fn cross_entropy_penalizes_wrong_class() {
        let good = Matrix::from_vec(1, 2, vec![0.9, 0.1]);
        let bad = Matrix::from_vec(1, 2, vec![0.1, 0.9]);
        let target = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        assert!(
            Loss::CrossEntropy.compute(&bad, &target) > Loss::CrossEntropy.compute(&good, &target)
        );
    }

    #[test]
    fn mse_matches_hand_computation() {
        let pred = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let target = Matrix::from_vec(2, 2, vec![0.0, 2.0, 3.0, 2.0]);
        // Squared errors: 1, 0, 0, 4 → mean = 5/4.
        assert!((Loss::MeanSquaredError.compute(&pred, &target) - 1.25).abs() < 1e-6);
    }

    #[test]
    fn gradients_point_towards_target() {
        let pred = Matrix::from_vec(1, 2, vec![0.8, 0.2]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        for loss in [Loss::CrossEntropy, Loss::MeanSquaredError] {
            let g = loss.gradient(&pred, &target);
            assert!(g.as_slice()[0] > 0.0, "{loss:?} should push class 0 down");
            assert!(g.as_slice()[1] < 0.0, "{loss:?} should push class 1 up");
        }
    }

    #[test]
    fn mse_gradient_is_numerically_correct() {
        let pred = Matrix::from_vec(1, 2, vec![0.5, -0.3]);
        let target = Matrix::from_vec(1, 2, vec![0.1, 0.4]);
        let g = Loss::MeanSquaredError.gradient(&pred, &target);
        let eps = 1e-3;
        for i in 0..2 {
            let mut plus = pred.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = pred.clone();
            minus.as_mut_slice()[i] -= eps;
            let numeric = (Loss::MeanSquaredError.compute(&plus, &target)
                - Loss::MeanSquaredError.compute(&minus, &target))
                / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-3);
        }
    }
}
