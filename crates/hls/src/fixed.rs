//! `ap_fixed<W, I>`-style fixed-point arithmetic.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors raised when constructing a fixed-point specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FixedError {
    /// Width constraints violated (`0 < int_bits <= total_bits <= 32`).
    InvalidWidths {
        /// Requested total width.
        total_bits: u32,
        /// Requested integer width.
        int_bits: u32,
    },
}

impl fmt::Display for FixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedError::InvalidWidths {
                total_bits,
                int_bits,
            } => write!(
                f,
                "invalid fixed-point widths: total {total_bits}, integer {int_bits}"
            ),
        }
    }
}

impl Error for FixedError {}

/// A signed fixed-point format: `total_bits` wide with `int_bits` integer
/// bits (sign included), i.e. Vivado HLS `ap_fixed<total_bits, int_bits>`.
///
/// Values are carried as raw `i64` with `total_bits - int_bits` fractional
/// bits. All operations saturate (HLS4ML configures `AP_SAT` for inference
/// datapaths) and round to nearest on quantization.
///
/// # Example
///
/// ```
/// use esp4ml_hls::FixedSpec;
/// let q = FixedSpec::HLS4ML_DEFAULT; // ap_fixed<16, 6>
/// let raw = q.quantize(1.5);
/// assert_eq!(q.dequantize(raw), 1.5);
/// let prod = q.mul(q.quantize(0.5), q.quantize(3.0));
/// assert!((q.dequantize(prod) - 1.5).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedSpec {
    total_bits: u32,
    int_bits: u32,
}

impl FixedSpec {
    /// The HLS4ML default inference precision, `ap_fixed<16, 6>`.
    pub const HLS4ML_DEFAULT: FixedSpec = FixedSpec {
        total_bits: 16,
        int_bits: 6,
    };

    /// Creates a specification.
    ///
    /// # Errors
    ///
    /// [`FixedError::InvalidWidths`] unless
    /// `0 < int_bits <= total_bits <= 32`.
    pub fn new(total_bits: u32, int_bits: u32) -> Result<Self, FixedError> {
        if total_bits == 0 || total_bits > 32 || int_bits == 0 || int_bits > total_bits {
            return Err(FixedError::InvalidWidths {
                total_bits,
                int_bits,
            });
        }
        Ok(FixedSpec {
            total_bits,
            int_bits,
        })
    }

    /// Total width in bits.
    pub fn total_bits(self) -> u32 {
        self.total_bits
    }

    /// Integer bits (sign included).
    pub fn int_bits(self) -> u32 {
        self.int_bits
    }

    /// Fractional bits.
    pub fn frac_bits(self) -> u32 {
        self.total_bits - self.int_bits
    }

    /// Largest representable raw value.
    pub fn max_raw(self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest representable raw value.
    pub fn min_raw(self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Quantizes a real value (round to nearest, saturate).
    pub fn quantize(self, value: f64) -> i64 {
        let scaled = (value * (1i64 << self.frac_bits()) as f64).round();

        if scaled >= self.max_raw() as f64 {
            self.max_raw()
        } else if scaled <= self.min_raw() as f64 {
            self.min_raw()
        } else {
            scaled as i64
        }
    }

    /// Converts a raw value back to a real number.
    pub fn dequantize(self, raw: i64) -> f64 {
        raw as f64 / (1i64 << self.frac_bits()) as f64
    }

    /// Saturating addition of two raw values.
    pub fn add(self, a: i64, b: i64) -> i64 {
        self.saturate(a + b)
    }

    /// Saturating multiplication of two raw values (the product is rescaled
    /// back to this format, truncating like the HLS datapath does).
    pub fn mul(self, a: i64, b: i64) -> i64 {
        let wide = a as i128 * b as i128;
        let rescaled = (wide >> self.frac_bits()) as i64;
        self.saturate(rescaled)
    }

    /// Saturates an out-of-range raw value into the representable range.
    pub fn saturate(self, raw: i64) -> i64 {
        raw.clamp(self.min_raw(), self.max_raw())
    }

    /// The quantization step (value of one LSB).
    pub fn resolution(self) -> f64 {
        1.0 / (1i64 << self.frac_bits()) as f64
    }
}

impl Default for FixedSpec {
    fn default() -> Self {
        FixedSpec::HLS4ML_DEFAULT
    }
}

impl fmt::Display for FixedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ap_fixed<{}, {}>", self.total_bits, self.int_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_16_6() {
        let q = FixedSpec::default();
        assert_eq!(q.total_bits(), 16);
        assert_eq!(q.int_bits(), 6);
        assert_eq!(q.frac_bits(), 10);
        assert_eq!(q.to_string(), "ap_fixed<16, 6>");
    }

    #[test]
    fn invalid_widths_rejected() {
        assert!(FixedSpec::new(0, 0).is_err());
        assert!(FixedSpec::new(16, 0).is_err());
        assert!(FixedSpec::new(16, 17).is_err());
        assert!(FixedSpec::new(33, 6).is_err());
        assert!(FixedSpec::new(8, 8).is_ok());
    }

    #[test]
    fn quantize_roundtrip_exact_values() {
        let q = FixedSpec::HLS4ML_DEFAULT;
        for v in [0.0, 1.0, -1.0, 0.5, -0.25, 31.0, -32.0] {
            assert_eq!(q.dequantize(q.quantize(v)), v, "value {v}");
        }
    }

    #[test]
    fn quantize_saturates() {
        let q = FixedSpec::HLS4ML_DEFAULT;
        assert_eq!(q.quantize(1000.0), q.max_raw());
        assert_eq!(q.quantize(-1000.0), q.min_raw());
        assert!(q.dequantize(q.max_raw()) < 32.0);
        assert_eq!(q.dequantize(q.min_raw()), -32.0);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let q = FixedSpec::HLS4ML_DEFAULT;
        for i in -1000..1000 {
            let v = i as f64 * 0.017;
            if v.abs() < 31.0 {
                let err = (q.dequantize(q.quantize(v)) - v).abs();
                assert!(err <= q.resolution() / 2.0 + 1e-12, "v={v} err={err}");
            }
        }
    }

    #[test]
    fn mul_matches_real_arithmetic_within_resolution() {
        let q = FixedSpec::HLS4ML_DEFAULT;
        let a = 1.625;
        let b = -2.375;
        let prod = q.dequantize(q.mul(q.quantize(a), q.quantize(b)));
        assert!((prod - a * b).abs() <= 2.0 * q.resolution());
    }

    #[test]
    fn add_saturates() {
        let q = FixedSpec::HLS4ML_DEFAULT;
        let big = q.quantize(31.9);
        assert_eq!(q.add(big, big), q.max_raw());
        let small = q.quantize(-31.9);
        assert_eq!(q.add(small, small), q.min_raw());
    }

    #[test]
    fn narrow_format_behaves() {
        let q = FixedSpec::new(8, 4).unwrap();
        assert_eq!(q.dequantize(q.quantize(2.5)), 2.5);
        assert_eq!(q.quantize(100.0), q.max_raw());
        assert_eq!(q.resolution(), 1.0 / 16.0);
    }
}
