//! FPGA resource accounting.

use crate::FpgaDevice;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// FPGA resource usage: look-up tables, flip-flops, block RAMs and DSP
/// slices. These are the four columns Vivado reports and the paper's
/// Table I summarizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resources {
    /// 6-input look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// BRAM36 blocks (a BRAM18 counts as half, rounded up by producers).
    pub brams: u64,
    /// DSP48 slices.
    pub dsps: u64,
}

impl Resources {
    /// Creates a resource vector.
    pub const fn new(luts: u64, ffs: u64, brams: u64, dsps: u64) -> Self {
        Resources {
            luts,
            ffs,
            brams,
            dsps,
        }
    }

    /// The zero vector.
    pub const fn zero() -> Self {
        Resources::new(0, 0, 0, 0)
    }

    /// Utilization of this vector against a device.
    pub fn utilization(&self, device: &FpgaDevice) -> Utilization {
        let pct = |used: u64, avail: u64| {
            if avail == 0 {
                0.0
            } else {
                100.0 * used as f64 / avail as f64
            }
        };
        Utilization {
            lut_pct: pct(self.luts, device.luts),
            ff_pct: pct(self.ffs, device.ffs),
            bram_pct: pct(self.brams, device.bram36),
            dsp_pct: pct(self.dsps, device.dsps),
        }
    }

    /// Whether this usage fits within a device.
    pub fn fits(&self, device: &FpgaDevice) -> bool {
        self.luts <= device.luts
            && self.ffs <= device.ffs
            && self.brams <= device.bram36
            && self.dsps <= device.dsps
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            brams: self.brams + rhs.brams,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, k: u64) -> Resources {
        Resources {
            luts: self.luts * k,
            ffs: self.ffs * k,
            brams: self.brams * k,
            dsps: self.dsps * k,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::zero(), Add::add)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUT, {} FF, {} BRAM, {} DSP",
            self.luts, self.ffs, self.brams, self.dsps
        )
    }
}

/// Utilization percentages against a specific device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// LUT utilization in percent.
    pub lut_pct: f64,
    /// FF utilization in percent.
    pub ff_pct: f64,
    /// BRAM utilization in percent.
    pub bram_pct: f64,
    /// DSP utilization in percent.
    pub dsp_pct: f64,
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0}% LUT, {:.0}% FF, {:.0}% BRAM, {:.0}% DSP",
            self.lut_pct, self.ff_pct, self.bram_pct, self.dsp_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(10, 20, 2, 4);
        let b = Resources::new(1, 2, 3, 4);
        assert_eq!(a + b, Resources::new(11, 22, 5, 8));
        assert_eq!(a * 3, Resources::new(30, 60, 6, 12));
        let sum: Resources = vec![a, b, b].into_iter().sum();
        assert_eq!(sum, Resources::new(12, 24, 8, 12));
    }

    #[test]
    fn utilization_percentages() {
        let dev = FpgaDevice::new("test", 1000, 2000, 100, 50, 0.5);
        let r = Resources::new(480, 480, 57, 10);
        let u = r.utilization(&dev);
        assert!((u.lut_pct - 48.0).abs() < 1e-9);
        assert!((u.ff_pct - 24.0).abs() < 1e-9);
        assert!((u.bram_pct - 57.0).abs() < 1e-9);
        assert!((u.dsp_pct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn fits_checks_every_axis() {
        let dev = FpgaDevice::new("t", 100, 100, 10, 10, 0.1);
        assert!(Resources::new(100, 100, 10, 10).fits(&dev));
        assert!(!Resources::new(101, 0, 0, 0).fits(&dev));
        assert!(!Resources::new(0, 0, 11, 0).fits(&dev));
    }

    #[test]
    fn zero_device_axis_is_zero_pct() {
        let dev = FpgaDevice::new("t", 100, 100, 0, 10, 0.1);
        let u = Resources::new(1, 1, 1, 1).utilization(&dev);
        assert_eq!(u.bram_pct, 0.0);
    }
}
