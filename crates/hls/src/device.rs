//! FPGA device database.

use serde::{Deserialize, Serialize};

/// An FPGA part: the denominator of Table I's utilization percentages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Part name.
    pub name: String,
    /// Available 6-input LUTs.
    pub luts: u64,
    /// Available flip-flops.
    pub ffs: u64,
    /// Available BRAM36 blocks.
    pub bram36: u64,
    /// Available DSP48 slices.
    pub dsps: u64,
    /// Device static power in watts (excluded from the paper's *dynamic*
    /// power numbers but kept for completeness).
    pub static_watts: f64,
}

impl FpgaDevice {
    /// Creates a device entry.
    pub fn new(name: &str, luts: u64, ffs: u64, bram36: u64, dsps: u64, static_watts: f64) -> Self {
        FpgaDevice {
            name: name.to_string(),
            luts,
            ffs,
            bram36,
            dsps,
            static_watts,
        }
    }

    /// Xilinx Virtex Ultrascale+ XCVU9P (VCU118 board) — the "particularly
    /// large FPGA" class of Ultrascale+ device the paper prototypes on.
    pub fn xcvu9p() -> Self {
        FpgaDevice::new("xcvu9p-flga2104", 1_182_240, 2_364_480, 2_160, 6_840, 3.0)
    }

    /// Xilinx Zynq Ultrascale+ XCZU9EG (ZCU102 board), a mid-size
    /// Ultrascale+ alternative.
    pub fn xczu9eg() -> Self {
        FpgaDevice::new("xczu9eg-ffvb1156", 274_080, 548_160, 912, 2_520, 0.6)
    }

    /// Xilinx Virtex-7 XC7V2000T, the legacy ESP target (proFPGA systems).
    pub fn xc7v2000t() -> Self {
        FpgaDevice::new("xc7v2000t-flg1925", 1_221_600, 2_443_200, 1_292, 2_160, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_entries_are_plausible() {
        let vu9p = FpgaDevice::xcvu9p();
        assert_eq!(vu9p.ffs, 2 * vu9p.luts); // Ultrascale+ slice structure
        let zu9 = FpgaDevice::xczu9eg();
        assert!(zu9.luts < vu9p.luts);
        assert!(zu9.dsps < vu9p.dsps);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            FpgaDevice::xcvu9p().name,
            FpgaDevice::xczu9eg().name,
            FpgaDevice::xc7v2000t().name,
        ];
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
