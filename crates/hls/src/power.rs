//! Resource-proportional dynamic-power estimation.

use crate::Resources;
use serde::{Deserialize, Serialize};

/// A dynamic-power estimate for an SoC, broken down by contributor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Logic (LUT + FF) dynamic power in watts.
    pub logic_watts: f64,
    /// BRAM dynamic power in watts.
    pub bram_watts: f64,
    /// DSP dynamic power in watts.
    pub dsp_watts: f64,
    /// Clock-tree, NoC and platform infrastructure power in watts.
    pub infrastructure_watts: f64,
}

impl PowerEstimate {
    /// Total dynamic power in watts.
    pub fn total_watts(&self) -> f64 {
        self.logic_watts + self.bram_watts + self.dsp_watts + self.infrastructure_watts
    }
}

/// The analog of the Vivado vector-less power report: dynamic power as a
/// function of resource usage, clock frequency and an activity factor.
///
/// The paper reports the *average dynamic power for the whole SoC* as
/// estimated by Vivado (1.70 W and 0.98 W for its two SoCs); this model is
/// calibrated so that SoC-scale designs on an Ultrascale+ at 78 MHz land in
/// that range. Coefficients are per-resource energy at 100 MHz with
/// activity 0.125 (Vivado's default toggle rate), scaled linearly in both.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Watts per LUT at the reference frequency and activity.
    pub watts_per_lut: f64,
    /// Watts per flip-flop.
    pub watts_per_ff: f64,
    /// Watts per BRAM36.
    pub watts_per_bram: f64,
    /// Watts per DSP48.
    pub watts_per_dsp: f64,
    /// Baseline infrastructure power (clock tree, I/O, memory controller)
    /// in watts, independent of design size.
    pub infrastructure_watts: f64,
    /// Reference clock frequency in MHz for the per-resource coefficients.
    pub reference_mhz: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            watts_per_lut: 0.95e-6,
            watts_per_ff: 0.29e-6,
            watts_per_bram: 3.0e-4,
            watts_per_dsp: 2.3e-4,
            infrastructure_watts: 0.50,
            reference_mhz: 100.0,
        }
    }
}

impl PowerModel {
    /// Estimates dynamic power for a design using `resources` clocked at
    /// `clock_mhz` with the given switching-activity factor relative to
    /// Vivado's default (1.0 = default toggle rates).
    pub fn estimate(&self, resources: Resources, clock_mhz: f64, activity: f64) -> PowerEstimate {
        let f = clock_mhz / self.reference_mhz * activity;
        PowerEstimate {
            logic_watts: (resources.luts as f64 * self.watts_per_lut
                + resources.ffs as f64 * self.watts_per_ff)
                * f,
            bram_watts: resources.brams as f64 * self.watts_per_bram * f,
            dsp_watts: resources.dsps as f64 * self.watts_per_dsp * f,
            infrastructure_watts: self.infrastructure_watts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_scales_with_frequency() {
        let m = PowerModel::default();
        let r = Resources::new(100_000, 150_000, 500, 1000);
        let slow = m.estimate(r, 50.0, 1.0);
        let fast = m.estimate(r, 100.0, 1.0);
        assert!(
            (fast.logic_watts - 2.0 * slow.logic_watts).abs() < 1e-9,
            "logic power should scale linearly with clock"
        );
        // Infrastructure does not scale.
        assert_eq!(fast.infrastructure_watts, slow.infrastructure_watts);
    }

    #[test]
    fn power_scales_with_activity() {
        let m = PowerModel::default();
        let r = Resources::new(10_000, 10_000, 10, 10);
        let idle = m.estimate(r, 78.0, 0.5);
        let busy = m.estimate(r, 78.0, 1.0);
        assert!(busy.total_watts() > idle.total_watts());
    }

    #[test]
    fn soc_scale_design_lands_near_paper_range() {
        // A design the size of the paper's SoC-1 (48% LUTs etc. of a VU9P).
        let m = PowerModel::default();
        let r = Resources::new(567_000, 567_000, 1_231, 2_500);
        let p = m.estimate(r, 78.0, 1.0).total_watts();
        assert!(
            p > 1.0 && p < 2.5,
            "SoC-1-scale power {p:.2} W out of range"
        );
    }

    #[test]
    fn zero_design_is_infrastructure_only() {
        let m = PowerModel::default();
        let p = m.estimate(Resources::zero(), 78.0, 1.0);
        assert_eq!(p.total_watts(), m.infrastructure_watts);
    }
}
