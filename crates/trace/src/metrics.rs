//! Shared metric derivations.

/// Throughput in frames per second.
///
/// Single source of truth for the formula previously duplicated by
/// `SocStats::frames_per_second` and `RunMetrics::frames_per_second`:
/// zero simulated cycles yields zero (a run that never ticked has no
/// meaningful rate), otherwise `frames / (cycles / clock_hz)`.
pub fn frames_per_second(frames: u64, cycles: u64, clock_hz: f64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    frames as f64 / (cycles as f64 / clock_hz)
}

#[cfg(test)]
mod tests {
    use super::frames_per_second;

    #[test]
    fn basic_rate() {
        // 1000 frames in 78M cycles at 78 MHz => 1000 fps.
        assert!((frames_per_second(1000, 78_000_000, 78.0e6) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_is_zero() {
        assert_eq!(frames_per_second(10, 0, 78.0e6), 0.0);
    }
}
