//! Named counters with a snapshot/diff API.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A registry of named `u64` metrics.
///
/// Monotonic counters grow via [`add`](CounterRegistry::add) /
/// [`incr`](CounterRegistry::incr); gauges are overwritten via
/// [`set`](CounterRegistry::set). Both live in one namespace —
/// dotted names by convention (`soc.dram_reads`, `noc.flit_hops`,
/// `runtime.invocations`) — and are captured together by
/// [`snapshot`](CounterRegistry::snapshot).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterRegistry {
    values: BTreeMap<String, u64>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CounterRegistry::default()
    }

    /// Adds `delta` to a monotonic counter, creating it at zero first.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.values.get_mut(name) {
            *v = v.saturating_add(delta);
        } else {
            self.values.insert(name.to_string(), delta);
        }
    }

    /// Adds one to a monotonic counter.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Overwrites a gauge.
    pub fn set(&mut self, name: &str, value: u64) {
        self.values.insert(name.to_string(), value);
    }

    /// Current value (zero when the name is unknown).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Removes every counter.
    pub fn clear(&mut self) {
        self.values.clear();
    }

    /// Captures all current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            values: self.values.clone(),
        }
    }

    /// Renders every counter in the Prometheus text exposition format:
    /// one `# HELP` / `# TYPE` header pair per metric followed by its
    /// sample line. Dotted registry names become underscore-separated
    /// Prometheus names (`soc.dram_reads` → `soc_dram_reads`); all
    /// registry values are exposed as `counter`s.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.values {
            let metric = prometheus_name(name);
            out.push_str(&format!(
                "# HELP {metric} Simulator counter {name}.\n\
                 # TYPE {metric} counter\n\
                 {metric} {value}\n"
            ));
        }
        out
    }
}

/// Sanitizes a registry name into the Prometheus metric-name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// An immutable point-in-time capture of a [`CounterRegistry`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    values: BTreeMap<String, u64>,
}

impl CounterSnapshot {
    /// Value at capture time (zero when the name is unknown).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Number of captured names.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Captured names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// Per-name difference `self - earlier` (saturating, union of
    /// names) — the growth between two snapshots of monotonic counters.
    pub fn diff(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut values = BTreeMap::new();
        for (name, &now) in &self.values {
            values.insert(name.clone(), now.saturating_sub(earlier.get(name)));
        }
        for (name, _) in earlier.values.iter() {
            values.entry(name.clone()).or_insert(0);
        }
        CounterSnapshot { values }
    }

    /// Renders the snapshot as a flat JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        let map: serde_json::Map = self
            .values
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::Value::from(*v)))
            .collect();
        serde_json::Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_set_get() {
        let mut reg = CounterRegistry::new();
        reg.incr("a");
        reg.add("a", 4);
        reg.set("g", 7);
        reg.set("g", 3);
        assert_eq!(reg.get("a"), 5);
        assert_eq!(reg.get("g"), 3);
        assert_eq!(reg.get("missing"), 0);
    }

    #[test]
    fn snapshot_diff_measures_growth() {
        let mut reg = CounterRegistry::new();
        reg.add("x", 10);
        let before = reg.snapshot();
        reg.add("x", 5);
        reg.add("y", 2);
        let after = reg.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.get("x"), 5);
        assert_eq!(d.get("y"), 2);
        // Union semantics: names only in the earlier snapshot appear as 0.
        let empty = CounterRegistry::new().snapshot();
        let d2 = empty.diff(&before);
        assert_eq!(d2.get("x"), 0);
        assert!(d2.names().any(|n| n == "x"));
    }

    #[test]
    fn prometheus_exposition_snapshot() {
        let mut reg = CounterRegistry::new();
        reg.add("soc.dram_reads", 12);
        reg.add("noc.flit_hops", 42);
        // Snapshot of the exact text format `espserve` will scrape.
        assert_eq!(
            reg.render_prometheus(),
            "# HELP noc_flit_hops Simulator counter noc.flit_hops.\n\
             # TYPE noc_flit_hops counter\n\
             noc_flit_hops 42\n\
             # HELP soc_dram_reads Simulator counter soc.dram_reads.\n\
             # TYPE soc_dram_reads counter\n\
             soc_dram_reads 12\n"
        );
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("soc.dram_reads"), "soc_dram_reads");
        assert_eq!(prometheus_name("noc.plane-0/hops"), "noc_plane_0_hops");
        assert_eq!(prometheus_name("0weird"), "_0weird");
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut reg = CounterRegistry::new();
        reg.add("soc.dram_reads", u64::MAX);
        reg.add("noc.flit_hops", 42);
        let json = reg.snapshot().to_json();
        let text = serde_json::to_string(&json).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["soc.dram_reads"].as_u64(), Some(u64::MAX));
        assert_eq!(back["noc.flit_hops"].as_u64(), Some(42));
    }
}
