//! Counter time-series sampling (flat CSV / JSON export).

use crate::counters::CounterSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One sampled row: a counter snapshot at a cycle.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleRow {
    /// Simulated cycle of the sample.
    pub cycle: u64,
    /// Counter values at that cycle.
    pub snapshot: CounterSnapshot,
}

/// A sequence of counter snapshots taken every N cycles.
///
/// The driver (e.g. `Soc::tick`) checks [`due`](CounterSeries::due)
/// and calls [`record`](CounterSeries::record); this struct only
/// stores and exports.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSeries {
    every: u64,
    rows: Vec<SampleRow>,
}

impl CounterSeries {
    /// Creates a series sampling every `every` cycles (min 1).
    pub fn new(every: u64) -> Self {
        CounterSeries {
            every: every.max(1),
            rows: Vec::new(),
        }
    }

    /// The sampling period in cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// True when `cycle` falls on the sampling grid.
    #[inline]
    pub fn due(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.every)
    }

    /// Appends one sample.
    pub fn record(&mut self, cycle: u64, snapshot: CounterSnapshot) {
        self.rows.push(SampleRow { cycle, snapshot });
    }

    /// All samples in record order.
    pub fn rows(&self) -> &[SampleRow] {
        &self.rows
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Union of counter names across all samples, sorted.
    fn columns(&self) -> Vec<String> {
        let mut names = BTreeSet::new();
        for row in &self.rows {
            for name in row.snapshot.names() {
                names.insert(name.to_string());
            }
        }
        names.into_iter().collect()
    }

    /// Renders `cycle,<counter...>` CSV. Counters missing from a given
    /// sample render as 0.
    pub fn to_csv(&self) -> String {
        let columns = self.columns();
        let mut out = String::from("cycle");
        for c in &columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.cycle.to_string());
            for c in &columns {
                out.push(',');
                out.push_str(&row.snapshot.get(c).to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Renders an array of flat JSON objects (`cycle` plus counters).
    pub fn to_json(&self) -> serde_json::Value {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let mut map = serde_json::Map::new();
                map.insert("cycle".to_string(), serde_json::Value::from(row.cycle));
                for (name, value) in row.snapshot.iter() {
                    map.insert(name.to_string(), serde_json::Value::from(value));
                }
                serde_json::Value::Object(map)
            })
            .collect();
        serde_json::Value::Array(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterRegistry;

    #[test]
    fn csv_has_union_columns() {
        let mut series = CounterSeries::new(100);
        assert!(series.due(0));
        assert!(!series.due(150));
        assert!(series.due(200));

        let mut reg = CounterRegistry::new();
        reg.add("a", 1);
        series.record(0, reg.snapshot());
        reg.add("b", 2);
        series.record(100, reg.snapshot());

        let csv = series.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,a,b");
        assert_eq!(lines[1], "0,1,0");
        assert_eq!(lines[2], "100,1,2");
    }

    #[test]
    fn json_rows_parse_back() {
        let mut series = CounterSeries::new(10);
        let mut reg = CounterRegistry::new();
        reg.add("hits", 3);
        series.record(10, reg.snapshot());
        let text = serde_json::to_string(&series.to_json()).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        let rows = back.as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["cycle"].as_u64(), Some(10));
        assert_eq!(rows[0]["hits"].as_u64(), Some(3));
    }

    #[test]
    fn zero_period_clamps_to_one() {
        let series = CounterSeries::new(0);
        assert_eq!(series.every(), 1);
        assert!(series.due(7));
    }
}
