//! Typed trace events and their timestamps.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A tile position on the 2D mesh (mirrors `esp4ml_noc::Coord` without
/// depending on it — the NoC crate depends on *this* crate).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct TileCoord {
    /// Column.
    pub x: u8,
    /// Row.
    pub y: u8,
}

impl TileCoord {
    /// Creates a coordinate.
    pub fn new(x: u8, y: u8) -> Self {
        TileCoord { x, y }
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(u8, u8)> for TileCoord {
    fn from((x, y): (u8, u8)) -> Self {
        TileCoord { x, y }
    }
}

/// Direction of a DRAM burst as seen by a memory tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaKind {
    /// DRAM read burst (accelerator load path).
    Read,
    /// DRAM write burst (accelerator store path).
    Write,
}

impl DmaKind {
    /// Short lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            DmaKind::Read => "read",
            DmaKind::Write => "write",
        }
    }
}

/// One structured simulator event.
///
/// The schema is documented in DESIGN.md; exporters in this crate map
/// each variant onto Chrome `trace_event` rows.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Marks the start of a labelled run; exporters open a new Perfetto
    /// process for everything until the next `RunStart`.
    RunStart {
        /// Human-readable run label (e.g. "fig7 NV&Cl p2p").
        label: String,
    },
    /// An accelerator socket FSM moved between phases.
    AccelPhaseChange {
        /// Accelerator instance name.
        accel: String,
        /// Phase being left.
        from: &'static str,
        /// Phase being entered.
        to: &'static str,
        /// Global frame id the socket is working on (`None` when the
        /// transition leaves the batch, e.g. into `idle`/`done`).
        frame: Option<u64>,
    },
    /// A memory tile serviced a DRAM burst.
    DmaBurst {
        /// Read or write.
        kind: DmaKind,
        /// Burst length in words.
        words: u64,
        /// Modelled DRAM latency in cycles.
        latency: u64,
        /// Global frame id the burst belongs to, when the requesting
        /// packet carried one.
        frame: Option<u64>,
    },
    /// An accelerator streamed a frame directly to a consumer tile
    /// (point-to-point, bypassing DRAM).
    P2pTransfer {
        /// Consumer tile.
        dest: TileCoord,
        /// Payload words sent.
        words: u64,
        /// Global frame id of the transferred frame.
        frame: Option<u64>,
    },
    /// A packet entered a NoC plane at the source tile.
    NocPacketInject {
        /// NoC plane index.
        plane: usize,
        /// Global frame id carried by the packet, if any.
        frame: Option<u64>,
    },
    /// A packet was fully ejected at its destination tile.
    NocPacketEject {
        /// NoC plane index.
        plane: usize,
        /// End-to-end packet latency in cycles.
        latency: u64,
        /// Global frame id carried by the packet, if any.
        frame: Option<u64>,
    },
    /// An accelerator TLB lookup missed and paid a refill penalty.
    TlbMiss {
        /// Stall cycles charged.
        penalty: u64,
    },
    /// The runtime issued an ioctl-equivalent command to a device.
    IoctlIssue {
        /// Device name.
        device: String,
    },
    /// An accelerator finished one frame.
    FrameComplete {
        /// Accelerator instance name.
        accel: String,
        /// Global zero-based frame id within the run (latched from
        /// `FRAME_BASE_REG`/`FRAME_STRIDE_REG` by the socket).
        frame: u64,
    },
    /// A scheduled hardware fault fired (fault-injection layer).
    FaultInjected {
        /// Stable fault-kind label (e.g. "accel_hang").
        fault: &'static str,
        /// Human-readable description of what broke.
        detail: String,
    },
    /// The runtime's watchdog expired and a retry was scheduled.
    RetryScheduled {
        /// Device being retried.
        device: String,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Backoff cycles burned before the retry.
        backoff: u64,
    },
    /// The runtime gave up on a device and remapped its work.
    FailedOver {
        /// Device that was abandoned.
        from: String,
        /// Replacement ("spare" device name, or "software" for the
        /// processor-tile fallback).
        to: String,
    },
}

impl TraceEvent {
    /// Short kind label (stable; used by exporters and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::AccelPhaseChange { .. } => "accel_phase_change",
            TraceEvent::DmaBurst { .. } => "dma_burst",
            TraceEvent::P2pTransfer { .. } => "p2p_transfer",
            TraceEvent::NocPacketInject { .. } => "noc_packet_inject",
            TraceEvent::NocPacketEject { .. } => "noc_packet_eject",
            TraceEvent::TlbMiss { .. } => "tlb_miss",
            TraceEvent::IoctlIssue { .. } => "ioctl_issue",
            TraceEvent::FrameComplete { .. } => "frame_complete",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::RetryScheduled { .. } => "retry_scheduled",
            TraceEvent::FailedOver { .. } => "failed_over",
        }
    }
}

/// A [`TraceEvent`] plus when and where it happened.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// Tile that produced the event.
    pub source: TileCoord,
    /// The event payload.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_display() {
        assert_eq!(TileCoord::new(2, 3).to_string(), "(2,3)");
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            TraceEvent::RunStart {
                label: String::new(),
            }
            .kind(),
            TraceEvent::TlbMiss { penalty: 1 }.kind(),
            TraceEvent::NocPacketInject {
                plane: 0,
                frame: None,
            }
            .kind(),
        ];
        assert_eq!(
            kinds.len(),
            kinds.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
