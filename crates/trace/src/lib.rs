//! Cycle-level observability for the ESP4ML simulator.
//!
//! The simulator's legacy stats (`SocStats`, `NocStats`, `RunMetrics`)
//! are end-of-run aggregates: they say *how much* happened but never
//! *when*. This crate adds the missing timeline layer, mirroring the
//! per-tile performance monitors of the real ESP platform:
//!
//! - [`TraceEvent`] / [`TimedEvent`]: typed events (accelerator phase
//!   changes, DMA bursts, p2p transfers, NoC inject/eject, TLB misses,
//!   ioctls, frame completions) stamped with the simulated cycle and
//!   source tile coordinate.
//! - [`Tracer`]: a cheaply cloneable handle distributed into every
//!   simulator component. Disabled tracing is a single `Option`
//!   branch — no allocation, no locking, no event construction
//!   (event payloads are built inside a closure that only runs when
//!   enabled).
//! - [`TraceSink`] / [`RingBufferSink`]: bounded event storage that
//!   drops the oldest events under pressure rather than growing.
//! - [`CounterRegistry`] / [`CounterSnapshot`]: named monotonic
//!   counters and gauges behind one snapshot/diff API, subsuming the
//!   ad-hoc stats structs.
//! - [`perfetto`]: Chrome `trace_event` JSON export (open the file at
//!   ui.perfetto.dev) with one track per tile and one per NoC plane.
//! - [`CounterSeries`]: a flat CSV/JSON time-series of counter
//!   snapshots taken every N cycles.
//! - [`profile`]: online bottleneck analysis — per-frame latency
//!   [`Histogram`]s, per-tile time-in-state utilization, and a
//!   critical-path report, built by a [`ProfileCollector`] that
//!   consumes the event stream as it is produced.
//! - [`span`]: causal frame-level span trees — every frame's
//!   end-to-end latency is attributed cycle-exactly to compute, DMA,
//!   NoC, queueing, and retry spans, with a [`CriticalPath`] report
//!   that provably agrees with the profiler's bottleneck selection.
//! - [`schema`]: the versioned `schema_version` envelope wrapped
//!   around every machine-readable JSON artifact the workspace emits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod event;
mod metrics;
pub mod perfetto;
pub mod profile;
pub mod schema;
mod sink;
pub mod span;
mod timeseries;
mod tracer;

pub use counters::{prometheus_name, CounterRegistry, CounterSnapshot};
pub use event::{DmaKind, TileCoord, TimedEvent, TraceEvent};
pub use metrics::frames_per_second;
pub use profile::{Histogram, ProfileCollector, RunProfile};
pub use sink::{RingBufferSink, TraceSink};
pub use span::{CriticalPath, FrameSpans, SpanCollector, SpanKind, SpanReport};
pub use timeseries::{CounterSeries, SampleRow};
pub use tracer::Tracer;
