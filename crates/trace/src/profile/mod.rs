//! Online profiling layer: consumes the [`TraceEvent`] stream as it is
//! produced (no post-hoc trace file required) and reconstructs
//! per-frame latency spans, per-tile time-in-state utilization, and a
//! throughput bottleneck report.
//!
//! The collector attaches to a [`Tracer`] by wrapping its sink in a
//! [`ProfilingSink`]: every recorded event is observed into shared
//! profile state *and* forwarded to the inner sink, so Perfetto export
//! and profiling coexist on one event stream.
//!
//! Engine safety: both `SocEngine::Naive` and `SocEngine::EventDriven`
//! emit identical event streams at identical cycles (the PR 2
//! equivalence contract), and all profile state is derived purely from
//! those events plus the final cycle count — so fast-forwarded runs
//! produce byte-identical reports, which `tests/equivalence.rs`
//! enforces on every experiment grid point.

mod histogram;

pub use histogram::Histogram;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::event::{DmaKind, TileCoord, TimedEvent, TraceEvent};
use crate::sink::{RingBufferSink, TraceSink};
use crate::tracer::Tracer;

/// Cycles attributed to the four coarse utilization classes.
///
/// Accelerator socket FSM states map onto classes as follows:
/// `compute` is busy; `load_issue`/`load_wait`/`store_issue` are
/// DMA-path stalls (waiting on data-in or issuing data-out); the p2p
/// service states `store_wait_req`/`store_send`/`store_wait_ack` are
/// NoC stalls; `idle`/`done` (and anything unrecognized) are idle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateBreakdown {
    /// Cycles spent computing.
    pub busy: u64,
    /// Cycles stalled on the DMA/load path.
    pub dma_stall: u64,
    /// Cycles stalled on NoC point-to-point service.
    pub noc_stall: u64,
    /// Cycles idle (no frame in flight).
    pub idle: u64,
}

impl StateBreakdown {
    /// Attributes `cycles` spent in FSM state `state` to its class.
    pub fn add_state(&mut self, state: &str, cycles: u64) {
        match state {
            "compute" => self.busy += cycles,
            "load_issue" | "load_wait" | "store_issue" => self.dma_stall += cycles,
            "store_wait_req" | "store_send" | "store_wait_ack" => self.noc_stall += cycles,
            _ => self.idle += cycles,
        }
    }

    /// Sums the cycles of another breakdown into this one.
    pub fn merge(&mut self, other: &StateBreakdown) {
        self.busy += other.busy;
        self.dma_stall += other.dma_stall;
        self.noc_stall += other.noc_stall;
        self.idle += other.idle;
    }

    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.dma_stall + self.noc_stall + self.idle
    }
}

/// Per-accelerator-instance utilization profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AccelProfile {
    /// Mesh tile hosting the instance.
    pub tile: TileCoord,
    /// Frames completed by this instance.
    pub frames: u64,
    /// Inter-completion service intervals (frame 0 measured from run
    /// start, so it includes initial load/fill).
    pub service: Histogram,
    /// Exact cycles spent in each FSM state, by state name.
    pub states: BTreeMap<String, u64>,
    /// The state cycles folded into busy/DMA-stall/NoC-stall/idle.
    pub breakdown: StateBreakdown,
}

/// Aggregated profile for one pipeline stage (a group of parallel
/// instances executing the same kernel).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Stage name (kernel name with instance suffix stripped).
    pub name: String,
    /// Member instance names.
    pub instances: Vec<String>,
    /// Number of parallel instances.
    pub width: usize,
    /// Frames completed across all instances.
    pub frames: u64,
    /// Compute cycles summed across all instances.
    pub busy_cycles: u64,
    /// Utilization breakdown summed across all instances.
    pub breakdown: StateBreakdown,
    /// Throughput lower bound contributed by this stage:
    /// `busy_cycles / frames / width` cycles per frame.
    pub bound_cycles_per_frame: f64,
}

/// Names the stage limiting throughput and the ceiling on speedup
/// obtainable by relieving it (pipeline critical-path analysis).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BottleneckReport {
    /// Stage with the highest compute bound.
    pub limiting_stage: String,
    /// The limiting stage's bound in cycles per frame.
    pub bound_cycles_per_frame: f64,
    /// Second-highest stage bound (equals the limiting bound when the
    /// pipeline has a single stage).
    pub next_bound_cycles_per_frame: f64,
    /// Measured end-to-end cycles per frame.
    pub observed_cycles_per_frame: f64,
    /// Fraction of the run the limiting stage spent computing.
    pub busy_fraction: f64,
    /// `observed / next_bound`: throughput gain ceiling from fully
    /// relieving the limiting stage.
    pub speedup_ceiling: f64,
}

/// Complete profile of one labelled run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunProfile {
    /// Run label (from the `RunStart` event).
    pub label: String,
    /// Cycle of the `RunStart` event.
    pub start_cycle: u64,
    /// Cycle at which the run was closed.
    pub end_cycle: u64,
    /// End-to-end frames delivered by the final pipeline stage.
    pub frames: u64,
    /// Inter-departure intervals at the final stage (frame 0 from run
    /// start): the per-frame end-to-end latency distribution.
    pub pipeline: Histogram,
    /// Per-stage aggregates in pipeline order.
    pub stages: Vec<StageProfile>,
    /// Per-instance utilization profiles.
    pub accels: BTreeMap<String, AccelProfile>,
    /// NoC packet end-to-end latency histograms keyed by plane index.
    pub noc_latency: BTreeMap<usize, Histogram>,
    /// DRAM read burst latency distribution.
    pub dma_read: Histogram,
    /// DRAM write burst latency distribution.
    pub dma_write: Histogram,
    /// Words moved point-to-point (DRAM bypass).
    pub p2p_words: u64,
    /// TLB misses observed.
    pub tlb_misses: u64,
    /// Critical-path analysis, when at least one stage completed frames.
    pub bottleneck: Option<BottleneckReport>,
}

impl RunProfile {
    /// Run length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Measured end-to-end cycles per frame (0.0 when no frames).
    pub fn observed_cycles_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.cycles() as f64 / self.frames as f64
        }
    }

    /// Renders the human-readable bottleneck report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let cycles = self.cycles();
        out.push_str(&format!(
            "run \"{}\": {} cycles, {} frames ({:.1} cycles/frame)\n",
            self.label,
            cycles,
            self.frames,
            self.observed_cycles_per_frame()
        ));
        out.push_str(&format!("frame latency: {}\n", self.pipeline.summary()));
        if !self.stages.is_empty() {
            out.push_str(&format!(
                "{:<12} {:>5} {:>7} {:>10} {:>7} {:>7} {:>7} {:>7}\n",
                "stage", "width", "frames", "bound/frm", "busy%", "dma%", "noc%", "idle%"
            ));
            for s in &self.stages {
                let denom = (s.width as u64 * cycles).max(1) as f64;
                out.push_str(&format!(
                    "{:<12} {:>5} {:>7} {:>10.1} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%\n",
                    s.name,
                    s.width,
                    s.frames,
                    s.bound_cycles_per_frame,
                    100.0 * s.breakdown.busy as f64 / denom,
                    100.0 * s.breakdown.dma_stall as f64 / denom,
                    100.0 * s.breakdown.noc_stall as f64 / denom,
                    100.0 * s.breakdown.idle as f64 / denom,
                ));
            }
        }
        if let Some(b) = &self.bottleneck {
            out.push_str(&format!(
                "bottleneck: stage \"{}\" bounds throughput at {:.1} cycles/frame\n",
                b.limiting_stage, b.bound_cycles_per_frame
            ));
            out.push_str(&format!(
                "  observed {:.1} cycles/frame; busy fraction {:.1}%; \
                 relieving it caps gains at {:.2}x (next bound {:.1})\n",
                b.observed_cycles_per_frame,
                100.0 * b.busy_fraction,
                b.speedup_ceiling,
                b.next_bound_cycles_per_frame
            ));
        }
        if self.p2p_words > 0 || self.tlb_misses > 0 {
            out.push_str(&format!(
                "p2p words: {}  tlb misses: {}\n",
                self.p2p_words, self.tlb_misses
            ));
        }
        if !self.dma_read.is_empty() {
            out.push_str(&format!("dma read latency: {}\n", self.dma_read.summary()));
        }
        if !self.dma_write.is_empty() {
            out.push_str(&format!(
                "dma write latency: {}\n",
                self.dma_write.summary()
            ));
        }
        out
    }
}

/// Accumulator for one accelerator instance while its run is open.
#[derive(Debug)]
struct AccelAccum {
    tile: TileCoord,
    cur_state: String,
    last_change: u64,
    states: BTreeMap<String, u64>,
    frames: u64,
    last_done: u64,
    service: Histogram,
}

impl AccelAccum {
    fn new(tile: TileCoord, initial_state: &str, since: u64) -> Self {
        AccelAccum {
            tile,
            cur_state: initial_state.to_string(),
            last_change: since,
            states: BTreeMap::new(),
            frames: 0,
            last_done: 0,
            service: Histogram::new(),
        }
    }

    fn charge(&mut self, until: u64) {
        let delta = until.saturating_sub(self.last_change);
        if delta > 0 {
            *self.states.entry(self.cur_state.clone()).or_insert(0) += delta;
        }
        self.last_change = until;
    }
}

/// Accumulator for one open run.
#[derive(Debug)]
struct RunAccum {
    label: String,
    start_cycle: u64,
    groups: Vec<(String, Vec<String>)>,
    final_members: BTreeSet<String>,
    accels: BTreeMap<String, AccelAccum>,
    pipeline: Histogram,
    pipeline_frames: u64,
    last_departure: u64,
    noc_latency: BTreeMap<usize, Histogram>,
    dma_read: Histogram,
    dma_write: Histogram,
    p2p_words: u64,
    tlb_misses: u64,
}

impl RunAccum {
    fn new(label: String, start_cycle: u64, groups: Vec<(String, Vec<String>)>) -> Self {
        let final_members = groups
            .last()
            .map(|(_, members)| members.iter().cloned().collect())
            .unwrap_or_default();
        RunAccum {
            label,
            start_cycle,
            groups,
            final_members,
            accels: BTreeMap::new(),
            pipeline: Histogram::new(),
            pipeline_frames: 0,
            last_departure: start_cycle,
            noc_latency: BTreeMap::new(),
            dma_read: Histogram::new(),
            dma_write: Histogram::new(),
            p2p_words: 0,
            tlb_misses: 0,
        }
    }

    fn observe(&mut self, ev: &TimedEvent) {
        match &ev.event {
            TraceEvent::AccelPhaseChange {
                accel, from, to, ..
            } => {
                let start = self.start_cycle;
                let acc = self
                    .accels
                    .entry(accel.clone())
                    .or_insert_with(|| AccelAccum::new(ev.source, from, start));
                acc.tile = ev.source;
                acc.charge(ev.cycle);
                acc.cur_state = (*to).to_string();
            }
            TraceEvent::FrameComplete { accel, .. } => {
                let start = self.start_cycle;
                let acc = self
                    .accels
                    .entry(accel.clone())
                    .or_insert_with(|| AccelAccum::new(ev.source, "idle", start));
                let since = if acc.frames == 0 {
                    self.start_cycle
                } else {
                    acc.last_done
                };
                acc.service.record(ev.cycle.saturating_sub(since));
                acc.frames += 1;
                acc.last_done = ev.cycle;
                if self.final_members.contains(accel) {
                    self.pipeline
                        .record(ev.cycle.saturating_sub(self.last_departure));
                    self.pipeline_frames += 1;
                    self.last_departure = ev.cycle;
                }
            }
            TraceEvent::DmaBurst { kind, latency, .. } => match kind {
                DmaKind::Read => self.dma_read.record(*latency),
                DmaKind::Write => self.dma_write.record(*latency),
            },
            TraceEvent::NocPacketEject { plane, latency, .. } => {
                self.noc_latency.entry(*plane).or_default().record(*latency);
            }
            TraceEvent::P2pTransfer { words, .. } => self.p2p_words += *words,
            TraceEvent::TlbMiss { .. } => self.tlb_misses += 1,
            TraceEvent::RunStart { .. }
            | TraceEvent::NocPacketInject { .. }
            | TraceEvent::IoctlIssue { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::RetryScheduled { .. }
            | TraceEvent::FailedOver { .. } => {}
        }
    }

    fn close(mut self, end_cycle: u64) -> RunProfile {
        for acc in self.accels.values_mut() {
            acc.charge(end_cycle);
        }

        let accels: BTreeMap<String, AccelProfile> = self
            .accels
            .iter()
            .map(|(name, acc)| {
                let mut breakdown = StateBreakdown::default();
                for (state, cycles) in &acc.states {
                    breakdown.add_state(state, *cycles);
                }
                (
                    name.clone(),
                    AccelProfile {
                        tile: acc.tile,
                        frames: acc.frames,
                        service: acc.service.clone(),
                        states: acc.states.clone(),
                        breakdown,
                    },
                )
            })
            .collect();

        // Without stage groups (replayed sinks), treat each instance as
        // its own single-width stage and use the instance that finished
        // last as the pipeline sink.
        let groups: Vec<(String, Vec<String>)> = if self.groups.is_empty() {
            accels
                .keys()
                .map(|name| (name.clone(), vec![name.clone()]))
                .collect()
        } else {
            std::mem::take(&mut self.groups)
        };

        let (pipeline, frames) = if self.final_members.is_empty() {
            let sink = self
                .accels
                .iter()
                .max_by_key(|(name, acc)| (acc.last_done, std::cmp::Reverse(name.as_str())))
                .map(|(name, _)| name.clone());
            match sink.and_then(|name| accels.get(&name)) {
                Some(p) => (p.service.clone(), p.frames),
                None => (Histogram::new(), 0),
            }
        } else {
            (self.pipeline.clone(), self.pipeline_frames)
        };

        let stages: Vec<StageProfile> = groups
            .iter()
            .map(|(name, members)| {
                let mut breakdown = StateBreakdown::default();
                let mut stage_frames = 0u64;
                for member in members {
                    if let Some(p) = accels.get(member) {
                        breakdown.merge(&p.breakdown);
                        stage_frames += p.frames;
                    }
                }
                let width = members.len().max(1);
                let bound = if stage_frames == 0 {
                    0.0
                } else {
                    breakdown.busy as f64 / stage_frames as f64 / width as f64
                };
                StageProfile {
                    name: name.clone(),
                    instances: members.clone(),
                    width,
                    frames: stage_frames,
                    busy_cycles: breakdown.busy,
                    breakdown,
                    bound_cycles_per_frame: bound,
                }
            })
            .collect();

        let run_cycles = end_cycle.saturating_sub(self.start_cycle);
        let bottleneck = {
            let candidates: Vec<&StageProfile> = stages.iter().filter(|s| s.frames > 0).collect();
            if candidates.is_empty() || frames == 0 || run_cycles == 0 {
                None
            } else {
                let mut limiting = candidates[0];
                for s in &candidates[1..] {
                    if s.bound_cycles_per_frame > limiting.bound_cycles_per_frame {
                        limiting = *s;
                    }
                }
                let next_bound = candidates
                    .iter()
                    .filter(|s| !std::ptr::eq(**s, limiting))
                    .map(|s| s.bound_cycles_per_frame)
                    .fold(f64::NEG_INFINITY, f64::max);
                let next_bound = if next_bound.is_finite() {
                    next_bound
                } else {
                    limiting.bound_cycles_per_frame
                };
                let observed = run_cycles as f64 / frames as f64;
                Some(BottleneckReport {
                    limiting_stage: limiting.name.clone(),
                    bound_cycles_per_frame: limiting.bound_cycles_per_frame,
                    next_bound_cycles_per_frame: next_bound,
                    observed_cycles_per_frame: observed,
                    busy_fraction: limiting.breakdown.busy as f64
                        / (limiting.width as u64 * run_cycles) as f64,
                    speedup_ceiling: if next_bound > 0.0 {
                        observed / next_bound
                    } else {
                        1.0
                    },
                })
            }
        };

        RunProfile {
            label: self.label,
            start_cycle: self.start_cycle,
            end_cycle,
            frames,
            pipeline,
            stages,
            accels,
            noc_latency: self.noc_latency,
            dma_read: self.dma_read,
            dma_write: self.dma_write,
            p2p_words: self.p2p_words,
            tlb_misses: self.tlb_misses,
            bottleneck,
        }
    }
}

#[derive(Debug, Default)]
struct ProfileState {
    pending_groups: Option<Vec<(String, Vec<String>)>>,
    current: Option<RunAccum>,
    finished: Vec<RunProfile>,
}

impl ProfileState {
    fn observe(&mut self, ev: &TimedEvent) {
        if let TraceEvent::RunStart { label } = &ev.event {
            if let Some(open) = self.current.take() {
                self.finished.push(open.close(ev.cycle));
            }
            let groups = self.pending_groups.take().unwrap_or_default();
            self.current = Some(RunAccum::new(label.clone(), ev.cycle, groups));
            return;
        }
        if let Some(run) = self.current.as_mut() {
            run.observe(ev);
        }
    }
}

/// Shared handle onto online profile state.
///
/// Clone it freely: all clones observe into the same state. Typical
/// wiring is [`ProfileCollector::ring_buffer_tracer`], which returns a
/// [`Tracer`] whose sink both profiles and buffers events.
#[derive(Clone, Debug, Default)]
pub struct ProfileCollector {
    state: Arc<Mutex<ProfileState>>,
}

impl ProfileCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the pipeline stage groups (stage name plus member
    /// instance names, in pipeline order) for the *next* run started.
    /// Without groups the collector falls back to treating every
    /// instance as its own stage.
    pub fn set_stage_groups(&self, groups: Vec<(String, Vec<String>)>) {
        self.lock().pending_groups = Some(groups);
    }

    /// Feeds one event into the profile state.
    pub fn observe(&self, ev: &TimedEvent) {
        self.lock().observe(ev);
    }

    /// Replays a drained event stream (e.g. from a sink) in order.
    pub fn observe_all(&self, events: &[TimedEvent]) {
        let mut state = self.lock();
        for ev in events {
            state.observe(ev);
        }
    }

    /// Closes the open run at `end_cycle`, returning its profile (also
    /// retained in [`ProfileCollector::take_reports`]). `None` when no
    /// run is open.
    pub fn close_run(&self, end_cycle: u64) -> Option<RunProfile> {
        let mut state = self.lock();
        let profile = state.current.take()?.close(end_cycle);
        state.finished.push(profile.clone());
        Some(profile)
    }

    /// Removes and returns all closed run profiles in completion order.
    pub fn take_reports(&self) -> Vec<RunProfile> {
        std::mem::take(&mut self.lock().finished)
    }

    /// Wraps `inner` so every recorded event is profiled and forwarded.
    pub fn sink(&self, inner: Box<dyn TraceSink>) -> ProfilingSink {
        ProfilingSink {
            state: Arc::clone(&self.state),
            inner,
        }
    }

    /// Builds an enabled [`Tracer`] whose sink profiles online and
    /// buffers events in a default-capacity [`RingBufferSink`].
    pub fn ring_buffer_tracer(&self) -> Tracer {
        Tracer::with_sink(Box::new(self.sink(Box::<RingBufferSink>::default())))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProfileState> {
        self.state.lock().expect("profile state poisoned")
    }
}

/// A [`TraceSink`] adapter that observes each event into a
/// [`ProfileCollector`] before forwarding it to an inner sink.
pub struct ProfilingSink {
    state: Arc<Mutex<ProfileState>>,
    inner: Box<dyn TraceSink>,
}

impl std::fmt::Debug for ProfilingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfilingSink")
            .field("inner_len", &self.inner.len())
            .finish()
    }
}

impl TraceSink for ProfilingSink {
    fn record(&mut self, event: TimedEvent) {
        self.state
            .lock()
            .expect("profile state poisoned")
            .observe(&event);
        self.inner.record(event);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dropped(&self) -> u64 {
        self.inner.dropped()
    }

    fn dropped_spans(&self) -> u64 {
        self.inner.dropped_spans()
    }

    fn drain(&mut self) -> Vec<TimedEvent> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(cycle: u64, event: TraceEvent) -> TimedEvent {
        TimedEvent {
            cycle,
            source: TileCoord::new(1, 1),
            event,
        }
    }

    fn phase(cycle: u64, accel: &str, from: &'static str, to: &'static str) -> TimedEvent {
        at(
            cycle,
            TraceEvent::AccelPhaseChange {
                accel: accel.to_string(),
                from,
                to,
                frame: None,
            },
        )
    }

    fn frame(cycle: u64, accel: &str, frame: u64) -> TimedEvent {
        at(
            cycle,
            TraceEvent::FrameComplete {
                accel: accel.to_string(),
                frame,
            },
        )
    }

    fn run_start(cycle: u64, label: &str) -> TimedEvent {
        at(
            cycle,
            TraceEvent::RunStart {
                label: label.to_string(),
            },
        )
    }

    #[test]
    fn time_in_state_accounts_every_cycle() {
        let c = ProfileCollector::new();
        c.observe(&run_start(0, "t"));
        c.observe(&phase(10, "nv0", "idle", "load_wait"));
        c.observe(&phase(30, "nv0", "load_wait", "compute"));
        c.observe(&phase(100, "nv0", "compute", "store_issue"));
        c.observe(&phase(110, "nv0", "store_issue", "idle"));
        c.observe(&frame(110, "nv0", 0));
        let p = c.close_run(150).expect("run open");
        let acc = &p.accels["nv0"];
        assert_eq!(acc.states["idle"], 10 + 40);
        assert_eq!(acc.states["load_wait"], 20);
        assert_eq!(acc.states["compute"], 70);
        assert_eq!(acc.states["store_issue"], 10);
        assert_eq!(acc.breakdown.busy, 70);
        assert_eq!(acc.breakdown.dma_stall, 30);
        assert_eq!(acc.breakdown.noc_stall, 0);
        assert_eq!(acc.breakdown.idle, 50);
        assert_eq!(acc.breakdown.total(), 150);
    }

    #[test]
    fn pipeline_spans_use_final_stage_departures() {
        let c = ProfileCollector::new();
        c.set_stage_groups(vec![
            ("nv".to_string(), vec!["nv0".to_string()]),
            ("cl".to_string(), vec!["cl0".to_string()]),
        ]);
        c.observe(&run_start(0, "t"));
        c.observe(&frame(100, "nv0", 0));
        c.observe(&frame(140, "cl0", 0)); // fill: 140 from start
        c.observe(&frame(200, "nv0", 1));
        c.observe(&frame(240, "cl0", 1)); // steady: 100 apart
        let p = c.close_run(260).expect("run open");
        assert_eq!(p.frames, 2);
        assert_eq!(p.pipeline.count(), 2);
        assert_eq!(p.pipeline.max(), 140);
        assert_eq!(p.pipeline.sum(), 140 + 100);
        // nv's completions are not pipeline departures.
        assert_eq!(p.accels["nv0"].frames, 2);
    }

    #[test]
    fn bottleneck_names_slowest_stage() {
        let c = ProfileCollector::new();
        c.set_stage_groups(vec![
            ("fast".to_string(), vec!["a".to_string()]),
            ("slow".to_string(), vec!["b".to_string()]),
        ]);
        c.observe(&run_start(0, "t"));
        // a: 100 busy cycles over 2 frames; b: 300 busy cycles over 2.
        c.observe(&phase(0, "a", "idle", "compute"));
        c.observe(&phase(100, "a", "compute", "idle"));
        c.observe(&frame(100, "a", 0));
        c.observe(&frame(150, "a", 1));
        c.observe(&phase(100, "b", "idle", "compute"));
        c.observe(&phase(400, "b", "compute", "idle"));
        c.observe(&frame(250, "b", 0));
        c.observe(&frame(400, "b", 1));
        let p = c.close_run(400).expect("run open");
        let b = p.bottleneck.expect("bottleneck");
        assert_eq!(b.limiting_stage, "slow");
        assert_eq!(b.bound_cycles_per_frame, 150.0);
        assert_eq!(b.next_bound_cycles_per_frame, 50.0);
        assert_eq!(b.observed_cycles_per_frame, 200.0);
        assert!(b.speedup_ceiling > 1.0);
    }

    #[test]
    fn replay_without_groups_falls_back_to_sink_instance() {
        let c = ProfileCollector::new();
        c.observe(&run_start(0, "replay"));
        c.observe(&frame(50, "up", 0));
        c.observe(&frame(80, "down", 0));
        c.observe(&frame(150, "up", 1));
        c.observe(&frame(180, "down", 1));
        let p = c.close_run(200).expect("run open");
        // "down" finishes last => it is the pipeline sink.
        assert_eq!(p.frames, 2);
        assert_eq!(p.pipeline.sum(), 80 + 100);
        assert_eq!(p.stages.len(), 2);
    }

    #[test]
    fn run_start_closes_previous_run() {
        let c = ProfileCollector::new();
        c.observe(&run_start(0, "first"));
        c.observe(&frame(10, "x", 0));
        c.observe(&run_start(100, "second"));
        c.observe(&frame(110, "x", 0));
        c.close_run(200);
        let reports = c.take_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].label, "first");
        assert_eq!(reports[0].end_cycle, 100);
        assert_eq!(reports[1].label, "second");
        assert_eq!(reports[1].end_cycle, 200);
        assert!(c.take_reports().is_empty());
    }

    #[test]
    fn profiling_sink_forwards_and_profiles() {
        let c = ProfileCollector::new();
        let tracer = c.ring_buffer_tracer();
        tracer.emit(0, TileCoord::new(0, 0), || TraceEvent::RunStart {
            label: "s".to_string(),
        });
        tracer.emit(5, TileCoord::new(0, 0), || TraceEvent::TlbMiss {
            penalty: 7,
        });
        let p = c.close_run(10).expect("run open");
        assert_eq!(p.tlb_misses, 1);
        assert_eq!(tracer.len(), 2); // events still buffered for export
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn render_text_names_bottleneck() {
        let c = ProfileCollector::new();
        c.set_stage_groups(vec![("only".to_string(), vec!["k".to_string()])]);
        c.observe(&run_start(0, "t"));
        c.observe(&phase(0, "k", "idle", "compute"));
        c.observe(&phase(90, "k", "compute", "idle"));
        c.observe(&frame(90, "k", 0));
        let p = c.close_run(100).expect("run open");
        let text = p.render_text();
        assert!(text.contains("bottleneck: stage \"only\""));
        assert!(text.contains("frame latency"));
    }

    #[test]
    fn serialized_report_is_deterministic() {
        let build = || {
            let c = ProfileCollector::new();
            c.observe(&run_start(0, "d"));
            c.observe(&phase(3, "z", "idle", "compute"));
            c.observe(&phase(9, "z", "compute", "idle"));
            c.observe(&frame(9, "z", 0));
            c.observe(&at(
                4,
                TraceEvent::NocPacketEject {
                    plane: 3,
                    latency: 11,
                    frame: None,
                },
            ));
            c.observe(&at(
                5,
                TraceEvent::DmaBurst {
                    kind: DmaKind::Read,
                    words: 16,
                    latency: 40,
                    frame: None,
                },
            ));
            serde_json::to_string(&c.close_run(20).expect("run open")).expect("serialize")
        };
        assert_eq!(build(), build());
    }
}
