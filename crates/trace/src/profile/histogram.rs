//! Log-bucketed latency histogram (HDR-style).
//!
//! Values below 32 cycles land in exact unit-width buckets; larger
//! values share an octave split into 16 log-linear sub-buckets, so the
//! relative quantization error is bounded by 1/16 at every magnitude.
//! Bucket occupancy lives in a sparse `BTreeMap` keyed by bucket index,
//! which keeps serialization deterministic (a requirement for the
//! byte-identical Naive/EventDriven profile-report contract) and the
//! memory footprint proportional to the number of distinct magnitudes
//! actually observed.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// log2 of the number of sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave; also the mantissa precision of a bucket.
const SUB: u64 = 1 << SUB_BITS;

/// Index of the bucket containing `v`.
fn bucket_index(v: u64) -> u32 {
    if v < 2 * SUB {
        // 0..=31: exact unit buckets.
        v as u32
    } else {
        let exp = 63 - v.leading_zeros();
        let mantissa = ((v >> (exp - SUB_BITS)) & (SUB - 1)) as u32;
        ((exp - SUB_BITS) << SUB_BITS) + SUB as u32 + mantissa
    }
}

/// Smallest value that maps to bucket `idx`.
fn bucket_low(idx: u32) -> u64 {
    if idx < 2 * SUB as u32 {
        u64::from(idx)
    } else {
        let b = idx - SUB as u32;
        let exp = (b >> SUB_BITS) + SUB_BITS;
        let mant = u64::from(b & (SUB as u32 - 1));
        (1u64 << exp) + (mant << (exp - SUB_BITS))
    }
}

/// Largest value that maps to bucket `idx`.
fn bucket_high(idx: u32) -> u64 {
    if idx < 2 * SUB as u32 {
        u64::from(idx)
    } else {
        bucket_low(idx + 1) - 1
    }
}

/// A log-bucketed histogram of cycle counts with exact count/sum/min/max.
///
/// Quantiles are resolved by walking the sparse bucket table to the
/// requested rank and reporting the bucket's upper bound (clamped to the
/// exact maximum), so the reported quantile always falls in the same
/// bucket as the true order statistic.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Sparse bucket occupancy, keyed by bucket index.
    buckets: BTreeMap<u32, u64>,
    /// Exact number of recorded samples.
    count: u64,
    /// Exact sum of all recorded samples.
    sum: u64,
    /// Exact minimum, `None` until a sample is recorded.
    min: Option<u64>,
    /// Exact maximum (0 until a sample is recorded).
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        self.min.unwrap_or(0)
    }

    /// Exact maximum sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the sample of rank `ceil(q * count)`, clamped to the exact
    /// maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Folds every sample of `other` into `self`, as if both streams had
    /// been recorded into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = self.max.max(other.max);
    }

    /// Cumulative bucket counts as `(upper_bound, cumulative_count)`
    /// pairs, one per occupied bucket, in ascending bound order — the
    /// shape a Prometheus histogram's `_bucket{le=…}` series wants.
    /// Every pair's count includes all samples at or below the bound,
    /// so the sequence is non-decreasing and the last entry equals
    /// [`Histogram::count`].
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cumulative = 0u64;
        for (&idx, &n) in &self.buckets {
            cumulative += n;
            out.push((bucket_high(idx), cumulative));
        }
        out
    }

    /// Renders the histogram in the Prometheus text exposition format:
    /// `# HELP`/`# TYPE histogram` headers, one cumulative
    /// `_bucket{le="…"}` sample per occupied bucket plus the mandatory
    /// `le="+Inf"` bucket, then the exact `_sum` and `_count`. `name`
    /// must already be a valid Prometheus metric name (see
    /// [`prometheus_name`](crate::prometheus_name)).
    pub fn render_prometheus(&self, name: &str, help: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (bound, cumulative) in self.cumulative_buckets() {
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count);
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {}", self.count);
        out
    }

    /// One-line summary: `count=… mean=… p50=… p90=… p99=… max=…`.
    pub fn summary(&self) -> String {
        format!(
            "count={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn from_samples(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as u32);
            assert_eq!(bucket_low(v as u32), v);
            assert_eq!(bucket_high(v as u32), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        for idx in 0..400u32 {
            let lo = bucket_low(idx);
            let hi = bucket_high(idx);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            if idx > 0 {
                assert_eq!(bucket_low(idx), bucket_high(idx - 1) + 1, "idx={idx}");
            }
        }
    }

    #[test]
    fn relative_error_bounded() {
        for &v in &[32u64, 100, 999, 78_000_000, u64::from(u32::MAX)] {
            let idx = bucket_index(v);
            let width = bucket_high(idx) - bucket_low(idx) + 1;
            assert!(width as f64 <= v as f64 / (SUB as f64 - 1.0) + 1.0, "v={v}");
        }
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_quantiles() {
        let h = from_samples(&[1000]);
        assert_eq!(h.quantile(0.0), h.quantile(1.0));
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_total() {
        let h = from_samples(&[1, 1, 5, 900, 900, 900, 70_000]);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().map(|&(_, c)| c), Some(h.count()));
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "bounds ascend");
            assert!(pair[0].1 <= pair[1].1, "counts are cumulative");
        }
        // Each cumulative count is exactly the samples <= the bound.
        for &(bound, cumulative) in &buckets {
            let exact = [1u64, 1, 5, 900, 900, 900, 70_000]
                .iter()
                .filter(|&&s| s <= bound)
                .count() as u64;
            assert_eq!(cumulative, exact, "bound {bound}");
        }
    }

    #[test]
    fn prometheus_rendering_has_cumulative_buckets_and_exact_sum() {
        let h = from_samples(&[2, 2, 7]);
        let text = h.render_prometheus("job_run_ms", "Job run duration.");
        assert_eq!(
            text,
            "# HELP job_run_ms Job run duration.\n\
             # TYPE job_run_ms histogram\n\
             job_run_ms_bucket{le=\"2\"} 2\n\
             job_run_ms_bucket{le=\"7\"} 3\n\
             job_run_ms_bucket{le=\"+Inf\"} 3\n\
             job_run_ms_sum 11\n\
             job_run_ms_count 3\n"
        );
        let empty = Histogram::new().render_prometheus("x", "Empty.");
        assert!(empty.contains("x_bucket{le=\"+Inf\"} 0\n"));
        assert!(empty.contains("x_count 0\n"));
    }

    #[test]
    fn summary_mentions_quantiles() {
        let h = from_samples(&[1, 2, 3]);
        assert!(h.summary().contains("count=3"));
        assert!(h.summary().contains("max=3"));
    }

    proptest! {
        /// Satellite: bucketed quantiles land within one bucket of the
        /// exact order statistic.
        #[test]
        fn quantiles_within_one_bucket(
            samples in proptest::collection::vec(0u64..2_000_000, 1..200),
            q_pct in 0u64..=100,
        ) {
            let h = from_samples(&samples);
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [q_pct as f64 / 100.0, 0.5, 0.99] {
                let approx = h.quantile(q);
                let exact = exact_quantile(&sorted, q);
                let delta =
                    i64::from(bucket_index(approx)) - i64::from(bucket_index(exact));
                prop_assert!(delta.abs() <= 1, "q={q} approx={approx} exact={exact}");
                // The approximation never under-reports below the exact
                // bucket's lower bound or over-reports past the max.
                prop_assert!(approx <= h.max());
            }
        }

        /// Satellite: merge(h1, h2) equals the histogram of the
        /// concatenated sample streams.
        #[test]
        fn merge_equals_concatenation(
            a in proptest::collection::vec(0u64..2_000_000, 0..100),
            b in proptest::collection::vec(0u64..2_000_000, 0..100),
        ) {
            let mut merged = from_samples(&a);
            merged.merge(&from_samples(&b));
            let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(merged, from_samples(&concat));
        }
    }
}
