//! Event storage behind the [`Tracer`](crate::Tracer) handle.

use crate::event::TimedEvent;
use std::collections::VecDeque;

/// Destination for recorded events.
///
/// Implementations must be cheap per `record` call — the tracer holds
/// the sink behind a mutex and records from the simulator hot loop
/// (only when tracing is enabled).
pub trait TraceSink: Send {
    /// Stores one event.
    fn record(&mut self, event: TimedEvent);

    /// Number of events currently held.
    fn len(&self) -> usize;

    /// True when no events are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded due to capacity pressure.
    fn dropped(&self) -> u64;

    /// Discarded events that the span assembler needed (phase changes,
    /// frame completions, run starts, recovery events). Counted
    /// separately from [`TraceSink::dropped`] so span reports can flag
    /// themselves as partial. Defaults to 0 for sinks that never drop.
    fn dropped_spans(&self) -> u64 {
        0
    }

    /// Removes and returns all held events in chronological order.
    fn drain(&mut self) -> Vec<TimedEvent>;
}

/// Whether a discarded event would have fed the span assembler.
pub(crate) fn is_span_event(event: &TimedEvent) -> bool {
    matches!(
        event.event.kind(),
        "accel_phase_change" | "frame_complete" | "run_start" | "retry_scheduled" | "failed_over"
    )
}

/// Bounded FIFO sink: keeps the most recent `capacity` events and
/// counts (rather than grows on) overflow.
#[derive(Debug)]
pub struct RingBufferSink {
    buf: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
    dropped_spans: u64,
}

impl RingBufferSink {
    /// Default capacity: generous enough to hold every event of a full
    /// `fig7` experiment sweep.
    pub const DEFAULT_CAPACITY: usize = 1 << 21;

    /// Creates a sink bounded at `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            dropped_spans: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for RingBufferSink {
    fn default() -> Self {
        RingBufferSink::new(Self::DEFAULT_CAPACITY)
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: TimedEvent) {
        if self.buf.len() == self.capacity {
            if let Some(evicted) = self.buf.pop_front() {
                if is_span_event(&evicted) {
                    self.dropped_spans += 1;
                }
            }
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    fn drain(&mut self) -> Vec<TimedEvent> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TileCoord, TraceEvent};

    fn ev(cycle: u64) -> TimedEvent {
        TimedEvent {
            cycle,
            source: TileCoord::new(0, 0),
            event: TraceEvent::NocPacketInject {
                plane: 0,
                frame: None,
            },
        }
    }

    #[test]
    fn bounded_drops_oldest() {
        let mut sink = RingBufferSink::new(3);
        for c in 0..5 {
            sink.record(ev(c));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let cycles: Vec<u64> = sink.drain().into_iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert!(sink.is_empty());
    }

    #[test]
    fn span_relevant_drops_are_counted_separately() {
        let mut sink = RingBufferSink::new(2);
        sink.record(TimedEvent {
            cycle: 0,
            source: TileCoord::new(0, 0),
            event: TraceEvent::FrameComplete {
                accel: "nv0".into(),
                frame: 0,
            },
        });
        for c in 1..4 {
            sink.record(ev(c));
        }
        // The frame completion and one packet event were evicted; only
        // the former counts against the span assembler.
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.dropped_spans(), 1);
    }

    #[test]
    fn capacity_floor_is_one() {
        let sink = RingBufferSink::new(0);
        assert_eq!(sink.capacity(), 1);
    }
}
