//! Chrome `trace_event` JSON export (viewable at ui.perfetto.dev).
//!
//! Mapping:
//!
//! - Each [`TraceEvent::RunStart`] opens a new *process* (pid), named
//!   after the run label, so sweeps like `fig7` render each app/mode
//!   combination as its own process group.
//! - Each tile gets one *thread* (track) per process — see
//!   [`tile_tid`] — named `tile (x,y)` or `accel <name> (x,y)` once an
//!   accelerator identifies itself.
//! - Each NoC plane gets one track per process — see [`plane_tid`].
//! - Accelerator phases become duration (`"X"`) events reconstructed
//!   from consecutive [`TraceEvent::AccelPhaseChange`]s (idle gaps are
//!   elided); DMA bursts and packet flights become duration events;
//!   everything else becomes an instant (`"i"`) event.
//! - `ts`/`dur` are simulated cycles, presented as microseconds
//!   (1 cycle = 1 µs in the viewer).

use crate::event::{TileCoord, TimedEvent, TraceEvent};
use crate::span::SpanReport;
use serde_json::Value;
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// Thread id of a tile track: stable, unique per coordinate.
pub fn tile_tid(tile: TileCoord) -> u64 {
    1 + (tile.x as u64) * 256 + tile.y as u64
}

/// Base offset separating NoC plane tracks from tile tracks.
const PLANE_TID_BASE: u64 = 1_000_000;

/// Thread id of a NoC plane track.
pub fn plane_tid(plane: usize) -> u64 {
    PLANE_TID_BASE + plane as u64
}

struct Builder {
    rows: Vec<Value>,
    /// (pid, tid) -> (phase name, start cycle, frame tag) of the open
    /// accel span.
    open_spans: HashMap<(u64, u64), (String, u64, Option<u64>)>,
    /// (pid, tid) -> track name; accel names win over defaults.
    track_names: HashMap<(u64, u64), (String, bool)>,
    /// pid -> process (run) name.
    process_names: Vec<(u64, String)>,
    pid: u64,
    last_cycle: u64,
}

impl Builder {
    fn new() -> Self {
        Builder {
            rows: Vec::new(),
            open_spans: HashMap::new(),
            track_names: HashMap::new(),
            process_names: Vec::new(),
            pid: 1,
            last_cycle: 0,
        }
    }

    fn name_track(&mut self, tid: u64, name: String, from_accel: bool) {
        let entry = self
            .track_names
            .entry((self.pid, tid))
            .or_insert_with(|| (name.clone(), from_accel));
        if from_accel && !entry.1 {
            *entry = (name, true);
        }
    }

    fn tile_track(&mut self, tile: TileCoord) -> u64 {
        let tid = tile_tid(tile);
        self.name_track(tid, format!("tile {tile}"), false);
        tid
    }

    fn plane_track(&mut self, plane: usize) -> u64 {
        let tid = plane_tid(plane);
        self.name_track(tid, format!("noc plane {plane}"), false);
        tid
    }

    fn duration(&mut self, name: &str, cat: &str, ts: u64, dur: u64, tid: u64, args: Value) {
        let mut map = serde_json::Map::new();
        map.insert("name".into(), Value::from(name));
        map.insert("cat".into(), Value::from(cat));
        map.insert("ph".into(), Value::from("X"));
        map.insert("ts".into(), Value::from(ts));
        map.insert("dur".into(), Value::from(dur.max(1)));
        map.insert("pid".into(), Value::from(self.pid));
        map.insert("tid".into(), Value::from(tid));
        if !args.is_null() {
            map.insert("args".into(), args);
        }
        self.rows.push(Value::Object(map));
    }

    fn instant(&mut self, name: &str, cat: &str, ts: u64, tid: u64, args: Value) {
        let mut map = serde_json::Map::new();
        map.insert("name".into(), Value::from(name));
        map.insert("cat".into(), Value::from(cat));
        map.insert("ph".into(), Value::from("i"));
        map.insert("ts".into(), Value::from(ts));
        map.insert("pid".into(), Value::from(self.pid));
        map.insert("tid".into(), Value::from(tid));
        map.insert("s".into(), Value::from("t"));
        if !args.is_null() {
            map.insert("args".into(), args);
        }
        self.rows.push(Value::Object(map));
    }

    /// Ends the open accelerator span on `(pid, tid)` at `cycle`.
    fn close_span(&mut self, tid: u64, cycle: u64) {
        if let Some((phase, start, frame)) = self.open_spans.remove(&(self.pid, tid)) {
            // Idle gaps carry no information; eliding them keeps the
            // phase tracks readable.
            if phase != "Idle" {
                let dur = cycle.saturating_sub(start);
                let args = match frame {
                    Some(f) => {
                        let mut map = serde_json::Map::new();
                        map.insert("frame".into(), Value::from(f));
                        Value::Object(map)
                    }
                    None => Value::Null,
                };
                self.duration(&phase, "accel_phase", start, dur, tid, args);
            }
        }
    }

    fn close_all_spans(&mut self, cycle: u64) {
        let open: Vec<u64> = self
            .open_spans
            .keys()
            .filter(|(pid, _)| *pid == self.pid)
            .map(|(_, tid)| *tid)
            .collect();
        for tid in open {
            self.close_span(tid, cycle);
        }
    }

    fn push_event(&mut self, ev: &TimedEvent) {
        let cycle = ev.cycle;
        self.last_cycle = self.last_cycle.max(cycle);
        match &ev.event {
            TraceEvent::RunStart { label } => {
                self.close_all_spans(cycle);
                if !self.process_names.is_empty() {
                    self.pid += 1;
                }
                self.process_names.push((self.pid, label.clone()));
            }
            TraceEvent::AccelPhaseChange {
                accel, to, frame, ..
            } => {
                let tid = self.tile_track(ev.source);
                self.name_track(tid, format!("accel {accel} {}", ev.source), true);
                self.close_span(tid, cycle);
                self.open_spans
                    .insert((self.pid, tid), (to.to_string(), cycle, *frame));
            }
            TraceEvent::DmaBurst {
                kind,
                words,
                latency,
                frame,
            } => {
                let tid = self.tile_track(ev.source);
                let mut args = serde_json::Map::new();
                args.insert("words".into(), Value::from(*words));
                if let Some(f) = frame {
                    args.insert("frame".into(), Value::from(*f));
                }
                self.duration(
                    &format!("dram {}", kind.label()),
                    "dma_burst",
                    cycle,
                    *latency,
                    tid,
                    Value::Object(args),
                );
            }
            TraceEvent::P2pTransfer { dest, words, frame } => {
                let tid = self.tile_track(ev.source);
                let mut args = serde_json::Map::new();
                args.insert("dest".into(), Value::from(dest.to_string()));
                args.insert("words".into(), Value::from(*words));
                if let Some(f) = frame {
                    args.insert("frame".into(), Value::from(*f));
                }
                self.instant(
                    &format!("p2p to {dest}"),
                    "p2p_transfer",
                    cycle,
                    tid,
                    Value::Object(args),
                );
            }
            TraceEvent::NocPacketInject { plane, frame } => {
                let tid = self.plane_track(*plane);
                let mut args = serde_json::Map::new();
                args.insert("src".into(), Value::from(ev.source.to_string()));
                if let Some(f) = frame {
                    args.insert("frame".into(), Value::from(*f));
                }
                self.instant("inject", "noc_packet", cycle, tid, Value::Object(args));
            }
            TraceEvent::NocPacketEject {
                plane,
                latency,
                frame,
            } => {
                let tid = self.plane_track(*plane);
                let mut args = serde_json::Map::new();
                args.insert("dest".into(), Value::from(ev.source.to_string()));
                args.insert("latency".into(), Value::from(*latency));
                if let Some(f) = frame {
                    args.insert("frame".into(), Value::from(*f));
                }
                self.duration(
                    "packet",
                    "noc_packet",
                    cycle.saturating_sub(*latency),
                    *latency,
                    tid,
                    Value::Object(args),
                );
            }
            TraceEvent::TlbMiss { penalty } => {
                let tid = self.tile_track(ev.source);
                let mut args = serde_json::Map::new();
                args.insert("penalty".into(), Value::from(*penalty));
                self.instant("tlb miss", "tlb_miss", cycle, tid, Value::Object(args));
            }
            TraceEvent::IoctlIssue { device } => {
                let tid = self.tile_track(ev.source);
                self.instant(
                    &format!("ioctl {device}"),
                    "ioctl_issue",
                    cycle,
                    tid,
                    Value::Null,
                );
            }
            TraceEvent::FrameComplete { accel, frame } => {
                let tid = self.tile_track(ev.source);
                let mut args = serde_json::Map::new();
                args.insert("accel".into(), Value::from(accel.as_str()));
                args.insert("frame".into(), Value::from(*frame));
                self.instant(
                    &format!("frame {frame} done"),
                    "frame_complete",
                    cycle,
                    tid,
                    Value::Object(args),
                );
            }
            TraceEvent::FaultInjected { fault, detail } => {
                let tid = self.tile_track(ev.source);
                let mut args = serde_json::Map::new();
                args.insert("detail".into(), Value::from(detail.as_str()));
                self.instant(
                    &format!("fault {fault}"),
                    "fault_injected",
                    cycle,
                    tid,
                    Value::Object(args),
                );
            }
            TraceEvent::RetryScheduled {
                device,
                attempt,
                backoff,
            } => {
                let tid = self.tile_track(ev.source);
                let mut args = serde_json::Map::new();
                args.insert("attempt".into(), Value::from(*attempt));
                args.insert("backoff".into(), Value::from(*backoff));
                self.instant(
                    &format!("retry {device} #{attempt}"),
                    "retry_scheduled",
                    cycle,
                    tid,
                    Value::Object(args),
                );
            }
            TraceEvent::FailedOver { from, to } => {
                let tid = self.tile_track(ev.source);
                let mut args = serde_json::Map::new();
                args.insert("from".into(), Value::from(from.as_str()));
                args.insert("to".into(), Value::from(to.as_str()));
                self.instant(
                    &format!("failover {from} -> {to}"),
                    "failed_over",
                    cycle,
                    tid,
                    Value::Object(args),
                );
            }
        }
    }

    fn finish(mut self) -> Value {
        self.close_all_spans(self.last_cycle.saturating_add(1));

        // Chronological `ts` order (stable sort keeps emit order within
        // a cycle).
        self.rows.sort_by_key(|row| row["ts"].as_u64().unwrap_or(0));

        let mut all = Vec::new();
        if self.process_names.is_empty() {
            self.process_names.push((1, "run".to_string()));
        }
        for (pid, name) in &self.process_names {
            all.push(metadata_row("process_name", *pid, None, name));
        }
        let mut named: Vec<_> = self.track_names.iter().collect();
        named.sort_by_key(|(k, _)| **k);
        for ((pid, tid), (name, _)) in named {
            all.push(metadata_row("thread_name", *pid, Some(*tid), name));
        }
        all.extend(self.rows);

        let mut top = serde_json::Map::new();
        top.insert("traceEvents".into(), Value::Array(all));
        top.insert("displayTimeUnit".into(), Value::from("ms"));
        Value::Object(top)
    }
}

fn metadata_row(kind: &str, pid: u64, tid: Option<u64>, name: &str) -> Value {
    let mut args = serde_json::Map::new();
    args.insert("name".into(), Value::from(name));
    let mut map = serde_json::Map::new();
    map.insert("name".into(), Value::from(kind));
    map.insert("ph".into(), Value::from("M"));
    map.insert("pid".into(), Value::from(pid));
    if let Some(tid) = tid {
        map.insert("tid".into(), Value::from(tid));
    }
    map.insert("args".into(), Value::Object(args));
    Value::Object(map)
}

/// Converts recorded events into a Chrome `trace_event` JSON document.
pub fn chrome_trace(events: &[TimedEvent]) -> Value {
    chrome_trace_with_dropped(events, 0)
}

/// Like [`chrome_trace`], but also records how many events the sink
/// discarded under capacity pressure. When `dropped > 0` a
/// `trace_dropped_events` metadata row is appended so truncated traces
/// are self-describing.
pub fn chrome_trace_with_dropped(events: &[TimedEvent], dropped: u64) -> Value {
    chrome_trace_with_drop_counts(events, dropped, 0)
}

/// Like [`chrome_trace_with_dropped`], but additionally records how
/// many of the discarded events the span assembler needed. When
/// `dropped_spans > 0` a `trace_dropped_spans` metadata row is
/// appended so span trees derived from the trace are known-partial.
pub fn chrome_trace_with_drop_counts(
    events: &[TimedEvent],
    dropped: u64,
    dropped_spans: u64,
) -> Value {
    let mut builder = Builder::new();
    for ev in events {
        builder.push_event(ev);
    }
    let mut doc = builder.finish();
    let mut extra = Vec::new();
    if dropped > 0 {
        extra.push(("trace_dropped_events", "dropped", dropped));
    }
    if dropped_spans > 0 {
        extra.push(("trace_dropped_spans", "dropped_spans", dropped_spans));
    }
    for (name, key, value) in extra {
        let mut args = serde_json::Map::new();
        args.insert(key.into(), Value::from(value));
        let mut row = serde_json::Map::new();
        row.insert("name".into(), Value::from(name));
        row.insert("ph".into(), Value::from("M"));
        row.insert("pid".into(), Value::from(1u64));
        row.insert("args".into(), Value::Object(args));
        if let Some(Value::Array(rows)) = doc.get_mut("traceEvents") {
            rows.push(Value::Object(row));
        }
    }
    doc
}

/// Serializes [`chrome_trace`] output to pretty JSON text.
pub fn chrome_trace_json(events: &[TimedEvent]) -> String {
    serde_json::to_string_pretty(&chrome_trace(events)).expect("trace JSON serialization")
}

/// Writes [`chrome_trace`] output to a file.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[TimedEvent]) -> io::Result<()> {
    write_chrome_trace_with_dropped(path, events, 0)
}

/// Writes [`chrome_trace_with_dropped`] output to a file.
pub fn write_chrome_trace_with_dropped(
    path: impl AsRef<Path>,
    events: &[TimedEvent],
    dropped: u64,
) -> io::Result<()> {
    write_chrome_trace_with_drop_counts(path, events, dropped, 0)
}

/// Writes [`chrome_trace_with_drop_counts`] output to a file.
pub fn write_chrome_trace_with_drop_counts(
    path: impl AsRef<Path>,
    events: &[TimedEvent],
    dropped: u64,
    dropped_spans: u64,
) -> io::Result<()> {
    let doc = chrome_trace_with_drop_counts(events, dropped, dropped_spans);
    std::fs::write(
        path,
        serde_json::to_string_pretty(&doc).expect("trace JSON serialization"),
    )
}

/// Base offset separating per-stage span tracks from tile/plane tracks.
const STAGE_TID_BASE: u64 = 2_000_000;

/// Converts assembled span reports into a flow-linked Chrome
/// `trace_event` JSON document: one process per run, one track per
/// pipeline stage, one duration row per span (instants for zero-length
/// markers), and `s`/`t`/`f` flow events chaining each frame's spans
/// causally so the viewer draws the frame's critical path as arrows.
/// Partial reports carry a `trace_dropped_spans` metadata row.
pub fn span_chrome_trace(reports: &[SpanReport]) -> Value {
    let mut rows = Vec::new();
    for (i, report) in reports.iter().enumerate() {
        let pid = i as u64 + 1;
        rows.push(metadata_row("process_name", pid, None, &report.label));

        // Stage tracks in order of first appearance.
        let mut stage_tids: Vec<(String, u64)> = Vec::new();
        let mut tid_of = |stage: &str, out: &mut Vec<Value>| -> u64 {
            if let Some((_, tid)) = stage_tids.iter().find(|(n, _)| n == stage) {
                return *tid;
            }
            let tid = STAGE_TID_BASE + stage_tids.len() as u64;
            stage_tids.push((stage.to_string(), tid));
            out.push(metadata_row(
                "thread_name",
                pid,
                Some(tid),
                &format!("stage {stage}"),
            ));
            tid
        };

        for frame in &report.frames {
            // One flow chain per frame; ids are unique across runs.
            let flow_id = (pid << 40) | frame.frame;
            let mut flat: Vec<(u64, &str)> = Vec::new(); // (begin, stage)
            for stage in &frame.stages {
                let tid = tid_of(&stage.stage, &mut rows);
                for span in &stage.spans {
                    let mut args = serde_json::Map::new();
                    args.insert("frame".into(), Value::from(frame.frame));
                    args.insert("owner".into(), Value::from(stage.owner.as_str()));
                    let mut map = serde_json::Map::new();
                    map.insert("name".into(), Value::from(span.kind.label()));
                    map.insert("cat".into(), Value::from("span"));
                    map.insert("ts".into(), Value::from(span.begin));
                    map.insert("pid".into(), Value::from(pid));
                    map.insert("tid".into(), Value::from(tid));
                    if span.cycles() == 0 {
                        map.insert("ph".into(), Value::from("i"));
                        map.insert("s".into(), Value::from("t"));
                    } else {
                        map.insert("ph".into(), Value::from("X"));
                        map.insert("dur".into(), Value::from(span.cycles()));
                        flat.push((span.begin, stage.stage.as_str()));
                    }
                    map.insert("args".into(), Value::Object(args));
                    rows.push(Value::Object(map));
                }
            }
            for (j, (begin, stage)) in flat.iter().enumerate() {
                let ph = if j == 0 {
                    "s"
                } else if j + 1 == flat.len() {
                    "f"
                } else {
                    "t"
                };
                let tid = tid_of(stage, &mut rows);
                let mut map = serde_json::Map::new();
                map.insert("name".into(), Value::from(format!("frame {}", frame.frame)));
                map.insert("cat".into(), Value::from("frame_flow"));
                map.insert("ph".into(), Value::from(ph));
                map.insert("id".into(), Value::from(flow_id));
                map.insert("ts".into(), Value::from(*begin));
                map.insert("pid".into(), Value::from(pid));
                map.insert("tid".into(), Value::from(tid));
                if ph == "f" {
                    map.insert("bp".into(), Value::from("e"));
                }
                rows.push(Value::Object(map));
            }
        }

        if report.dropped_spans > 0 {
            let mut args = serde_json::Map::new();
            args.insert("dropped_spans".into(), Value::from(report.dropped_spans));
            let mut row = serde_json::Map::new();
            row.insert("name".into(), Value::from("trace_dropped_spans"));
            row.insert("ph".into(), Value::from("M"));
            row.insert("pid".into(), Value::from(pid));
            row.insert("args".into(), Value::Object(args));
            rows.push(Value::Object(row));
        }
    }

    let mut top = serde_json::Map::new();
    top.insert("traceEvents".into(), Value::Array(rows));
    top.insert("displayTimeUnit".into(), Value::from("ms"));
    Value::Object(top)
}

/// Writes [`span_chrome_trace`] output to a file.
pub fn write_span_trace(path: impl AsRef<Path>, reports: &[SpanReport]) -> io::Result<()> {
    let doc = span_chrome_trace(reports);
    std::fs::write(
        path,
        serde_json::to_string_pretty(&doc).expect("span trace JSON serialization"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DmaKind;

    fn at(cycle: u64, x: u8, y: u8, event: TraceEvent) -> TimedEvent {
        TimedEvent {
            cycle,
            source: TileCoord::new(x, y),
            event,
        }
    }

    fn sample_events() -> Vec<TimedEvent> {
        vec![
            at(
                0,
                0,
                0,
                TraceEvent::RunStart {
                    label: "test run".into(),
                },
            ),
            at(
                5,
                1,
                1,
                TraceEvent::AccelPhaseChange {
                    accel: "nightvision0".into(),
                    from: "Idle",
                    to: "LoadIssue",
                    frame: Some(0),
                },
            ),
            at(6, 1, 1, TraceEvent::TlbMiss { penalty: 20 }),
            at(
                8,
                2,
                0,
                TraceEvent::DmaBurst {
                    kind: DmaKind::Read,
                    words: 128,
                    latency: 40,
                    frame: Some(0),
                },
            ),
            at(
                9,
                0,
                1,
                TraceEvent::NocPacketInject {
                    plane: 3,
                    frame: Some(0),
                },
            ),
            at(
                30,
                1,
                1,
                TraceEvent::NocPacketEject {
                    plane: 3,
                    latency: 21,
                    frame: Some(0),
                },
            ),
            at(
                40,
                1,
                1,
                TraceEvent::AccelPhaseChange {
                    accel: "nightvision0".into(),
                    from: "LoadIssue",
                    to: "Compute",
                    frame: Some(0),
                },
            ),
            at(
                90,
                1,
                1,
                TraceEvent::FrameComplete {
                    accel: "nightvision0".into(),
                    frame: 0,
                },
            ),
        ]
    }

    #[test]
    fn ts_is_monotonic_and_json_valid() {
        let text = chrome_trace_json(&sample_events());
        let doc: Value = serde_json::from_str(&text).expect("exporter emitted invalid JSON");
        let rows = doc["traceEvents"].as_array().unwrap();
        let mut last = 0u64;
        let mut timed = 0;
        for row in rows {
            if row["ph"].as_str() == Some("M") {
                continue;
            }
            let ts = row["ts"].as_u64().expect("data row missing ts");
            assert!(ts >= last, "ts went backwards: {ts} < {last}");
            last = ts;
            timed += 1;
        }
        assert!(timed >= sample_events().len() - 1);
    }

    #[test]
    fn tracks_map_tiles_and_planes() {
        let doc = chrome_trace(&sample_events());
        let rows = doc["traceEvents"].as_array().unwrap();

        // The accel tile track carries its phase span and is named.
        let phase = rows
            .iter()
            .find(|r| r["cat"].as_str() == Some("accel_phase"))
            .expect("no phase span emitted");
        assert_eq!(phase["tid"].as_u64(), Some(tile_tid(TileCoord::new(1, 1))));
        assert_eq!(phase["name"].as_str(), Some("LoadIssue"));

        let thread_names: Vec<(&str, u64)> = rows
            .iter()
            .filter(|r| r["name"].as_str() == Some("thread_name"))
            .map(|r| {
                (
                    r["args"]["name"].as_str().unwrap(),
                    r["tid"].as_u64().unwrap(),
                )
            })
            .collect();
        assert!(thread_names
            .iter()
            .any(|(n, t)| n.contains("nightvision0") && *t == tile_tid(TileCoord::new(1, 1))));
        assert!(thread_names
            .iter()
            .any(|(n, t)| *n == "noc plane 3" && *t == plane_tid(3)));

        // NoC events ride the plane track, not a tile track.
        let inject = rows
            .iter()
            .find(|r| r["name"].as_str() == Some("inject"))
            .unwrap();
        assert_eq!(inject["tid"].as_u64(), Some(plane_tid(3)));

        // Process named after the run label.
        let proc = rows
            .iter()
            .find(|r| r["name"].as_str() == Some("process_name"))
            .unwrap();
        assert_eq!(proc["args"]["name"].as_str(), Some("test run"));
    }

    #[test]
    fn frame_completions_are_instants() {
        let doc = chrome_trace(&sample_events());
        let rows = doc["traceEvents"].as_array().unwrap();
        let frame = rows
            .iter()
            .find(|r| r["cat"].as_str() == Some("frame_complete"))
            .expect("frame completion missing");
        assert_eq!(frame["ph"].as_str(), Some("i"));
        assert_eq!(frame["args"]["frame"].as_u64(), Some(0));
    }

    #[test]
    fn run_starts_split_processes() {
        let mut events = sample_events();
        events.push(at(
            100,
            0,
            0,
            TraceEvent::RunStart {
                label: "second".into(),
            },
        ));
        events.push(at(
            105,
            1,
            1,
            TraceEvent::FrameComplete {
                accel: "a".into(),
                frame: 0,
            },
        ));
        let doc = chrome_trace(&events);
        let rows = doc["traceEvents"].as_array().unwrap();
        let pids: std::collections::HashSet<u64> = rows
            .iter()
            .filter(|r| r["ph"].as_str() != Some("M"))
            .map(|r| r["pid"].as_u64().unwrap())
            .collect();
        assert_eq!(pids.len(), 2, "expected two processes, got {pids:?}");
    }

    #[test]
    fn dropped_events_become_metadata() {
        let doc = chrome_trace_with_dropped(&sample_events(), 42);
        let rows = doc["traceEvents"].as_array().unwrap();
        let row = rows
            .iter()
            .find(|r| r["name"].as_str() == Some("trace_dropped_events"))
            .expect("dropped-event metadata missing");
        assert_eq!(row["ph"].as_str(), Some("M"));
        assert_eq!(row["args"]["dropped"].as_u64(), Some(42));
        // A lossless trace stays clean: no metadata row.
        let clean = chrome_trace_with_dropped(&sample_events(), 0);
        assert!(!clean["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .any(|r| r["name"].as_str() == Some("trace_dropped_events")));
    }

    #[test]
    fn dropped_spans_become_metadata() {
        let doc = chrome_trace_with_drop_counts(&sample_events(), 42, 7);
        let rows = doc["traceEvents"].as_array().unwrap();
        let row = rows
            .iter()
            .find(|r| r["name"].as_str() == Some("trace_dropped_spans"))
            .expect("dropped-span metadata missing");
        assert_eq!(row["args"]["dropped_spans"].as_u64(), Some(7));
    }

    #[test]
    fn phase_spans_carry_frame_args() {
        let doc = chrome_trace(&sample_events());
        let rows = doc["traceEvents"].as_array().unwrap();
        let phase = rows
            .iter()
            .find(|r| r["cat"].as_str() == Some("accel_phase"))
            .expect("no phase span");
        assert_eq!(phase["args"]["frame"].as_u64(), Some(0));
        let burst = rows
            .iter()
            .find(|r| r["cat"].as_str() == Some("dma_burst"))
            .expect("no dma burst");
        assert_eq!(burst["args"]["frame"].as_u64(), Some(0));
    }

    fn span_report() -> crate::span::SpanReport {
        use crate::span::SpanCollector;
        let c = SpanCollector::new();
        c.set_stage_groups(vec![
            ("nv".to_string(), vec!["nv0".to_string()]),
            ("cl".to_string(), vec!["cl0".to_string()]),
        ]);
        let seq = [
            at(
                0,
                0,
                0,
                TraceEvent::RunStart {
                    label: "spans".into(),
                },
            ),
            at(
                10,
                1,
                1,
                TraceEvent::AccelPhaseChange {
                    accel: "nv0".into(),
                    from: "idle",
                    to: "compute",
                    frame: Some(0),
                },
            ),
            at(
                100,
                1,
                1,
                TraceEvent::FrameComplete {
                    accel: "nv0".into(),
                    frame: 0,
                },
            ),
            at(
                120,
                2,
                1,
                TraceEvent::AccelPhaseChange {
                    accel: "cl0".into(),
                    from: "idle",
                    to: "compute",
                    frame: Some(0),
                },
            ),
            at(
                150,
                2,
                1,
                TraceEvent::FrameComplete {
                    accel: "cl0".into(),
                    frame: 0,
                },
            ),
        ];
        for ev in &seq {
            c.observe(ev);
        }
        c.close_run(200).expect("run open")
    }

    #[test]
    fn span_trace_links_frames_with_flows() {
        let report = span_report();
        let doc = span_chrome_trace(std::slice::from_ref(&report));
        let rows = doc["traceEvents"].as_array().unwrap();
        // Every non-marker span became a duration row on a stage track.
        let spans: Vec<&Value> = rows
            .iter()
            .filter(|r| r["cat"].as_str() == Some("span"))
            .collect();
        assert!(!spans.is_empty());
        for s in &spans {
            assert_eq!(s["args"]["frame"].as_u64(), Some(0));
        }
        // The frame's flow chain opens with "s" and closes with "f".
        let flow_phases: Vec<&str> = rows
            .iter()
            .filter(|r| r["cat"].as_str() == Some("frame_flow"))
            .map(|r| r["ph"].as_str().unwrap())
            .collect();
        assert_eq!(flow_phases.first(), Some(&"s"));
        assert_eq!(flow_phases.last(), Some(&"f"));
        // Stage tracks are named.
        assert!(rows
            .iter()
            .any(|r| r["name"].as_str() == Some("thread_name")
                && r["args"]["name"].as_str() == Some("stage nv")));
        // Round-trips through serde.
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let _: Value = serde_json::from_str(&text).unwrap();
    }

    #[test]
    fn partial_span_report_flags_trace() {
        let mut report = span_report();
        report.dropped_spans = 3;
        let doc = span_chrome_trace(std::slice::from_ref(&report));
        assert!(doc["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .any(|r| r["name"].as_str() == Some("trace_dropped_spans")));
    }
}
