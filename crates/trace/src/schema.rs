//! Versioned envelope for every machine-readable JSON artifact.
//!
//! All JSON the workspace writes for consumption by other programs —
//! profile reports, span reports, `espcheck`/`espfault`/`espprof`
//! verdicts, `BENCH_sim_speed.json`, and the run-metrics artifacts
//! served by `espserve` — is wrapped in one top-level shape:
//!
//! ```json
//! { "schema_version": 1, "kind": "profile-reports", "payload": ... }
//! ```
//!
//! Compatibility rule: consumers MUST reject envelopes whose
//! `schema_version` they do not know ([`open_envelope`] enforces this),
//! and producers MUST bump [`SCHEMA_VERSION`] on any breaking change to
//! a payload shape. Additive payload changes (new optional fields) keep
//! the version; readers built on the vendored serde stub already ignore
//! unknown fields and default missing `#[serde(default)]` ones.

use serde::{Map, Value};

/// Version stamped on every enveloped JSON artifact.
pub const SCHEMA_VERSION: u64 = 1;

/// Wraps a payload in the versioned envelope.
pub fn envelope(kind: &str, payload: Value) -> Value {
    let mut map = Map::new();
    map.insert("schema_version".into(), Value::from(SCHEMA_VERSION));
    map.insert("kind".into(), Value::from(kind));
    map.insert("payload".into(), payload);
    Value::Object(map)
}

/// Wraps a payload and renders it as pretty-printed JSON (the form
/// every binary writes to disk).
pub fn envelope_json(kind: &str, payload: Value) -> String {
    serde_json::to_string_pretty(&envelope(kind, payload)).expect("envelope serializes")
}

/// Errors unwrapping an envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The value is not an envelope object at all.
    NotAnEnvelope,
    /// The envelope carries an unknown schema version.
    UnknownVersion {
        /// The version the producer stamped.
        found: u64,
    },
    /// The envelope's `kind` differs from the one requested.
    WrongKind {
        /// The kind the producer stamped.
        found: String,
        /// The kind the caller asked for.
        expected: String,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::NotAnEnvelope => {
                write!(
                    f,
                    "not a schema envelope (missing schema_version/kind/payload)"
                )
            }
            SchemaError::UnknownVersion { found } => write!(
                f,
                "unknown schema_version {found} (this build understands {SCHEMA_VERSION})"
            ),
            SchemaError::WrongKind { found, expected } => {
                write!(f, "envelope kind is {found:?}, expected {expected:?}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Unwraps an envelope, enforcing the compatibility rule: the version
/// must be exactly [`SCHEMA_VERSION`] and the kind must match.
///
/// # Errors
///
/// [`SchemaError`] when the value is not an envelope, the version is
/// unknown, or the kind differs.
pub fn open_envelope(value: Value, expected_kind: &str) -> Result<Value, SchemaError> {
    let Value::Object(map) = value else {
        return Err(SchemaError::NotAnEnvelope);
    };
    let version = map
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or(SchemaError::NotAnEnvelope)?;
    if version != SCHEMA_VERSION {
        return Err(SchemaError::UnknownVersion { found: version });
    }
    let kind = map
        .get("kind")
        .and_then(Value::as_str)
        .ok_or(SchemaError::NotAnEnvelope)?;
    if kind != expected_kind {
        return Err(SchemaError::WrongKind {
            found: kind.to_string(),
            expected: expected_kind.to_string(),
        });
    }
    map.get("payload")
        .cloned()
        .ok_or(SchemaError::NotAnEnvelope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let wrapped = envelope("demo", Value::from(42u64));
        assert_eq!(wrapped["schema_version"].as_u64(), Some(SCHEMA_VERSION));
        assert_eq!(wrapped["kind"].as_str(), Some("demo"));
        let payload = open_envelope(wrapped, "demo").unwrap();
        assert_eq!(payload.as_u64(), Some(42));
    }

    #[test]
    fn json_form_leads_with_version() {
        let text = envelope_json("demo", Value::Null);
        let reparsed = serde_json::parse_value(&text).unwrap();
        assert_eq!(open_envelope(reparsed, "demo").unwrap(), Value::Null);
        // Insertion order puts the version first, so even a human
        // glancing at the file sees the contract immediately.
        assert!(text.trim_start().starts_with("{\n  \"schema_version\": 1"));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut map = Map::new();
        map.insert("schema_version".into(), Value::from(99u64));
        map.insert("kind".into(), Value::from("demo"));
        map.insert("payload".into(), Value::Null);
        assert_eq!(
            open_envelope(Value::Object(map), "demo"),
            Err(SchemaError::UnknownVersion { found: 99 })
        );
    }

    #[test]
    fn wrong_kind_and_malformed_are_rejected() {
        let wrapped = envelope("profile-reports", Value::Null);
        assert!(matches!(
            open_envelope(wrapped, "span-reports"),
            Err(SchemaError::WrongKind { .. })
        ));
        assert_eq!(
            open_envelope(Value::from("nope"), "demo"),
            Err(SchemaError::NotAnEnvelope)
        );
        assert_eq!(
            open_envelope(Value::Object(Map::new()), "demo"),
            Err(SchemaError::NotAnEnvelope)
        );
    }
}
