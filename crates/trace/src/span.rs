//! Causal frame-level span layer.
//!
//! Every frame flowing through the SoC carries a global frame id
//! (latched by the accelerator socket from `FRAME_BASE_REG` /
//! `FRAME_STRIDE_REG` and propagated onto NoC packets, DMA bursts and
//! FSM phase changes). This module consumes the tagged
//! [`TraceEvent`] stream and assembles, per frame, a span tree with
//! *exact cycle attribution*: every cycle of the frame's end-to-end
//! latency lands in exactly one [`Span`] — compute, DMA-path stall,
//! NoC service, queueing behind other frames, or retry backoff — so
//! the per-frame spans always sum to the per-frame latency
//! ([`SpanReport::check_attribution`]).
//!
//! The frame's stage chain is recovered causally from `FrameComplete`
//! events: stage *i*'s completion of frame *f* bounds the segment in
//! which stage *i* owned the frame, and the segment is subdivided by
//! the owning instance's frame-tagged FSM phases. Time the owner spent
//! on *other* frames (or idle) inside the segment is queueing; time
//! inside a scheduled retry-backoff window is [`SpanKind::Retry`];
//! failovers appear as zero-length [`SpanKind::Failover`] markers.
//!
//! The aggregated [`CriticalPath`] names the limiting pipeline stage
//! using *the same selection code* as the profiler's
//! [`BottleneckReport`](crate::profile::BottleneckReport) — the
//! collector embeds a [`ProfileCollector`] fed the identical event
//! stream — so `espspan` and `espprof` provably agree on the limiting
//! stage.
//!
//! Engine safety: span state is derived purely from the event stream
//! plus the final cycle count, and both engines emit identical streams
//! (the PR 2 equivalence contract), so reports are byte-identical
//! across `SocEngine::Naive` and `SocEngine::EventDriven`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::event::{TimedEvent, TraceEvent};
use crate::profile::ProfileCollector;
use crate::sink::{RingBufferSink, TraceSink};
use crate::tracer::Tracer;

/// What a slice of a frame's latency was spent on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanKind {
    /// The owning socket was computing on this frame.
    Compute,
    /// The owning socket was stalled on the DMA/load path
    /// (`load_issue`/`load_wait`/`store_issue`).
    Dma,
    /// The owning socket was in NoC point-to-point service
    /// (`store_wait_req`/`store_send`/`store_wait_ack`).
    Noc,
    /// The frame waited while its owner was idle or busy with a
    /// different frame.
    Queue,
    /// The frame waited out a scheduled retry-backoff window.
    Retry,
    /// Zero-length marker: the frame's work was remapped to a spare.
    Failover,
}

impl SpanKind {
    /// Stable lowercase label (used in text/flame output and JSON maps).
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Dma => "dma",
            SpanKind::Noc => "noc",
            SpanKind::Queue => "queue",
            SpanKind::Retry => "retry",
            SpanKind::Failover => "failover",
        }
    }
}

/// Maps a socket FSM state onto a span kind (same partition as
/// [`StateBreakdown::add_state`](crate::profile::StateBreakdown::add_state),
/// with the idle class folded into [`SpanKind::Queue`]).
fn classify_state(state: &str) -> SpanKind {
    match state {
        "compute" => SpanKind::Compute,
        "load_issue" | "load_wait" | "store_issue" => SpanKind::Dma,
        "store_wait_req" | "store_send" | "store_wait_ack" => SpanKind::Noc,
        _ => SpanKind::Queue,
    }
}

/// A half-open `[begin, end)` slice of one frame's latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Attribution class.
    pub kind: SpanKind,
    /// First cycle of the slice.
    pub begin: u64,
    /// One past the last cycle of the slice.
    pub end: u64,
}

impl Span {
    /// Slice length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.begin)
    }
}

/// One pipeline stage's segment of a frame's journey: from the
/// previous stage's completion of the frame to this stage's.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageSpan {
    /// Stage name (group name, or the instance name without groups).
    pub stage: String,
    /// Accelerator instance that completed the frame for this stage
    /// (the spare after a failover).
    pub owner: String,
    /// Segment start cycle.
    pub begin: u64,
    /// Segment end cycle (= the owner's `FrameComplete` cycle).
    pub end: u64,
    /// Exact subdivision of `[begin, end)`; spans are disjoint,
    /// ordered, and tile the segment (plus zero-length markers).
    pub spans: Vec<Span>,
}

impl StageSpan {
    /// Segment length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.begin)
    }

    /// Cycles per span kind within this segment.
    pub fn kind_cycles(&self) -> BTreeMap<SpanKind, u64> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            *out.entry(s.kind).or_insert(0) += s.cycles();
        }
        out
    }
}

/// One link of a frame's critical path: the dominant span kind of one
/// stage segment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CriticalLink {
    /// Stage name.
    pub stage: String,
    /// Dominant span-kind label within the stage segment.
    pub kind: String,
    /// Cycles attributed to that kind.
    pub cycles: u64,
}

/// The complete span tree of one frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrameSpans {
    /// Global frame id.
    pub frame: u64,
    /// Cycle the frame entered the pipeline (first frame-tagged phase
    /// of the first stage's owner).
    pub begin: u64,
    /// Cycle the final observed stage completed the frame.
    pub end: u64,
    /// Stage segments in causal (completion) order.
    pub stages: Vec<StageSpan>,
    /// Dominant blocking resource per stage, in causal order.
    pub critical: Vec<CriticalLink>,
    /// True when the frame's entry cycle had to be inferred because no
    /// frame-tagged phase events were available (e.g. ring-buffer
    /// overflow evicted them).
    pub partial: bool,
}

impl FrameSpans {
    /// End-to-end frame latency in cycles.
    pub fn latency(&self) -> u64 {
        self.end.saturating_sub(self.begin)
    }

    /// Total cycles attributed across all spans. The attribution
    /// invariant is `attributed() == latency()` on every frame.
    pub fn attributed(&self) -> u64 {
        self.stages
            .iter()
            .flat_map(|s| s.spans.iter())
            .map(Span::cycles)
            .sum()
    }
}

/// Aggregate span cost of one pipeline stage across all frames.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// Stage name.
    pub stage: String,
    /// Cycles per span-kind label, summed over all frame segments.
    pub kinds: BTreeMap<String, u64>,
    /// Kind label with the most cycles.
    pub dominant: String,
    /// Total attributed cycles across all frame segments.
    pub total: u64,
}

/// Aggregated critical-path report: names the pipeline stage limiting
/// throughput (via the profiler's exact bottleneck selection) and the
/// blocking resource chain behind it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Stage limiting throughput. Selected by the *same code* as
    /// [`BottleneckReport`](crate::profile::BottleneckReport) —
    /// `espspan` cross-checks the two at runtime.
    pub limiting_stage: String,
    /// Dominant span kind within the limiting stage's aggregate cost.
    pub dominant_kind: String,
    /// The limiting stage's throughput bound in cycles per frame.
    pub bound_cycles_per_frame: f64,
    /// Second-highest stage bound.
    pub next_bound_cycles_per_frame: f64,
    /// Measured end-to-end cycles per frame.
    pub observed_cycles_per_frame: f64,
    /// Fraction of the run the limiting stage spent computing.
    pub busy_fraction: f64,
    /// Throughput gain ceiling from fully relieving the limiting stage.
    pub speedup_ceiling: f64,
    /// Per-stage aggregate span costs in pipeline order.
    pub stages: Vec<StageCost>,
}

/// Whether a [`SpanEvent`] opens or closes its span.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanPhase {
    /// The span opens at this cycle.
    Begin,
    /// The span closes at this cycle.
    End,
}

/// A typed begin/end event derived from an assembled span tree, with a
/// causal link to the preceding span of the same frame. Exporters map
/// these onto Perfetto flow-linked track events.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Report-unique span id (shared by the Begin/End pair).
    pub id: u64,
    /// Global frame id.
    pub frame: u64,
    /// Stage name.
    pub stage: String,
    /// Owning instance name.
    pub owner: String,
    /// Attribution class.
    pub kind: SpanKind,
    /// Begin or end.
    pub phase: SpanPhase,
    /// Cycle of the event.
    pub cycle: u64,
    /// Id of the causally preceding span in the same frame (`None` for
    /// the frame's root span).
    pub cause: Option<u64>,
}

/// Complete span analysis of one labelled run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Run label (from the `RunStart` event).
    pub label: String,
    /// Cycle of the `RunStart` event.
    pub start_cycle: u64,
    /// Cycle at which the run was closed.
    pub end_cycle: u64,
    /// Per-frame span trees in frame-id order.
    pub frames: Vec<FrameSpans>,
    /// Aggregated critical path, when at least one stage completed
    /// frames.
    pub critical_path: Option<CriticalPath>,
    /// Span-relevant events discarded before assembly (ring-buffer
    /// pressure); non-zero flags the report as partial.
    pub dropped_spans: u64,
    /// True when the tree may be incomplete: span events were dropped,
    /// or some frame's entry cycle had to be inferred.
    pub partial: bool,
}

impl SpanReport {
    /// Run length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Verifies the attribution invariant: on every frame the span
    /// cycles sum exactly to the frame's end-to-end latency. Returns a
    /// description of the first violation.
    pub fn check_attribution(&self) -> Result<(), String> {
        for f in &self.frames {
            if f.attributed() != f.latency() {
                return Err(format!(
                    "frame {}: {} attributed cycles != {} latency cycles",
                    f.frame,
                    f.attributed(),
                    f.latency()
                ));
            }
        }
        Ok(())
    }

    /// Derives the flat typed begin/end event stream with causal
    /// links, in frame then causal order.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        let mut id = 0u64;
        for frame in &self.frames {
            let mut cause = None;
            for stage in &frame.stages {
                for span in &stage.spans {
                    for (phase, cycle) in
                        [(SpanPhase::Begin, span.begin), (SpanPhase::End, span.end)]
                    {
                        out.push(SpanEvent {
                            id,
                            frame: frame.frame,
                            stage: stage.stage.clone(),
                            owner: stage.owner.clone(),
                            kind: span.kind,
                            phase,
                            cycle,
                            cause,
                        });
                    }
                    cause = Some(id);
                    id += 1;
                }
            }
        }
        out
    }

    /// Renders the human-readable critical-path report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "spans \"{}\": {} frames over {} cycles{}\n",
            self.label,
            self.frames.len(),
            self.cycles(),
            if self.partial { " (PARTIAL)" } else { "" },
        ));
        if self.dropped_spans > 0 {
            out.push_str(&format!(
                "  {} span-relevant events dropped before assembly\n",
                self.dropped_spans
            ));
        }
        if let Some(cp) = &self.critical_path {
            out.push_str(&format!(
                "critical path: stage \"{}\" limited by {} — bound {:.1} cycles/frame, \
                 observed {:.1}, ceiling {:.2}x\n",
                cp.limiting_stage,
                cp.dominant_kind,
                cp.bound_cycles_per_frame,
                cp.observed_cycles_per_frame,
                cp.speedup_ceiling,
            ));
            for s in &cp.stages {
                let kinds: Vec<String> = s.kinds.iter().map(|(k, v)| format!("{k}={v}")).collect();
                out.push_str(&format!("  {:<12} {}\n", s.stage, kinds.join(" ")));
            }
        }
        for f in &self.frames {
            let chain: Vec<String> = f
                .critical
                .iter()
                .map(|l| format!("{}/{} {}", l.stage, l.kind, l.cycles))
                .collect();
            out.push_str(&format!(
                "frame {}: {} cycles | {}{}\n",
                f.frame,
                f.latency(),
                chain.join(" -> "),
                if f.partial { " (partial)" } else { "" },
            ));
        }
        out
    }

    /// Renders per-frame folded stacks (`label;frameN;stage;kind
    /// cycles`), one line per (frame, stage, kind) — the input format
    /// of flamegraph tooling.
    pub fn render_flame(&self) -> String {
        let mut out = String::new();
        for f in &self.frames {
            for s in &f.stages {
                for (kind, cycles) in s.kind_cycles() {
                    if cycles > 0 {
                        out.push_str(&format!(
                            "{};frame{};{};{} {}\n",
                            self.label,
                            f.frame,
                            s.stage,
                            kind.label(),
                            cycles
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Subdivides the segment `[s, e)` of frame `f` by the owner's
/// frame-tagged FSM phases and retry windows. Returned spans are
/// disjoint, ordered, and tile the segment exactly.
fn subdivide(
    s: u64,
    e: u64,
    f: u64,
    timeline: &[TimelineEntry],
    retry_windows: &[(u64, u64)],
) -> Vec<Span> {
    if e <= s {
        return Vec::new();
    }
    let mut cuts: BTreeSet<u64> = BTreeSet::new();
    cuts.insert(s);
    cuts.insert(e);
    for (c, _, _) in timeline {
        if *c > s && *c < e {
            cuts.insert(*c);
        }
    }
    for (a, b) in retry_windows {
        if *a > s && *a < e {
            cuts.insert(*a);
        }
        if *b > s && *b < e {
            cuts.insert(*b);
        }
    }
    let pts: Vec<u64> = cuts.into_iter().collect();
    let mut spans: Vec<Span> = Vec::new();
    for w in pts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let idx = timeline.partition_point(|(c, _, _)| *c <= a);
        let (state, tag) = if idx == 0 {
            ("idle", None)
        } else {
            (timeline[idx - 1].1, timeline[idx - 1].2)
        };
        let kind = if tag == Some(f) {
            classify_state(state)
        } else if retry_windows.iter().any(|(ra, rb)| *ra <= a && a < *rb) {
            SpanKind::Retry
        } else {
            SpanKind::Queue
        };
        match spans.last_mut() {
            Some(last) if last.kind == kind && last.end == a => last.end = b,
            _ => spans.push(Span {
                kind,
                begin: a,
                end: b,
            }),
        }
    }
    spans
}

/// One FSM timeline entry: (cycle, state entered, frame tag).
type TimelineEntry = (u64, &'static str, Option<u64>);

/// Accumulator for one open run.
#[derive(Debug)]
struct SpanAccum {
    label: String,
    start_cycle: u64,
    groups: Vec<(String, Vec<String>)>,
    /// Per-instance FSM timeline.
    timelines: BTreeMap<String, Vec<TimelineEntry>>,
    /// (cycle, instance, global frame id) in emission order.
    completions: Vec<(u64, String, u64)>,
    /// Per-device retry-backoff windows `[begin, end)`.
    retries: BTreeMap<String, Vec<(u64, u64)>>,
    /// (cycle, from, to) failover records in emission order.
    failovers: Vec<(u64, String, String)>,
    dropped_spans: u64,
}

impl SpanAccum {
    fn new(label: String, start_cycle: u64, groups: Vec<(String, Vec<String>)>) -> Self {
        SpanAccum {
            label,
            start_cycle,
            groups,
            timelines: BTreeMap::new(),
            completions: Vec::new(),
            retries: BTreeMap::new(),
            failovers: Vec::new(),
            dropped_spans: 0,
        }
    }

    fn observe(&mut self, ev: &TimedEvent) {
        match &ev.event {
            TraceEvent::AccelPhaseChange {
                accel, to, frame, ..
            } => {
                self.timelines
                    .entry(accel.clone())
                    .or_default()
                    .push((ev.cycle, to, *frame));
            }
            TraceEvent::FrameComplete { accel, frame } => {
                self.completions.push((ev.cycle, accel.clone(), *frame));
            }
            TraceEvent::RetryScheduled {
                device, backoff, ..
            } => {
                self.retries
                    .entry(device.clone())
                    .or_default()
                    .push((ev.cycle, ev.cycle.saturating_add(*backoff)));
            }
            TraceEvent::FailedOver { from, to } => {
                self.failovers.push((ev.cycle, from.clone(), to.clone()));
            }
            _ => {}
        }
    }

    fn close(self, end_cycle: u64, critical_path_base: Option<CriticalPath>) -> SpanReport {
        // Instance -> (stage index, stage name); failover spares join
        // the stage of the instance they replaced.
        let mut stage_of: BTreeMap<String, (usize, String)> = BTreeMap::new();
        for (i, (name, members)) in self.groups.iter().enumerate() {
            for m in members {
                stage_of.insert(m.clone(), (i, name.clone()));
            }
        }
        for (_, from, to) in &self.failovers {
            if let Some(stage) = stage_of.get(from).cloned() {
                stage_of.entry(to.clone()).or_insert(stage);
            }
        }
        let stage_key = |accel: &str| -> (usize, String) {
            stage_of
                .get(accel)
                .cloned()
                .unwrap_or((usize::MAX, accel.to_string()))
        };

        let mut by_frame: BTreeMap<u64, Vec<(u64, String)>> = BTreeMap::new();
        for (cycle, accel, frame) in &self.completions {
            by_frame
                .entry(*frame)
                .or_default()
                .push((*cycle, accel.clone()));
        }

        let empty_tl: Vec<TimelineEntry> = Vec::new();
        let empty_rw: Vec<(u64, u64)> = Vec::new();
        let mut frames = Vec::new();
        for (frame_id, mut chain) in by_frame {
            chain.sort_by(|a, b| {
                let (ka, kb) = (stage_key(&a.1), stage_key(&b.1));
                (a.0, ka.0, &a.1).cmp(&(b.0, kb.0, &b.1))
            });
            let (first_done, owner0) = (chain[0].0, chain[0].1.clone());
            let tl0 = self.timelines.get(&owner0).unwrap_or(&empty_tl);
            let tagged_entry = tl0
                .iter()
                .find(|(_, _, tag)| *tag == Some(frame_id))
                .map(|(c, _, _)| *c);
            let mut partial = false;
            let prev_completion = self
                .completions
                .iter()
                .filter(|(c, a, _)| *a == owner0 && *c < first_done)
                .map(|(c, _, _)| *c)
                .max()
                .unwrap_or(self.start_cycle);
            let mut begin = match tagged_entry {
                Some(c) => c.min(first_done),
                None => {
                    partial = true;
                    // Fall back to the owner's previous completion (the
                    // profiler's service-interval convention).
                    prev_completion
                }
            };
            // A retry of the owner before the frame's first tagged phase
            // means the frame sat on a hung device: pull the segment
            // back to the owner's previous completion so the watchdog
            // wait and retry backoff are attributed (as queue and retry
            // spans) instead of falling outside every frame.
            if let Some(rw) = self.retries.get(&owner0) {
                if rw
                    .iter()
                    .any(|(ra, _)| *ra >= prev_completion && *ra < begin)
                {
                    begin = begin.min(prev_completion);
                }
            }

            let mut prev = begin;
            let mut stages = Vec::new();
            for (done, accel) in &chain {
                let seg_begin = prev.min(*done);
                let tl = self.timelines.get(accel).unwrap_or(&empty_tl);
                let rw = self.retries.get(accel).unwrap_or(&empty_rw);
                let mut spans = subdivide(seg_begin, *done, frame_id, tl, rw);
                for (fc, from, to) in &self.failovers {
                    if (to == accel || from == accel) && *fc >= seg_begin && *fc <= *done {
                        spans.push(Span {
                            kind: SpanKind::Failover,
                            begin: *fc,
                            end: *fc,
                        });
                    }
                }
                spans.sort_by_key(|s| (s.begin, s.end));
                stages.push(StageSpan {
                    stage: stage_key(accel).1,
                    owner: accel.clone(),
                    begin: seg_begin,
                    end: *done,
                    spans,
                });
                prev = *done;
            }

            let critical = stages
                .iter()
                .filter_map(|s| {
                    s.kind_cycles()
                        .into_iter()
                        .max_by_key(|(_, v)| *v)
                        .map(|(kind, cycles)| CriticalLink {
                            stage: s.stage.clone(),
                            kind: kind.label().to_string(),
                            cycles,
                        })
                })
                .collect();

            frames.push(FrameSpans {
                frame: frame_id,
                begin,
                end: chain.last().map(|(c, _)| *c).unwrap_or(begin),
                stages,
                critical,
                partial,
            });
        }

        // Aggregate per-stage span cost across all frames.
        let mut agg: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for f in &frames {
            for s in &f.stages {
                let entry = agg.entry(s.stage.clone()).or_default();
                for (kind, cycles) in s.kind_cycles() {
                    *entry.entry(kind.label().to_string()).or_insert(0) += cycles;
                }
            }
        }
        // Pipeline order: declared groups first, then any extras.
        let mut stage_order: Vec<String> = self.groups.iter().map(|(n, _)| n.clone()).collect();
        for name in agg.keys() {
            if !stage_order.contains(name) {
                stage_order.push(name.clone());
            }
        }
        let stage_costs: Vec<StageCost> = stage_order
            .iter()
            .filter_map(|name| {
                agg.get(name).map(|kinds| {
                    let dominant = kinds
                        .iter()
                        .max_by(|a, b| a.1.cmp(b.1))
                        .map(|(k, _)| k.clone())
                        .unwrap_or_else(|| "queue".to_string());
                    StageCost {
                        stage: name.clone(),
                        total: kinds.values().sum(),
                        dominant,
                        kinds: kinds.clone(),
                    }
                })
            })
            .collect();

        let critical_path = critical_path_base.map(|mut cp| {
            cp.dominant_kind = stage_costs
                .iter()
                .find(|s| s.stage == cp.limiting_stage)
                .map(|s| s.dominant.clone())
                .unwrap_or_else(|| "compute".to_string());
            cp.stages = stage_costs;
            cp
        });

        let partial = self.dropped_spans > 0 || frames.iter().any(|f| f.partial);
        SpanReport {
            label: self.label,
            start_cycle: self.start_cycle,
            end_cycle,
            frames,
            critical_path,
            dropped_spans: self.dropped_spans,
            partial,
        }
    }
}

#[derive(Debug, Default)]
struct SpanState {
    pending_groups: Option<Vec<(String, Vec<String>)>>,
    current: Option<SpanAccum>,
    finished: Vec<SpanReport>,
    /// Embedded profiler fed the identical stream; its bottleneck
    /// selection is reused verbatim for critical-path agreement.
    profiler: ProfileCollector,
}

impl SpanState {
    fn bottleneck_base(&mut self, end_cycle: u64) -> Option<CriticalPath> {
        let profile = self.profiler.close_run(end_cycle);
        self.profiler.take_reports();
        profile.and_then(|p| p.bottleneck).map(|b| CriticalPath {
            limiting_stage: b.limiting_stage,
            dominant_kind: String::new(),
            bound_cycles_per_frame: b.bound_cycles_per_frame,
            next_bound_cycles_per_frame: b.next_bound_cycles_per_frame,
            observed_cycles_per_frame: b.observed_cycles_per_frame,
            busy_fraction: b.busy_fraction,
            speedup_ceiling: b.speedup_ceiling,
            stages: Vec::new(),
        })
    }

    fn observe(&mut self, ev: &TimedEvent) {
        if let TraceEvent::RunStart { label } = &ev.event {
            if let Some(open) = self.current.take() {
                let base = self.bottleneck_base(ev.cycle);
                self.finished.push(open.close(ev.cycle, base));
            }
            let groups = self.pending_groups.take().unwrap_or_default();
            self.current = Some(SpanAccum::new(label.clone(), ev.cycle, groups));
            self.profiler.observe(ev);
            return;
        }
        self.profiler.observe(ev);
        if let Some(run) = self.current.as_mut() {
            run.observe(ev);
        }
    }
}

/// Shared handle onto online span-assembly state.
///
/// Clone it freely: all clones observe into the same state. Typical
/// wiring is [`SpanCollector::sink`] inside a tracer's sink chain, or
/// [`SpanCollector::ring_buffer_tracer`] for standalone use.
#[derive(Clone, Debug, Default)]
pub struct SpanCollector {
    state: Arc<Mutex<SpanState>>,
}

impl SpanCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the pipeline stage groups for the *next* run started
    /// (same contract as
    /// [`ProfileCollector::set_stage_groups`]).
    pub fn set_stage_groups(&self, groups: Vec<(String, Vec<String>)>) {
        let mut st = self.lock();
        st.profiler.set_stage_groups(groups.clone());
        st.pending_groups = Some(groups);
    }

    /// Feeds one event into the span state.
    pub fn observe(&self, ev: &TimedEvent) {
        self.lock().observe(ev);
    }

    /// Replays a drained event stream (e.g. from a sink) in order.
    pub fn observe_all(&self, events: &[TimedEvent]) {
        let mut st = self.lock();
        for ev in events {
            st.observe(ev);
        }
    }

    /// Records how many span-relevant events were discarded before
    /// reaching this collector (e.g. [`Tracer::dropped_spans`] when
    /// replaying a saturated ring buffer). A non-zero count flags the
    /// open run's report as partial.
    pub fn note_dropped_spans(&self, n: u64) {
        if let Some(run) = self.lock().current.as_mut() {
            run.dropped_spans = n;
        }
    }

    /// Closes the open run at `end_cycle`, returning its report (also
    /// retained for [`SpanCollector::take_reports`]). `None` when no
    /// run is open.
    pub fn close_run(&self, end_cycle: u64) -> Option<SpanReport> {
        let mut st = self.lock();
        let accum = st.current.take()?;
        let base = st.bottleneck_base(end_cycle);
        let report = accum.close(end_cycle, base);
        st.finished.push(report.clone());
        Some(report)
    }

    /// Removes and returns all closed run reports in completion order.
    pub fn take_reports(&self) -> Vec<SpanReport> {
        std::mem::take(&mut self.lock().finished)
    }

    /// Wraps `inner` so every recorded event is observed and forwarded.
    pub fn sink(&self, inner: Box<dyn TraceSink>) -> SpanSink {
        SpanSink {
            state: Arc::clone(&self.state),
            inner,
        }
    }

    /// Builds an enabled [`Tracer`] whose sink assembles spans online
    /// and buffers events in a default-capacity [`RingBufferSink`].
    pub fn ring_buffer_tracer(&self) -> Tracer {
        Tracer::with_sink(Box::new(self.sink(Box::<RingBufferSink>::default())))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SpanState> {
        self.state.lock().expect("span state poisoned")
    }
}

/// A [`TraceSink`] adapter that observes each event into a
/// [`SpanCollector`] before forwarding it to an inner sink.
pub struct SpanSink {
    state: Arc<Mutex<SpanState>>,
    inner: Box<dyn TraceSink>,
}

impl std::fmt::Debug for SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanSink")
            .field("inner_len", &self.inner.len())
            .finish()
    }
}

impl TraceSink for SpanSink {
    fn record(&mut self, event: TimedEvent) {
        self.state
            .lock()
            .expect("span state poisoned")
            .observe(&event);
        self.inner.record(event);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dropped(&self) -> u64 {
        self.inner.dropped()
    }

    fn dropped_spans(&self) -> u64 {
        self.inner.dropped_spans()
    }

    fn drain(&mut self) -> Vec<TimedEvent> {
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TileCoord;
    use crate::profile::ProfileCollector;

    fn at(cycle: u64, event: TraceEvent) -> TimedEvent {
        TimedEvent {
            cycle,
            source: TileCoord::new(1, 1),
            event,
        }
    }

    fn phase(cycle: u64, accel: &str, to: &'static str, frame: Option<u64>) -> TimedEvent {
        at(
            cycle,
            TraceEvent::AccelPhaseChange {
                accel: accel.to_string(),
                from: "idle",
                to,
                frame,
            },
        )
    }

    fn frame(cycle: u64, accel: &str, frame: u64) -> TimedEvent {
        at(
            cycle,
            TraceEvent::FrameComplete {
                accel: accel.to_string(),
                frame,
            },
        )
    }

    fn run_start(cycle: u64, label: &str) -> TimedEvent {
        at(
            cycle,
            TraceEvent::RunStart {
                label: label.to_string(),
            },
        )
    }

    fn two_stage_events() -> Vec<TimedEvent> {
        vec![
            run_start(0, "t"),
            // Stage nv works frame 0: load 10..30, compute 30..100,
            // store 100..110, done.
            phase(10, "nv0", "load_wait", Some(0)),
            phase(30, "nv0", "compute", Some(0)),
            phase(100, "nv0", "store_issue", Some(0)),
            phase(110, "nv0", "idle", None),
            frame(110, "nv0", 0),
            // Stage cl picks frame 0 up at 120, computes to 150.
            phase(120, "cl0", "compute", Some(0)),
            phase(150, "cl0", "idle", None),
            frame(150, "cl0", 0),
        ]
    }

    fn collector_with_groups() -> SpanCollector {
        let c = SpanCollector::new();
        c.set_stage_groups(vec![
            ("nv".to_string(), vec!["nv0".to_string()]),
            ("cl".to_string(), vec!["cl0".to_string()]),
        ]);
        c
    }

    #[test]
    fn attribution_sums_to_frame_latency() {
        let c = collector_with_groups();
        for ev in two_stage_events() {
            c.observe(&ev);
        }
        let r = c.close_run(200).expect("run open");
        r.check_attribution().expect("invariant");
        assert_eq!(r.frames.len(), 1);
        let f = &r.frames[0];
        assert_eq!(f.begin, 10);
        assert_eq!(f.end, 150);
        assert_eq!(f.latency(), 140);
        assert!(!f.partial && !r.partial);
        // Stage segments: nv [10,110), cl [110,150).
        assert_eq!(f.stages.len(), 2);
        assert_eq!(f.stages[0].stage, "nv");
        assert_eq!(f.stages[1].stage, "cl");
        let nv = f.stages[0].kind_cycles();
        assert_eq!(nv[&SpanKind::Dma], 20 + 10); // load_wait + store_issue
        assert_eq!(nv[&SpanKind::Compute], 70);
        let cl = f.stages[1].kind_cycles();
        // 110..120 the cl socket had not yet taken the frame: queueing.
        assert_eq!(cl[&SpanKind::Queue], 10);
        assert_eq!(cl[&SpanKind::Compute], 30);
    }

    #[test]
    fn other_frame_work_is_queueing() {
        let c = collector_with_groups();
        c.observe(&run_start(0, "t"));
        c.observe(&phase(0, "nv0", "compute", Some(0)));
        c.observe(&frame(50, "nv0", 0));
        // nv starts frame 1 immediately; cl still busy with frame 0
        // until 90, so frame 1 queues behind it from 100 to 120.
        c.observe(&phase(50, "nv0", "compute", Some(1)));
        c.observe(&frame(100, "nv0", 1));
        c.observe(&phase(60, "cl0", "compute", Some(0)));
        c.observe(&frame(90, "cl0", 0));
        c.observe(&phase(120, "cl0", "compute", Some(1)));
        c.observe(&frame(140, "cl0", 1));
        let r = c.close_run(150).expect("run open");
        r.check_attribution().expect("invariant");
        let f1 = r.frames.iter().find(|f| f.frame == 1).expect("frame 1");
        let cl = f1.stages.iter().find(|s| s.stage == "cl").expect("cl");
        let kinds = cl.kind_cycles();
        // 100..120: cl idle/on frame 0 => queue; 120..140 compute.
        assert_eq!(kinds[&SpanKind::Queue], 20);
        assert_eq!(kinds[&SpanKind::Compute], 20);
    }

    #[test]
    fn retry_backoff_appears_as_retry_span() {
        let c = collector_with_groups();
        c.observe(&run_start(0, "t"));
        c.observe(&phase(0, "nv0", "compute", Some(0)));
        // Watchdog fires at 40: reset (socket leaves the batch) and
        // back off 30 cycles, then recompute and finish.
        c.observe(&at(
            40,
            TraceEvent::RetryScheduled {
                device: "nv0".to_string(),
                attempt: 1,
                backoff: 30,
            },
        ));
        c.observe(&phase(40, "nv0", "idle", None));
        c.observe(&phase(70, "nv0", "compute", Some(0)));
        c.observe(&frame(100, "nv0", 0));
        let r = c.close_run(120).expect("run open");
        r.check_attribution().expect("invariant");
        let f = &r.frames[0];
        let kinds = f.stages[0].kind_cycles();
        assert_eq!(kinds[&SpanKind::Retry], 30);
        assert_eq!(kinds[&SpanKind::Compute], 70);
    }

    #[test]
    fn failover_adds_marker_and_spare_joins_stage() {
        let c = collector_with_groups();
        c.observe(&run_start(0, "t"));
        c.observe(&phase(0, "nv0", "compute", Some(0)));
        c.observe(&at(
            40,
            TraceEvent::FailedOver {
                from: "nv0".to_string(),
                to: "nv1".to_string(),
            },
        ));
        c.observe(&phase(40, "nv1", "compute", Some(0)));
        c.observe(&frame(90, "nv1", 0));
        let r = c.close_run(100).expect("run open");
        r.check_attribution().expect("invariant");
        let f = &r.frames[0];
        // The spare completed the frame under the original stage name.
        assert_eq!(f.stages[0].stage, "nv");
        assert_eq!(f.stages[0].owner, "nv1");
        assert!(f.stages[0]
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::Failover && s.cycles() == 0));
    }

    #[test]
    fn critical_path_agrees_with_profiler_bottleneck() {
        let events = two_stage_events();
        let spans = collector_with_groups();
        let profiles = ProfileCollector::new();
        profiles.set_stage_groups(vec![
            ("nv".to_string(), vec!["nv0".to_string()]),
            ("cl".to_string(), vec!["cl0".to_string()]),
        ]);
        for ev in &events {
            spans.observe(ev);
            profiles.observe(ev);
        }
        let sr = spans.close_run(200).expect("run open");
        let pr = profiles.close_run(200).expect("run open");
        let cp = sr.critical_path.expect("critical path");
        let b = pr.bottleneck.expect("bottleneck");
        assert_eq!(cp.limiting_stage, b.limiting_stage);
        assert_eq!(cp.bound_cycles_per_frame, b.bound_cycles_per_frame);
        assert_eq!(cp.speedup_ceiling, b.speedup_ceiling);
        assert_eq!(cp.limiting_stage, "nv");
        assert_eq!(cp.dominant_kind, "compute");
        assert_eq!(cp.stages.len(), 2);
    }

    #[test]
    fn events_link_causally_within_a_frame() {
        let c = collector_with_groups();
        for ev in two_stage_events() {
            c.observe(&ev);
        }
        let r = c.close_run(200).expect("run open");
        let events = r.events();
        assert!(!events.is_empty());
        // Root span of the frame has no cause; every later span's
        // cause is the previous span id; begin/end pair shares an id.
        let begins: Vec<&SpanEvent> = events
            .iter()
            .filter(|e| e.phase == SpanPhase::Begin)
            .collect();
        assert_eq!(begins[0].cause, None);
        for pair in begins.windows(2) {
            assert_eq!(pair[1].cause, Some(pair[0].id));
        }
        for b in &begins {
            assert!(events
                .iter()
                .any(|e| e.phase == SpanPhase::End && e.id == b.id));
        }
    }

    #[test]
    fn dropped_spans_flag_report_partial() {
        let c = collector_with_groups();
        for ev in two_stage_events() {
            c.observe(&ev);
        }
        c.note_dropped_spans(7);
        let r = c.close_run(200).expect("run open");
        assert_eq!(r.dropped_spans, 7);
        assert!(r.partial);
        assert!(r.render_text().contains("PARTIAL"));
    }

    #[test]
    fn missing_phase_tags_yield_partial_frame_not_panic() {
        let c = collector_with_groups();
        c.observe(&run_start(0, "t"));
        // Only the completion survived buffer pressure.
        c.observe(&frame(110, "nv0", 0));
        let r = c.close_run(200).expect("run open");
        r.check_attribution().expect("invariant");
        assert_eq!(r.frames.len(), 1);
        assert!(r.frames[0].partial);
        assert!(r.partial);
    }

    #[test]
    fn run_start_closes_previous_run() {
        let c = SpanCollector::new();
        c.observe(&run_start(0, "first"));
        c.observe(&frame(10, "x", 0));
        c.observe(&run_start(100, "second"));
        c.observe(&frame(110, "x", 0));
        c.close_run(200);
        let reports = c.take_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].label, "first");
        assert_eq!(reports[0].end_cycle, 100);
        assert_eq!(reports[1].label, "second");
        assert!(c.take_reports().is_empty());
    }

    #[test]
    fn span_sink_forwards_and_assembles() {
        let c = SpanCollector::new();
        let tracer = c.ring_buffer_tracer();
        tracer.emit(0, TileCoord::new(0, 0), || TraceEvent::RunStart {
            label: "s".to_string(),
        });
        tracer.emit(5, TileCoord::new(0, 0), || TraceEvent::FrameComplete {
            accel: "k".to_string(),
            frame: 0,
        });
        let r = c.close_run(10).expect("run open");
        assert_eq!(r.frames.len(), 1);
        assert_eq!(tracer.len(), 2); // events still buffered for export
    }

    #[test]
    fn flame_output_is_folded_stacks() {
        let c = collector_with_groups();
        for ev in two_stage_events() {
            c.observe(&ev);
        }
        let r = c.close_run(200).expect("run open");
        let flame = r.render_flame();
        assert!(flame.contains("t;frame0;nv;compute 70"));
        assert!(flame.contains("t;frame0;cl;queue 10"));
    }

    #[test]
    fn serialized_report_is_deterministic() {
        let build = || {
            let c = collector_with_groups();
            for ev in two_stage_events() {
                c.observe(&ev);
            }
            serde_json::to_string(&c.close_run(200).expect("run open")).expect("serialize")
        };
        assert_eq!(build(), build());
    }
}
