//! The cloneable tracer handle distributed into simulator components.

use crate::event::{TileCoord, TimedEvent, TraceEvent};
use crate::sink::{RingBufferSink, TraceSink};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

struct TracerInner {
    enabled: AtomicBool,
    sink: Mutex<Box<dyn TraceSink>>,
}

/// Handle for emitting trace events.
///
/// Cloning is cheap (an `Option<Arc>`), so every tile, the mesh, and
/// the runtime hold their own copy. The default handle is *disabled*:
/// [`Tracer::emit`] then costs exactly one branch — the event closure
/// is never invoked, so no payload is built and nothing allocates.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TracerInner>>);

impl Tracer {
    /// A no-op tracer (the default for every simulator component).
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A tracer recording into a [`RingBufferSink`] of default capacity.
    pub fn ring_buffer() -> Self {
        Self::with_sink(Box::<RingBufferSink>::default())
    }

    /// A tracer recording into a [`RingBufferSink`] bounded at
    /// `capacity` events.
    pub fn ring_buffer_with_capacity(capacity: usize) -> Self {
        Self::with_sink(Box::new(RingBufferSink::new(capacity)))
    }

    /// A tracer recording into an arbitrary sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Tracer(Some(Arc::new(TracerInner {
            enabled: AtomicBool::new(true),
            sink: Mutex::new(sink),
        })))
    }

    /// True when events are currently being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        match &self.0 {
            Some(inner) => inner.enabled.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Pauses or resumes recording (no-op on a disabled tracer).
    pub fn set_enabled(&self, on: bool) {
        if let Some(inner) = &self.0 {
            inner.enabled.store(on, Ordering::Relaxed);
        }
    }

    /// Records the event produced by `build`, stamped with `cycle` and
    /// `source`. `build` runs only when the tracer is enabled, keeping
    /// the disabled fast path free of any payload construction.
    #[inline]
    pub fn emit(&self, cycle: u64, source: TileCoord, build: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.0 {
            if inner.enabled.load(Ordering::Relaxed) {
                let event = TimedEvent {
                    cycle,
                    source,
                    event: build(),
                };
                if let Ok(mut sink) = inner.sink.lock() {
                    sink.record(event);
                }
            }
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        match &self.0 {
            Some(inner) => inner.sink.lock().map(|s| s.len()).unwrap_or(0),
            None => 0,
        }
    }

    /// True when no events are buffered (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded by the sink under capacity pressure.
    pub fn dropped(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.sink.lock().map(|s| s.dropped()).unwrap_or(0),
            None => 0,
        }
    }

    /// Discarded events the span assembler needed, counted separately
    /// from [`Tracer::dropped`].
    pub fn dropped_spans(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.sink.lock().map(|s| s.dropped_spans()).unwrap_or(0),
            None => 0,
        }
    }

    /// Removes and returns all buffered events in chronological order.
    pub fn drain(&self) -> Vec<TimedEvent> {
        match &self.0 {
            Some(inner) => inner.sink.lock().map(|mut s| s.drain()).unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("buffered", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_builds_payload() {
        let tracer = Tracer::disabled();
        let mut built = false;
        tracer.emit(1, TileCoord::new(0, 0), || {
            built = true;
            TraceEvent::NocPacketInject {
                plane: 0,
                frame: None,
            }
        });
        assert!(!built, "payload closure ran on a disabled tracer");
        assert!(tracer.is_empty());
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn enabled_records_and_drains() {
        let tracer = Tracer::ring_buffer_with_capacity(16);
        for c in 0..4 {
            tracer.emit(c, TileCoord::new(1, 2), || TraceEvent::TlbMiss {
                penalty: 9,
            });
        }
        assert_eq!(tracer.len(), 4);
        let events = tracer.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].source, TileCoord::new(1, 2));
        assert!(tracer.is_empty());
    }

    #[test]
    fn clones_share_the_sink() {
        let a = Tracer::ring_buffer_with_capacity(8);
        let b = a.clone();
        b.emit(5, TileCoord::new(0, 1), || TraceEvent::NocPacketInject {
            plane: 2,
            frame: None,
        });
        assert_eq!(a.len(), 1);
        a.set_enabled(false);
        b.emit(6, TileCoord::new(0, 1), || TraceEvent::NocPacketInject {
            plane: 2,
            frame: None,
        });
        assert_eq!(a.len(), 1, "paused tracer still recorded");
    }
}
