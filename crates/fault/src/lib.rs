//! Deterministic fault plans for the ESP4ML simulator.
//!
//! A [`FaultPlan`] describes *where* and *when* hardware misbehaves:
//! accelerator hangs and short (wrong-length) results, DMA word drops in
//! the memory tile, and NoC link degradation or flit corruption on a
//! chosen plane. The SoC installs a plan before a run
//! (`Soc::install_fault_plan`); the runtime's watchdog/retry/failover
//! machinery then has something real to recover from.
//!
//! # Determinism contract
//!
//! Every trigger in a plan counts *architectural events* — the N-th
//! accelerator invocation, the N-th DMA burst a memory tile services,
//! the N-th packet injected on a plane — never wall-clock polling.
//! Architectural events happen at identical cycles under the naive and
//! event-driven engines (the engine-equivalence contract), so the same
//! plan perturbs both engines identically and a seeded fault campaign
//! is byte-for-byte reproducible under either engine. The optional
//! [`CycleWindow`] is evaluated at event time, preserving the property.
//!
//! ```
//! use esp4ml_fault::{FaultPlan, FaultSpec};
//!
//! let plan = FaultPlan::new(7).with(FaultSpec::permanent_hang("nv0"));
//! let json = plan.to_json().unwrap();
//! assert_eq!(FaultPlan::from_json(&json).unwrap(), plan);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open cycle interval `[from, until)` gating when a fault is
/// armed. The window is evaluated at the moment the triggering
/// architectural event happens (engine-deterministic); the default
/// window covers the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleWindow {
    /// First cycle (inclusive) at which the fault is armed.
    pub from: u64,
    /// First cycle (exclusive) at which the fault is disarmed.
    pub until: u64,
}

impl CycleWindow {
    /// A window covering the entire run.
    pub fn always() -> Self {
        CycleWindow {
            from: 0,
            until: u64::MAX,
        }
    }

    /// The window `[from, until)`.
    pub fn between(from: u64, until: u64) -> Self {
        CycleWindow { from, until }
    }

    /// Whether `cycle` falls inside the window.
    pub fn contains(&self, cycle: u64) -> bool {
        cycle >= self.from && cycle < self.until
    }
}

impl Default for CycleWindow {
    fn default() -> Self {
        CycleWindow::always()
    }
}

/// What kind of hardware fault to inject. All index fields count
/// architectural events from the moment the plan is installed; `count`
/// is how many consecutive matching events are affected (`u64::MAX`
/// models a permanently broken component).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "fault", rename_all = "snake_case")]
pub enum FaultKind {
    /// The named accelerator swallows its start command: the socket FSM
    /// stays idle and no completion IRQ is ever raised — the classic
    /// hung-device scenario the watchdog must catch.
    AccelHang {
        /// Device (kernel) name, as probed by the driver.
        device: String,
        /// First affected invocation index (0-based, counted per device).
        from_invocation: u64,
        /// Number of consecutive affected invocations.
        count: u64,
    },
    /// The named accelerator produces a wrong-length result: the last
    /// `drop_words` NoC words of its output are never stored, so the
    /// store phase (or the downstream p2p consumer) starves.
    AccelShortOutput {
        /// Device (kernel) name, as probed by the driver.
        device: String,
        /// First affected invocation index (0-based, counted per device).
        from_invocation: u64,
        /// Number of consecutive affected invocations.
        count: u64,
        /// Output words dropped per affected invocation (clamped to the
        /// invocation's output length; at least one word always survives
        /// so the DMA/p2p framing stays parseable).
        drop_words: u64,
    },
    /// A memory tile drops the trailing `drop_words` words of the
    /// response to a DMA load burst, as a flaky memory channel would.
    DmaDropWords {
        /// First affected load burst (0-based, counted per memory tile).
        from_burst: u64,
        /// Number of consecutive affected bursts.
        count: u64,
        /// Words dropped from the tail of each affected response.
        drop_words: u64,
    },
    /// NoC link degradation: packets injected on `plane` are held back
    /// `extra_cycles` before entering the network, modelling a link
    /// retraining at reduced bandwidth.
    NocDelay {
        /// NoC plane index (0-based; see `esp4ml_noc::Plane::ALL`).
        plane: usize,
        /// First affected packet (0-based, counted per plane at inject).
        from_packet: u64,
        /// Number of consecutive affected packets.
        count: u64,
        /// Extra cycles each affected packet is held before injection.
        extra_cycles: u64,
    },
    /// NoC flit corruption: one payload word of a delivered packet on
    /// `plane` is XOR-ed with `xor_mask` at ejection — silent data
    /// corruption that completes "successfully" with wrong results.
    NocCorrupt {
        /// NoC plane index (0-based).
        plane: usize,
        /// First affected packet (0-based, counted per plane at eject).
        from_packet: u64,
        /// Number of consecutive affected packets.
        count: u64,
        /// XOR mask applied to one payload word of each affected packet.
        xor_mask: u64,
    },
}

impl FaultKind {
    /// Stable label for reports and trace events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::AccelHang { .. } => "accel_hang",
            FaultKind::AccelShortOutput { .. } => "accel_short_output",
            FaultKind::DmaDropWords { .. } => "dma_drop_words",
            FaultKind::NocDelay { .. } => "noc_delay",
            FaultKind::NocCorrupt { .. } => "noc_corrupt",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::AccelHang {
                device,
                from_invocation,
                count,
            } => write!(
                f,
                "hang {device} for {} invocation(s) from #{from_invocation}",
                Pretty(*count)
            ),
            FaultKind::AccelShortOutput {
                device,
                from_invocation,
                count,
                drop_words,
            } => write!(
                f,
                "truncate {device} output by {drop_words} word(s) for {} invocation(s) \
                 from #{from_invocation}",
                Pretty(*count)
            ),
            FaultKind::DmaDropWords {
                from_burst,
                count,
                drop_words,
            } => write!(
                f,
                "drop {drop_words} word(s) from {} DMA load burst(s) from #{from_burst}",
                Pretty(*count)
            ),
            FaultKind::NocDelay {
                plane,
                from_packet,
                count,
                extra_cycles,
            } => write!(
                f,
                "delay {} packet(s) on plane {plane} by {extra_cycles} cycle(s) \
                 from #{from_packet}",
                Pretty(*count)
            ),
            FaultKind::NocCorrupt {
                plane,
                from_packet,
                count,
                xor_mask,
            } => write!(
                f,
                "corrupt {} packet(s) on plane {plane} with mask {xor_mask:#x} \
                 from #{from_packet}",
                Pretty(*count)
            ),
        }
    }
}

/// Renders `u64::MAX` as "all" in Display output.
struct Pretty(u64);

impl fmt::Display for Pretty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "all")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// One scheduled fault: a kind plus the cycle window in which it is
/// armed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// What breaks.
    pub kind: FaultKind,
    /// When the fault is armed (default: the whole run).
    #[serde(default)]
    pub window: CycleWindow,
}

impl FaultSpec {
    /// Wraps a kind with the always-on window.
    pub fn new(kind: FaultKind) -> Self {
        FaultSpec {
            kind,
            window: CycleWindow::always(),
        }
    }

    /// Restricts the fault to a cycle window (builder style).
    pub fn in_window(mut self, window: CycleWindow) -> Self {
        self.window = window;
        self
    }

    /// A permanently hung device: every invocation is swallowed,
    /// retries are futile and only failover can recover.
    pub fn permanent_hang(device: &str) -> Self {
        FaultSpec::new(FaultKind::AccelHang {
            device: device.to_string(),
            from_invocation: 0,
            count: u64::MAX,
        })
    }

    /// A transient hang: exactly one invocation (`invocation`) of the
    /// device is swallowed; a retry succeeds.
    pub fn transient_hang(device: &str, invocation: u64) -> Self {
        FaultSpec::new(FaultKind::AccelHang {
            device: device.to_string(),
            from_invocation: invocation,
            count: 1,
        })
    }

    /// One short (wrong-length) result at `invocation`, `drop_words`
    /// words short.
    pub fn short_output(device: &str, invocation: u64, drop_words: u64) -> Self {
        FaultSpec::new(FaultKind::AccelShortOutput {
            device: device.to_string(),
            from_invocation: invocation,
            count: 1,
            drop_words,
        })
    }
}

/// A complete, seeded fault schedule for one run.
///
/// The `seed` records how the plan was generated (0 for hand-written
/// plans); the faults themselves are fully explicit, so a serialized
/// plan replays identically regardless of the generator's evolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Campaign seed this plan was generated from (0 = hand-written).
    #[serde(default)]
    pub seed: u64,
    /// The scheduled faults.
    #[serde(default)]
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with a seed recorded.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Serializes the plan as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a plan from JSON.
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Generates a single-fault plan of the given class from a seed —
    /// the unit of an `espfault` campaign sweep. The targets describe
    /// the victim pipeline; the seed picks the victim device, the
    /// trigger index and the fault magnitude deterministically.
    pub fn generate(seed: u64, class: FaultClass, targets: &CampaignTargets) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE5F4_FA17);
        let device = if targets.devices.is_empty() {
            String::new()
        } else {
            targets.devices[rng.gen_range(0..targets.devices.len())].clone()
        };
        let invocation = rng.gen_range(0..targets.frames.max(1));
        let kind = match class {
            FaultClass::AccelHang => FaultKind::AccelHang {
                device,
                from_invocation: invocation,
                count: if rng.gen_range(0..4u32) == 0 {
                    u64::MAX // one in four hangs is permanent
                } else {
                    rng.gen_range(1..=2u64)
                },
            },
            FaultClass::AccelShortOutput => FaultKind::AccelShortOutput {
                device,
                from_invocation: invocation,
                count: 1,
                drop_words: rng.gen_range(1..=8u64),
            },
            FaultClass::DmaDropWords => FaultKind::DmaDropWords {
                from_burst: rng.gen_range(0..targets.frames.max(1) * 2),
                count: 1,
                drop_words: rng.gen_range(1..=16u64),
            },
            FaultClass::NocDelay => FaultKind::NocDelay {
                plane: targets.planes[rng.gen_range(0..targets.planes.len().max(1))],
                from_packet: rng.gen_range(0..targets.frames.max(1) * 4),
                count: rng.gen_range(1..=8u64),
                extra_cycles: rng.gen_range(50..=500u64),
            },
            FaultClass::NocCorrupt => FaultKind::NocCorrupt {
                plane: targets.planes[rng.gen_range(0..targets.planes.len().max(1))],
                from_packet: rng.gen_range(0..targets.frames.max(1) * 4),
                count: 1,
                xor_mask: rng.gen::<u64>() | 1, // never the identity mask
            },
        };
        FaultPlan::new(seed).with(FaultSpec::new(kind))
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault plan (seed {}):", self.seed)?;
        if self.faults.is_empty() {
            writeln!(f, "  (no faults)")?;
        }
        for spec in &self.faults {
            write!(f, "  - {}", spec.kind)?;
            if spec.window != CycleWindow::always() {
                write!(
                    f,
                    " in cycles [{}, {})",
                    spec.window.from, spec.window.until
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The fault classes an `espfault` campaign sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultClass {
    /// Accelerator hang (swallowed start, no IRQ).
    AccelHang,
    /// Accelerator wrong-length (short) result.
    AccelShortOutput,
    /// DMA word drop in the memory tile.
    DmaDropWords,
    /// NoC link degradation (extra injection latency).
    NocDelay,
    /// NoC flit corruption (silent payload bit-flips).
    NocCorrupt,
}

impl FaultClass {
    /// Every class, in campaign sweep order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::AccelHang,
        FaultClass::AccelShortOutput,
        FaultClass::DmaDropWords,
        FaultClass::NocDelay,
        FaultClass::NocCorrupt,
    ];

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::AccelHang => "accel_hang",
            FaultClass::AccelShortOutput => "accel_short_output",
            FaultClass::DmaDropWords => "dma_drop_words",
            FaultClass::NocDelay => "noc_delay",
            FaultClass::NocCorrupt => "noc_corrupt",
        }
    }
}

/// What an `espfault` campaign may aim a generated fault at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignTargets {
    /// Candidate victim devices (the pipeline's stage instances).
    pub devices: Vec<String>,
    /// Candidate NoC plane indices for NoC faults.
    pub planes: Vec<usize>,
    /// Frames the victim run processes (bounds trigger indices).
    pub frames: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> CampaignTargets {
        CampaignTargets {
            devices: vec!["nv0".into(), "cl0".into()],
            planes: vec![4, 5],
            frames: 8,
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_kind() {
        let plan = FaultPlan::new(3)
            .with(FaultSpec::permanent_hang("nv0"))
            .with(FaultSpec::short_output("cl0", 2, 4))
            .with(FaultSpec::new(FaultKind::DmaDropWords {
                from_burst: 1,
                count: 1,
                drop_words: 8,
            }))
            .with(
                FaultSpec::new(FaultKind::NocDelay {
                    plane: 4,
                    from_packet: 0,
                    count: 2,
                    extra_cycles: 100,
                })
                .in_window(CycleWindow::between(0, 10_000)),
            )
            .with(FaultSpec::new(FaultKind::NocCorrupt {
                plane: 5,
                from_packet: 3,
                count: 1,
                xor_mask: 0xFF,
            }));
        let json = plan.to_json().unwrap();
        assert_eq!(FaultPlan::from_json(&json).unwrap(), plan);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for class in FaultClass::ALL {
            let a = FaultPlan::generate(42, class, &targets());
            let b = FaultPlan::generate(42, class, &targets());
            assert_eq!(a, b, "{class:?}");
            let c = FaultPlan::generate(43, class, &targets());
            assert_eq!(c.seed, 43);
        }
    }

    #[test]
    fn generated_triggers_stay_in_bounds() {
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, FaultClass::AccelHang, &targets());
            assert_eq!(plan.faults.len(), 1);
            match &plan.faults[0].kind {
                FaultKind::AccelHang {
                    device,
                    from_invocation,
                    count,
                } => {
                    assert!(targets().devices.contains(device));
                    assert!(*from_invocation < 8);
                    assert!(*count >= 1);
                }
                other => panic!("wrong kind {other:?}"),
            }
        }
    }

    #[test]
    fn window_gates_cycles() {
        let w = CycleWindow::between(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(CycleWindow::always().contains(u64::MAX - 1));
    }

    #[test]
    fn default_window_omitted_from_json_still_parses() {
        let json = r#"{"seed":0,"faults":[{"kind":{"fault":"accel_hang",
            "device":"nv0","from_invocation":0,"count":1}}]}"#;
        let plan = FaultPlan::from_json(json).unwrap();
        assert_eq!(plan.faults[0].window, CycleWindow::always());
    }

    #[test]
    fn display_summarizes_the_plan() {
        let text = FaultPlan::new(7)
            .with(FaultSpec::permanent_hang("nv1"))
            .to_string();
        assert!(text.contains("seed 7"), "{text}");
        assert!(text.contains("hang nv1 for all invocation(s)"), "{text}");
    }
}
