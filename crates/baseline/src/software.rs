//! Software execution of the case-study applications.
//!
//! Functional reference paths: the exact computation the baselines run,
//! used by the benchmarks to validate that the accelerated pipelines
//! produce the same results as the software they are compared against.

use crate::Workload;
use esp4ml_nn::{Matrix, Sequential};
use esp4ml_vision::kernels::night_vision;

/// A software application runner over trained float models.
#[derive(Debug, Clone)]
pub struct SoftwareApp {
    classifier: Option<Sequential>,
    denoiser: Option<Sequential>,
}

impl SoftwareApp {
    /// Builds a runner from the (optional) trained models.
    pub fn new(classifier: Option<Sequential>, denoiser: Option<Sequential>) -> Self {
        SoftwareApp {
            classifier,
            denoiser,
        }
    }

    /// NightVision & Classifier on one dark frame: returns the predicted
    /// class.
    ///
    /// # Panics
    ///
    /// Panics if no classifier was provided.
    pub fn night_vision_classify(&self, dark_image: &[f32]) -> usize {
        let clf = self.classifier.as_ref().expect("classifier model");
        let restored = night_vision(dark_image);
        let x = Matrix::from_vec(1, restored.len(), restored);
        clf.predict_classes(&x)[0]
    }

    /// Denoiser & Classifier on one noisy frame: returns the predicted
    /// class.
    ///
    /// # Panics
    ///
    /// Panics if a model is missing.
    pub fn denoise_classify(&self, noisy_image: &[f32]) -> usize {
        let den = self.denoiser.as_ref().expect("denoiser model");
        let clf = self.classifier.as_ref().expect("classifier model");
        let x = Matrix::from_vec(1, noisy_image.len(), noisy_image.to_vec());
        let cleaned = den.forward(&x);
        clf.predict_classes(&cleaned)[0]
    }

    /// Plain classification of one frame.
    ///
    /// # Panics
    ///
    /// Panics if no classifier was provided.
    pub fn classify(&self, image: &[f32]) -> usize {
        let clf = self.classifier.as_ref().expect("classifier model");
        let x = Matrix::from_vec(1, image.len(), image.to_vec());
        clf.predict_classes(&x)[0]
    }

    /// The workload of the full pipeline this runner executes per frame
    /// (for feeding the platform models with the *actual* model sizes).
    pub fn workload(&self, with_night_vision: bool) -> Workload {
        let mut w = Workload::default();
        if with_night_vision {
            w = w.then(Workload::night_vision());
        }
        if let Some(d) = &self.denoiser {
            w = w.then(Workload::from_model(d));
        }
        if let Some(c) = &self.classifier {
            w = w.then(Workload::from_model(c));
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_vision::SvhnGenerator;

    #[test]
    fn pipelines_run_end_to_end() {
        let app = SoftwareApp::new(
            Some(Sequential::svhn_classifier()),
            Some(Sequential::svhn_denoiser()),
        );
        let mut gen = SvhnGenerator::new(11);
        let s = gen.sample();
        let dark = SvhnGenerator::darken(&s.image, 0.3);
        let noisy = gen.add_noise(&s.image, 0.1);
        // Untrained models: just verify the plumbing produces a class.
        assert!(app.night_vision_classify(&dark) < 10);
        assert!(app.denoise_classify(&noisy) < 10);
        assert!(app.classify(&s.image) < 10);
    }

    #[test]
    fn workload_reflects_models() {
        let app = SoftwareApp::new(Some(Sequential::svhn_classifier()), None);
        assert_eq!(app.workload(false), Workload::classifier());
        assert_eq!(
            app.workload(true),
            Workload::night_vision().then(Workload::classifier())
        );
        let both = SoftwareApp::new(
            Some(Sequential::svhn_classifier()),
            Some(Sequential::svhn_denoiser()),
        );
        assert_eq!(
            both.workload(false),
            Workload::denoiser().then(Workload::classifier())
        );
    }
}
