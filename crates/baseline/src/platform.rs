//! Platform performance/power models.

use crate::Workload;
use serde::{Deserialize, Serialize};

/// An execution platform: effective compute rates plus datasheet power.
///
/// `nn_gflops` is the *effective* dense-inference rate (GFLOP/s, counting
/// 2 FLOPs per MAC) achieved on the paper's small per-frame batches — far
/// below peak for both platforms, dominated by kernel-launch and
/// memory-traffic overheads on the GPU and by small-GEMM inefficiency on
/// the CPU. `scalar_mops` is the effective rate (Mop/s) for the branchy,
/// single-threaded pixel code of the Night-Vision kernels.
///
/// Both constants are calibrated so the model reproduces the paper's
/// measured baseline rows of Table I; `EXPERIMENTS.md` records the fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Platform name.
    pub name: String,
    /// Effective dense NN throughput in GFLOP/s.
    pub nn_gflops: f64,
    /// Effective scalar pixel-processing throughput in Mop/s.
    pub scalar_mops: f64,
    /// Power drawn by the unit executing NN work, in watts.
    pub nn_watts: f64,
    /// Power drawn by the unit executing scalar work, in watts.
    pub scalar_watts: f64,
}

impl Platform {
    /// The Intel i7-8700K model. The paper estimates a TDP of 78.6 W
    /// (nominal 95 W); both workload kinds run on the same cores.
    pub fn intel_i7_8700k() -> Self {
        Platform {
            name: "Intel i7-8700K".into(),
            nn_gflops: 50.0,
            scalar_mops: 67.0,
            nn_watts: 78.6,
            scalar_watts: 78.6,
        }
    }

    /// The NVIDIA Jetson TX1 model: NN work on the 256-core Maxwell GPU
    /// (10 W), scalar single-threaded work on a Cortex-A57 core (1.5 W).
    pub fn jetson_tx1() -> Self {
        Platform {
            name: "NVIDIA Jetson TX1".into(),
            nn_gflops: 4.1,
            scalar_mops: 13.5,
            nn_watts: 10.0,
            scalar_watts: 1.5,
        }
    }

    /// The Ariane RV64 processor tile of the ESP SoC itself — the
    /// software-fallback path the runtime degrades to when a pipeline
    /// stage loses every accelerator (and spare). A single in-order core
    /// at ~78 MHz without SIMD: effective dense-inference throughput of
    /// roughly 0.03 GFLOP/s (scalar FPU MACs with load/store overhead)
    /// and ~3 Mop/s on the branchy pixel kernels, drawing about half a
    /// watt. Degraded frames/s reported through this model are meant to
    /// look bad — that is the honest cost of losing the accelerators.
    pub fn ariane() -> Self {
        Platform {
            name: "Ariane RV64 (software fallback)".into(),
            nn_gflops: 0.03,
            scalar_mops: 3.0,
            nn_watts: 0.5,
            scalar_watts: 0.5,
        }
    }

    /// Seconds to process one frame of `workload`.
    pub fn frame_seconds(&self, workload: &Workload) -> f64 {
        let nn = (2.0 * workload.nn_macs as f64) / (self.nn_gflops * 1e9);
        let scalar = workload.scalar_ops as f64 / (self.scalar_mops * 1e6);
        nn + scalar
    }

    /// Frames per second on this platform.
    pub fn frames_per_second(&self, workload: &Workload) -> f64 {
        let t = self.frame_seconds(workload);
        if t <= 0.0 {
            0.0
        } else {
            1.0 / t
        }
    }

    /// Average power for the workload: time-weighted over the engaged
    /// units (the paper bills the GPU at 10 W only while NN kernels run
    /// and the ARM core at 1.5 W for the scalar phase).
    pub fn average_watts(&self, workload: &Workload) -> f64 {
        let nn_t = (2.0 * workload.nn_macs as f64) / (self.nn_gflops * 1e9);
        let sc_t = workload.scalar_ops as f64 / (self.scalar_mops * 1e6);
        let total = nn_t + sc_t;
        if total <= 0.0 {
            return 0.0;
        }
        (self.nn_watts * nn_t + self.scalar_watts * sc_t) / total
    }

    /// Frames per joule on this platform.
    pub fn frames_per_joule(&self, workload: &Workload) -> f64 {
        let w = self.average_watts(workload);
        if w <= 0.0 {
            0.0
        } else {
            self.frames_per_second(workload) / w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relative error helper.
    fn rel(measured: f64, paper: f64) -> f64 {
        (measured - paper).abs() / paper
    }

    #[test]
    fn i7_reproduces_table1_row() {
        let i7 = Platform::intel_i7_8700k();
        // Paper Table I, FRAMES/S INTEL I7: 1,858 / 30,435 / 82,476.
        let apps = Workload::table1_apps();
        let fps: Vec<f64> = apps.iter().map(|(_, w)| i7.frames_per_second(w)).collect();
        assert!(rel(fps[0], 1858.0) < 0.15, "NV&Cl {}", fps[0]);
        assert!(rel(fps[1], 30435.0) < 0.15, "De&Cl {}", fps[1]);
        assert!(rel(fps[2], 82476.0) < 0.15, "Cl {}", fps[2]);
    }

    #[test]
    fn jetson_reproduces_table1_row() {
        let tx1 = Platform::jetson_tx1();
        // Paper Table I, FRAMES/S JETSON: 377 / 2,798 / 6,750.
        let apps = Workload::table1_apps();
        let fps: Vec<f64> = apps.iter().map(|(_, w)| tx1.frames_per_second(w)).collect();
        assert!(rel(fps[0], 377.0) < 0.15, "NV&Cl {}", fps[0]);
        assert!(rel(fps[1], 2798.0) < 0.15, "De&Cl {}", fps[1]);
        assert!(rel(fps[2], 6750.0) < 0.15, "Cl {}", fps[2]);
    }

    #[test]
    fn frames_per_joule_ordering_matches_fig7_lines() {
        // In Fig. 7 the i7 line sits *above* the Jetson line for the two
        // NN-only applications (82476/78.6 ≈ 1049 vs 6750/10 = 675 f/J for
        // the classifier), while for the single-threaded Night-Vision app
        // the low-power ARM core makes Jetson the more efficient baseline.
        let nn = Workload::classifier();
        assert!(
            Platform::intel_i7_8700k().frames_per_joule(&nn)
                > Platform::jetson_tx1().frames_per_joule(&nn)
        );
        let nv = Workload::night_vision().then(Workload::classifier());
        assert!(
            Platform::jetson_tx1().frames_per_joule(&nv)
                > Platform::intel_i7_8700k().frames_per_joule(&nv)
        );
    }

    #[test]
    fn average_watts_blends_units() {
        let tx1 = Platform::jetson_tx1();
        let nn_only = Workload::classifier();
        assert!((tx1.average_watts(&nn_only) - 10.0).abs() < 1e-9);
        let scalar_only = Workload::night_vision();
        assert!((tx1.average_watts(&scalar_only) - 1.5).abs() < 1e-9);
        let mixed = Workload::night_vision().then(Workload::classifier());
        let w = tx1.average_watts(&mixed);
        assert!(w > 1.5 && w < 10.0);
    }

    #[test]
    fn ariane_fallback_is_much_slower_than_both_baselines() {
        let ariane = Platform::ariane();
        for (_, w) in Workload::table1_apps() {
            let fps = ariane.frames_per_second(&w);
            assert!(fps > 0.0);
            assert!(fps < Platform::jetson_tx1().frames_per_second(&w) / 10.0);
            assert!(fps < Platform::intel_i7_8700k().frames_per_second(&w) / 10.0);
        }
    }

    #[test]
    fn empty_workload_is_harmless() {
        let i7 = Platform::intel_i7_8700k();
        let w = Workload::default();
        assert_eq!(i7.frames_per_second(&w), 0.0);
        assert_eq!(i7.frames_per_joule(&w), 0.0);
    }
}
