//! Baseline platforms: the Intel i7 and NVIDIA Jetson TX1 comparators.
//!
//! The paper compares its FPGA SoCs against software executions of the
//! same applications on (a) an Intel i7-8700K and (b) an NVIDIA Jetson TX1
//! (quad Cortex-A57 + 256-core Maxwell GPU), using datasheet power values:
//! 78.6 W TDP for the Intel core, 1.5 W for the ARM cores and 10 W for the
//! GPU.
//!
//! Neither platform is available here, so this crate provides analytic
//! performance models calibrated to the paper's own measurements:
//! throughput follows from per-frame operation counts (taken from the real
//! workloads in [`Workload`]) divided by each platform's *effective*
//! compute rate for that kind of work — dense NN inference (BLAS/cuDNN
//! path) versus branchy scalar pixel processing (the single-threaded
//! Night-Vision code). Energy efficiency is throughput divided by the same
//! datasheet powers the paper uses.
//!
//! # Example
//!
//! ```
//! use esp4ml_baseline::{Platform, Workload};
//!
//! let i7 = Platform::intel_i7_8700k();
//! let classifier = Workload::classifier();
//! let fps = i7.frames_per_second(&classifier);
//! assert!(fps > 10_000.0);
//! let fpj = i7.frames_per_joule(&classifier);
//! assert!(fpj < fps); // 78.6 W burns a lot of joules
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod platform;
mod software;
mod workload;

pub use platform::Platform;
pub use software::SoftwareApp;
pub use workload::Workload;
