//! Per-frame operation counts of the case-study applications.

use esp4ml_nn::Sequential;
use serde::{Deserialize, Serialize};

/// Per-frame computational work of an application, split by kind: dense NN
/// multiply-accumulates (which CPUs/GPUs execute through optimized BLAS or
/// cuDNN paths) and branchy scalar pixel operations (the Night-Vision
/// kernels, which the paper notes run single-threaded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Dense multiply-accumulate operations per frame.
    pub nn_macs: u64,
    /// Scalar pixel-processing operations per frame (window sorts,
    /// histogram updates, table lookups).
    pub scalar_ops: u64,
}

impl Workload {
    /// Per-pixel cost of the three Night-Vision kernels: a 9-element
    /// median (~30 compare/swap steps with window update), a histogram
    /// increment, and an equalization lookup, plus the CDF scan amortized
    /// over the frame.
    const NV_OPS_PER_PIXEL: u64 = 35;

    /// The work of an arbitrary dense model (summing its layer MACs).
    pub fn from_model(model: &Sequential) -> Self {
        let macs = model
            .dense_layers()
            .iter()
            .map(|l| (l.n_in() * l.n_out()) as u64)
            .sum();
        Workload {
            nn_macs: macs,
            scalar_ops: 0,
        }
    }

    /// The paper's MLP classifier (1024×256×128×64×32×10).
    pub fn classifier() -> Self {
        Workload {
            nn_macs: 1024 * 256 + 256 * 128 + 128 * 64 + 64 * 32 + 32 * 10,
            scalar_ops: 0,
        }
    }

    /// The paper's denoising autoencoder (1024×256×128×1024).
    pub fn denoiser() -> Self {
        Workload {
            nn_macs: 1024 * 256 + 256 * 128 + 128 * 1024,
            scalar_ops: 0,
        }
    }

    /// The Night-Vision pre-processing pipeline on one 32×32 frame.
    pub fn night_vision() -> Self {
        Workload {
            nn_macs: 0,
            scalar_ops: 1024 * Self::NV_OPS_PER_PIXEL,
        }
    }

    /// Sequential composition: both parts of the pipeline run per frame.
    pub fn then(self, next: Workload) -> Workload {
        Workload {
            nn_macs: self.nn_macs + next.nn_macs,
            scalar_ops: self.scalar_ops + next.scalar_ops,
        }
    }

    /// The three evaluated applications, in Table I column order.
    pub fn table1_apps() -> [(&'static str, Workload); 3] {
        [
            (
                "NightVision & Classifier",
                Workload::night_vision().then(Workload::classifier()),
            ),
            (
                "Denoiser & Classifier",
                Workload::denoiser().then(Workload::classifier()),
            ),
            ("Multi-tile Classifier", Workload::classifier()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_macs_match_paper_dims() {
        assert_eq!(Workload::classifier().nn_macs, 305_472);
    }

    #[test]
    fn denoiser_macs_match_paper_dims() {
        assert_eq!(Workload::denoiser().nn_macs, 425_984);
    }

    #[test]
    fn from_model_matches_hand_count() {
        let m = Sequential::svhn_classifier();
        assert_eq!(Workload::from_model(&m), Workload::classifier());
        let d = Sequential::svhn_denoiser();
        assert_eq!(Workload::from_model(&d), Workload::denoiser());
    }

    #[test]
    fn composition_adds() {
        let w = Workload::night_vision().then(Workload::classifier());
        assert_eq!(w.nn_macs, 305_472);
        assert_eq!(w.scalar_ops, 1024 * 35);
    }

    #[test]
    fn table1_apps_cover_three_columns() {
        let apps = Workload::table1_apps();
        assert_eq!(apps.len(), 3);
        assert!(apps[0].1.scalar_ops > 0);
        assert_eq!(apps[2].1.scalar_ops, 0);
    }
}
