//! Fault-tolerance configuration, fault-plan lints and the `espfault`
//! campaign driver.
//!
//! A [`FaultConfig`] bundles everything a faulted experiment run needs:
//! the [`FaultPlan`] the SoC installs, the per-invocation watchdog
//! deadline, the retry/failover [`RecoveryPolicy`], and whether the run
//! may degrade to the processor-tile software path when the hardware
//! pipeline is unrecoverable. [`lint_fault_plan`] validates a plan
//! against the hosting SoC before anything runs (codes `E0601`/`E0602`/
//! `W0603`); [`CampaignReport::generate`] sweeps seeds × fault classes
//! over the paper's Fig. 7 pipelines and classifies every run as clean,
//! recovered, degraded or failed — the engine-independent artifact the
//! `espfault` binary prints.

use crate::apps::{CaseApp, TrainedModels};
use crate::experiments::{AppRun, ExperimentError, GridPoint, PreparedApp};
use esp4ml_check::{codes, Diagnostic, Report};
use esp4ml_fault::{CampaignTargets, FaultClass, FaultKind, FaultPlan};
use esp4ml_noc::Plane;
use esp4ml_runtime::{ExecMode, RecoveryPolicy, DEFAULT_WATCHDOG_CYCLES};
use esp4ml_soc::SocEngine;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Watchdog deadline used by fault campaigns, in cycles per invocation.
///
/// Deliberately much tighter than [`DEFAULT_WATCHDOG_CYCLES`]: a
/// campaign *expects* hangs, and under the naive oracle engine every
/// expired watchdog is simulated tick by tick. The value still leaves an
/// order-of-magnitude margin over the longest healthy invocation of the
/// campaign pipelines (a whole p2p batch of a few frames).
pub const CAMPAIGN_WATCHDOG_CYCLES: u64 = 200_000;

/// How a run behaves under injected hardware faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// The faults the SoC installs before the run (empty = none).
    pub plan: FaultPlan,
    /// Per-invocation watchdog deadline in cycles.
    pub watchdog_cycles: u64,
    /// Retry/backoff/failover policy armed on the runtime.
    pub recovery: RecoveryPolicy,
    /// When the hardware pipeline is unrecoverable (retries and spares
    /// exhausted), rerun the application on the processor tile in
    /// software instead of failing — reporting the honestly degraded
    /// throughput through the Ariane platform model.
    pub software_fallback: bool,
}

impl FaultConfig {
    /// A config running `plan` under the default (conservative) watchdog
    /// and recovery policy, with software fallback enabled.
    pub fn from_plan(plan: FaultPlan) -> Self {
        FaultConfig {
            plan,
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
            recovery: RecoveryPolicy::default(),
            software_fallback: true,
        }
    }

    /// Overrides the watchdog deadline (builder style).
    #[must_use]
    pub fn with_watchdog(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = cycles;
        self
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::from_plan(FaultPlan::default())
    }
}

/// Validates a fault plan against the devices the target SoC hosts.
///
/// Emits [`codes::FAULT_UNKNOWN_DEVICE`] (`E0601`) for accelerator
/// faults naming a device the SoC does not host (the fault would never
/// fire), [`codes::FAULT_BAD_PLANE`] (`E0602`) for NoC faults naming a
/// plane index outside the six-plane NoC, and
/// [`codes::FAULT_EMPTY_PLAN`] (`W0603`) for a plan that schedules
/// nothing.
pub fn lint_fault_plan(plan: &FaultPlan, hosted_devices: &[String]) -> Report {
    let mut report = Report::new();
    if plan.is_empty() {
        report.push(
            Diagnostic::warning(
                codes::FAULT_EMPTY_PLAN,
                "plan",
                "the fault plan schedules no faults; nothing will be injected",
            )
            .with_hint("add a fault spec or drop the --faults flag"),
        );
    }
    for (i, spec) in plan.faults.iter().enumerate() {
        let loc = format!("faults[{i}]");
        match &spec.kind {
            FaultKind::AccelHang { device, .. } | FaultKind::AccelShortOutput { device, .. } => {
                if !hosted_devices.iter().any(|d| d == device) {
                    report.push(
                        Diagnostic::error(
                            codes::FAULT_UNKNOWN_DEVICE,
                            loc,
                            format!("device `{device}` is not hosted by the SoC"),
                        )
                        .with_hint(format!("hosted devices: {}", hosted_devices.join(", "))),
                    );
                }
            }
            FaultKind::NocDelay { plane, .. } | FaultKind::NocCorrupt { plane, .. } => {
                if *plane >= Plane::COUNT {
                    report.push(Diagnostic::error(
                        codes::FAULT_BAD_PLANE,
                        loc,
                        format!(
                            "plane {plane} is out of range (the NoC has {} planes)",
                            Plane::COUNT
                        ),
                    ));
                }
            }
            FaultKind::DmaDropWords { .. } => {}
        }
    }
    report
}

/// One run of a fault campaign: a seeded fault aimed at one pipeline
/// configuration in one execution mode, with the verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCase {
    /// Pipeline configuration label ("2NV+2Cl", "1De+1Cl").
    pub config: String,
    /// Execution mode label ("pipe", "p2p").
    pub mode: String,
    /// Campaign seed the fault was generated from.
    pub seed: u64,
    /// Fault class label ("accel_hang", "noc_corrupt", …).
    pub fault: String,
    /// Human description of the concrete generated fault.
    pub detail: String,
    /// Verdict: `"clean"` (completed without recovery), `"recovered"`
    /// (retries and/or failovers repaired it), `"degraded"` (fell back
    /// to the processor-tile software path), or `"failed"` (the run
    /// errored out).
    pub status: String,
    /// Whether the predictions match the healthy run's predictions.
    /// `status == "clean" && !correct` is a *silent data corruption* —
    /// the failure mode watchdogs cannot see.
    pub correct: bool,
    /// Measured (or, when degraded, modeled) cycles of the faulted run.
    pub cycles: u64,
    /// Cycles of the healthy reference run of the same pipeline.
    pub healthy_cycles: u64,
    /// Faults that actually fired during the run.
    pub faults_injected: u64,
    /// Watchdog-triggered invocation retries.
    pub retries: u64,
    /// Stage instances remapped to a spare device.
    pub failovers: u64,
}

/// The artifact of an `espfault` campaign: seeds × fault classes swept
/// over the campaign pipelines, with per-case verdicts.
///
/// Every trigger in a generated plan counts architectural events, so
/// the same seeds produce a byte-identical report under the naive and
/// event-driven engines — the report deliberately carries no engine or
/// wall-clock field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Frames each run processed.
    pub frames: u64,
    /// Watchdog deadline the runs used, in cycles.
    pub watchdog_cycles: u64,
    /// The seeds swept.
    pub seeds: Vec<u64>,
    /// Every case, in sweep order (pipeline-major, then seed, then
    /// fault class).
    pub cases: Vec<CampaignCase>,
}

impl CampaignReport {
    /// The pipelines a campaign sweeps: the two Fig. 7 applications with
    /// redundant classifier instances, in both pipelined modes. (The
    /// spare classifiers are what give failover something to remap to.)
    pub fn grid() -> Vec<(CaseApp, ExecMode)> {
        let apps = [
            CaseApp::NightVisionClassifier { nv: 2, cl: 2 },
            CaseApp::DenoiserClassifier,
        ];
        apps.iter()
            .flat_map(|&app| {
                [ExecMode::Pipe, ExecMode::P2p]
                    .into_iter()
                    .map(move |mode| (app, mode))
            })
            .collect()
    }

    /// Runs the campaign: for each pipeline of [`CampaignReport::grid`],
    /// one healthy reference run, then one faulted run per seed × fault
    /// class with recovery armed ([`CAMPAIGN_WATCHDOG_CYCLES`], default
    /// [`RecoveryPolicy`], software fallback on).
    ///
    /// The load/config prefix of each pipeline is executed once and
    /// forked across every run via a warmed pre-fault
    /// [`PreparedApp`] checkpoint: the prefix simulates zero cycles and
    /// fires no fault triggers, and each fork restores machine state
    /// wholesale before installing its plan, so the report is
    /// byte-identical to [`CampaignReport::generate_cold`].
    ///
    /// # Errors
    ///
    /// Build failures. Runtime failures of faulted runs are *verdicts*
    /// (`status == "failed"`), not errors.
    pub fn generate(
        models: &TrainedModels,
        seeds: &[u64],
        frames: u64,
        engine: SocEngine,
    ) -> Result<CampaignReport, ExperimentError> {
        Self::generate_with(models, seeds, frames, engine, true)
    }

    /// [`CampaignReport::generate`] without prefix forking: every run
    /// pays its own cold-start load/config phase. The trivially
    /// auditable oracle the fork path is checked against.
    ///
    /// # Errors
    ///
    /// Build failures. Runtime failures of faulted runs are *verdicts*
    /// (`status == "failed"`), not errors.
    pub fn generate_cold(
        models: &TrainedModels,
        seeds: &[u64],
        frames: u64,
        engine: SocEngine,
    ) -> Result<CampaignReport, ExperimentError> {
        Self::generate_with(models, seeds, frames, engine, false)
    }

    fn generate_with(
        models: &TrainedModels,
        seeds: &[u64],
        frames: u64,
        engine: SocEngine,
        fork: bool,
    ) -> Result<CampaignReport, ExperimentError> {
        let mut cases = Vec::new();
        // One warmed pre-fault checkpoint per config prefix, shared by
        // the healthy reference and every seed × fault class of both
        // execution modes (the mode only parameterizes the suffix).
        let mut warmed: Vec<(String, PreparedApp)> = Vec::new();
        for (app, mode) in Self::grid() {
            let key = GridPoint { app, mode }.prefix_key();
            let mut prepared = if fork {
                let idx = match warmed.iter().position(|(k, _)| *k == key) {
                    Some(i) => i,
                    None => {
                        warmed.push((key, PreparedApp::load(&app, models, frames, engine, false)?));
                        warmed.len() - 1
                    }
                };
                Some(&mut warmed[idx].1)
            } else {
                None
            };
            let healthy = match prepared.as_mut() {
                Some(p) => p.run(mode)?,
                None => AppRun::execute_on(&app, models, frames, mode, engine)?,
            };
            let devices: Vec<String> = app
                .dataflow()
                .stages
                .iter()
                .flat_map(|s| s.devices.clone())
                .collect();
            let targets = CampaignTargets {
                devices,
                // DMA-request and DMA-response planes: the ones every
                // execution mode exercises.
                planes: vec![3, 4],
                frames,
            };
            for &seed in seeds {
                for class in FaultClass::ALL {
                    let plan = FaultPlan::generate(seed, class, &targets);
                    let detail = plan
                        .faults
                        .first()
                        .map(|s| s.kind.to_string())
                        .unwrap_or_default();
                    let config = FaultConfig {
                        plan,
                        watchdog_cycles: CAMPAIGN_WATCHDOG_CYCLES,
                        recovery: RecoveryPolicy::default(),
                        software_fallback: true,
                    };
                    let result = match prepared.as_mut() {
                        Some(p) => p.run_faulted(mode, &config),
                        None => {
                            AppRun::execute_faulted(&app, models, frames, mode, engine, &config)
                        }
                    };
                    let case = match result {
                        Ok(run) => {
                            let status = if run.software_fallback {
                                "degraded"
                            } else if run.metrics.retries + run.metrics.failovers > 0 {
                                "recovered"
                            } else {
                                "clean"
                            };
                            CampaignCase {
                                config: app.label(),
                                mode: mode.label().to_string(),
                                seed,
                                fault: class.label().to_string(),
                                detail,
                                status: status.to_string(),
                                correct: run.predictions == healthy.predictions,
                                cycles: run.metrics.cycles,
                                healthy_cycles: healthy.metrics.cycles,
                                faults_injected: run.metrics.faults_injected,
                                retries: run.metrics.retries,
                                failovers: run.metrics.failovers,
                            }
                        }
                        Err(ExperimentError::Run(_)) => CampaignCase {
                            config: app.label(),
                            mode: mode.label().to_string(),
                            seed,
                            fault: class.label().to_string(),
                            detail,
                            status: "failed".to_string(),
                            correct: false,
                            cycles: 0,
                            healthy_cycles: healthy.metrics.cycles,
                            faults_injected: 0,
                            retries: 0,
                            failovers: 0,
                        },
                        Err(other) => return Err(other),
                    };
                    cases.push(case);
                }
            }
        }
        Ok(CampaignReport {
            frames,
            watchdog_cycles: CAMPAIGN_WATCHDOG_CYCLES,
            seeds: seeds.to_vec(),
            cases,
        })
    }

    /// Cases with the given status.
    fn count(&self, status: &str) -> usize {
        self.cases.iter().filter(|c| c.status == status).count()
    }

    /// Cases that completed "successfully" with wrong predictions — the
    /// silent-corruption tail no watchdog can catch.
    pub fn silent_corruptions(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.status == "clean" && !c.correct)
            .count()
    }

    /// Serializes the report as pretty JSON, wrapped in the
    /// `fault-campaign` schema envelope ([`esp4ml_trace::schema`]).
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        let payload = serde_json::to_value(self)?;
        Ok(esp4ml_trace::schema::envelope_json(
            "fault-campaign",
            payload,
        ))
    }

    /// Parses a report from enveloped JSON, rejecting unknown schema
    /// versions per the compatibility rule.
    ///
    /// # Errors
    ///
    /// Propagates parse failures; envelope violations surface as a
    /// custom serde error.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let value = serde_json::parse_value(json)?;
        let payload = esp4ml_trace::schema::open_envelope(value, "fault-campaign")
            .map_err(|e| serde_json::Error::from(serde::Error::custom(e)))?;
        serde_json::from_value(payload)
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ESPFAULT CAMPAIGN — {} cases ({} frames/run, watchdog {} cycles, seeds {:?})",
            self.cases.len(),
            self.frames,
            self.watchdog_cycles,
            self.seeds,
        )?;
        writeln!(
            f,
            "  {:<10} {:<5} {:>4}  {:<18} {:<9} {:>7}  {:>10}  {:>7} {:>7} {:>9}",
            "config",
            "mode",
            "seed",
            "fault",
            "status",
            "correct",
            "cycles",
            "fired",
            "retries",
            "failovers"
        )?;
        for c in &self.cases {
            writeln!(
                f,
                "  {:<10} {:<5} {:>4}  {:<18} {:<9} {:>7}  {:>10}  {:>7} {:>7} {:>9}",
                c.config,
                c.mode,
                c.seed,
                c.fault,
                c.status,
                if c.correct { "yes" } else { "NO" },
                c.cycles,
                c.faults_injected,
                c.retries,
                c.failovers,
            )?;
        }
        writeln!(
            f,
            "  verdicts: {} clean, {} recovered, {} degraded, {} failed; {} silent corruption(s)",
            self.count("clean"),
            self.count("recovered"),
            self.count("degraded"),
            self.count("failed"),
            self.silent_corruptions(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_fault::FaultSpec;

    fn hosted() -> Vec<String> {
        vec!["nv0".into(), "cl0".into()]
    }

    #[test]
    fn lint_flags_unknown_device() {
        let plan = FaultPlan::new(0).with(FaultSpec::permanent_hang("ghost"));
        let report = lint_fault_plan(&plan, &hosted());
        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].code, codes::FAULT_UNKNOWN_DEVICE);
    }

    #[test]
    fn lint_flags_bad_plane() {
        let plan = FaultPlan::new(0).with(FaultSpec::new(FaultKind::NocDelay {
            plane: Plane::COUNT,
            from_packet: 0,
            count: 1,
            extra_cycles: 10,
        }));
        let report = lint_fault_plan(&plan, &hosted());
        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].code, codes::FAULT_BAD_PLANE);
    }

    #[test]
    fn lint_warns_on_empty_plan() {
        let report = lint_fault_plan(&FaultPlan::default(), &hosted());
        assert!(!report.has_errors());
        assert_eq!(report.diagnostics[0].code, codes::FAULT_EMPTY_PLAN);
    }

    #[test]
    fn lint_accepts_a_valid_plan() {
        let plan = FaultPlan::new(1)
            .with(FaultSpec::transient_hang("nv0", 0))
            .with(FaultSpec::new(FaultKind::DmaDropWords {
                from_burst: 0,
                count: 1,
                drop_words: 4,
            }));
        assert!(lint_fault_plan(&plan, &hosted()).is_clean());
    }

    /// The forked campaign (one warmed pre-fault checkpoint per
    /// pipeline, restored before every seed × fault class) produces the
    /// byte-identical artifact of the cold-start oracle.
    #[test]
    fn forked_campaign_matches_cold_oracle() {
        let m = TrainedModels::untrained();
        let forked = CampaignReport::generate(&m, &[1], 2, SocEngine::EventDriven).unwrap();
        let cold = CampaignReport::generate_cold(&m, &[1], 2, SocEngine::EventDriven).unwrap();
        assert_eq!(forked.to_json().unwrap(), cold.to_json().unwrap());
        assert!(forked.cases.iter().any(|c| c.status != "clean"));
    }

    #[test]
    fn report_json_roundtrips() {
        let report = CampaignReport {
            frames: 3,
            watchdog_cycles: CAMPAIGN_WATCHDOG_CYCLES,
            seeds: vec![1],
            cases: vec![CampaignCase {
                config: "1De+1Cl".into(),
                mode: "p2p".into(),
                seed: 1,
                fault: "accel_hang".into(),
                detail: "hang denoiser for 1 invocation(s) from #0".into(),
                status: "recovered".into(),
                correct: true,
                cycles: 123,
                healthy_cycles: 100,
                faults_injected: 1,
                retries: 1,
                failovers: 0,
            }],
        };
        let json = report.to_json().unwrap();
        assert_eq!(CampaignReport::from_json(&json).unwrap(), report);
        let text = report.to_string();
        assert!(text.contains("1 recovered"), "{text}");
    }
}
