//! Static SoC/dataflow linting: the `esp4ml-check` front end.
//!
//! This module lints the *declarative* inputs of the flow — a
//! [`SocConfigFile`] floorplan, a [`Dataflow`], and their combination —
//! before anything is built or simulated, emitting typed
//! [`Diagnostic`]s with stable codes:
//!
//! * `E0101`–`E0104` — floorplan structure: duplicate or out-of-bounds
//!   tiles, missing processor/memory tiles, duplicate device names.
//! * `E0201`–`E0206` — dataflow structure (delegated to
//!   [`Dataflow::lint`]).
//! * `E0301` — a dataflow stage mapped to a device the floorplan does
//!   not provide.
//! * `E0302` — the p2p traffic pattern's XY routes close a cycle in the
//!   channel-dependency graph (wormhole deadlock risk). XY routing on a
//!   mesh is provably deadlock-free, so this is a safety net that fires
//!   only for custom routing tables or corrupted route sets.
//! * `E0304` / `W0305` — a declared PLM budget too small for the
//!   model's buffer footprint / a per-invocation working set larger
//!   than the socket TLB's reach.
//!
//! The runtime half of the checker — credit/flit conservation, wormhole
//! framing, DMA accounting, deadlock diagnosis — lives behind
//! [`esp4ml_soc::Soc::enable_sanitizer`].

use crate::soc_config::{MlModelRef, SocConfigFile, TileSpecKind};
use esp4ml_check::{cdg, codes, Diagnostic, Report};
use esp4ml_noc::Coord;
use esp4ml_runtime::Dataflow;
use esp4ml_soc::Soc;
use std::collections::{BTreeMap, BTreeSet};

/// Words needed to pack `values` 16-bit values four to a 64-bit word.
pub(crate) fn words_for(values: u64) -> u64 {
    values.div_ceil(4)
}

/// Socket TLB reach in words: 32 entries × one 4 KiB page (512 words).
const TLB_REACH_WORDS: u64 = 32 * 512;

/// One accelerator device as the linter sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceView {
    /// Device name (the driver-registry key).
    pub name: String,
    /// Tile coordinate.
    pub coord: Coord,
    /// Input values per frame, when the model shape is known statically.
    pub in_values: Option<u64>,
    /// Output values per frame, when known statically.
    pub out_values: Option<u64>,
    /// Declared PLM budget in words, when the configuration declares one.
    pub plm_words: Option<u64>,
}

impl DeviceView {
    /// The PLM buffer footprint in words: a double-buffered input PLM
    /// (two ping-pong halves) plus the output buffer. `None` when the
    /// model shape is unknown.
    pub fn plm_footprint_words(&self) -> Option<u64> {
        Some(2 * words_for(self.in_values?) + words_for(self.out_values?))
    }
}

/// A floorplan reduced to what the linter needs: grid size, tile
/// placement and the statically-known device shapes.
///
/// Built either from a declarative [`SocConfigFile`] or from an
/// already-built [`Soc`] (for floorplans like SoC-2 that are assembled
/// programmatically).
#[derive(Debug, Clone, Default)]
pub struct FloorplanView {
    /// Mesh columns.
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// Processor tile coordinates.
    pub processors: Vec<Coord>,
    /// Memory tile coordinates.
    pub memories: Vec<Coord>,
    /// Accelerator devices.
    pub devices: Vec<DeviceView>,
}

impl FloorplanView {
    /// Extracts the linter's view from a configuration file.
    pub fn from_config(config: &SocConfigFile) -> FloorplanView {
        let mut view = FloorplanView {
            cols: config.cols,
            rows: config.rows,
            ..FloorplanView::default()
        };
        for tile in &config.tiles {
            let coord = Coord::new(tile.x, tile.y);
            match &tile.kind {
                TileSpecKind::Processor => view.processors.push(coord),
                TileSpecKind::Memory => view.memories.push(coord),
                TileSpecKind::Auxiliary => {}
                TileSpecKind::NightVision { name } => view.devices.push(DeviceView {
                    name: name.clone(),
                    coord,
                    in_values: Some(1024),
                    out_values: Some(1024),
                    plm_words: tile.plm_words,
                }),
                TileSpecKind::MlModel { name, model, .. } => {
                    let (in_values, out_values) = match model {
                        MlModelRef::Classifier => (Some(1024), Some(10)),
                        MlModelRef::Denoiser => (Some(1024), Some(1024)),
                        MlModelRef::Files { .. } => (None, None),
                    };
                    view.devices.push(DeviceView {
                        name: name.clone(),
                        coord,
                        in_values,
                        out_values,
                        plm_words: tile.plm_words,
                    });
                }
            }
        }
        view
    }

    /// Extracts the linter's view from a built SoC (device shapes come
    /// from the instantiated kernels, so nothing is `None`).
    pub fn from_soc(soc: &Soc) -> FloorplanView {
        let mut view = FloorplanView::default();
        for coord in soc.accel_coords() {
            let tile = soc.accel(coord).expect("listed accelerator");
            let kernel = tile.kernel();
            view.devices.push(DeviceView {
                name: tile.kernel_name().to_string(),
                coord,
                in_values: Some(kernel.input_values()),
                out_values: Some(kernel.output_values()),
                plm_words: None,
            });
        }
        view.memories = soc.mem_map().coords().to_vec();
        let max = view
            .devices
            .iter()
            .map(|d| d.coord)
            .chain(view.memories.iter().copied())
            .fold((0u8, 0u8), |(mx, my), c| (mx.max(c.x), my.max(c.y)));
        view.cols = max.0 as usize + 1;
        view.rows = max.1 as usize + 1;
        view
    }

    /// Looks up a device by name.
    pub fn device(&self, name: &str) -> Option<&DeviceView> {
        self.devices.iter().find(|d| d.name == name)
    }
}

/// Lints a configuration file's floorplan structure and memory budgets.
pub fn lint_config(config: &SocConfigFile) -> Report {
    let mut report = Report::new();
    let mut occupied: BTreeMap<(u8, u8), usize> = BTreeMap::new();
    let mut names: BTreeMap<&str, usize> = BTreeMap::new();
    for tile in &config.tiles {
        if (tile.x as usize) >= config.cols || (tile.y as usize) >= config.rows {
            report.push(
                Diagnostic::error(
                    codes::TILE_OUT_OF_BOUNDS,
                    format!("tile({},{})", tile.x, tile.y),
                    format!(
                        "tile({},{}) lies outside the {}x{} mesh",
                        tile.x, tile.y, config.cols, config.rows
                    ),
                )
                .with_hint("grow the mesh or move the tile inside the grid"),
            );
        }
        *occupied.entry((tile.x, tile.y)).or_insert(0) += 1;
        let name = match &tile.kind {
            TileSpecKind::NightVision { name } | TileSpecKind::MlModel { name, .. } => {
                Some(name.as_str())
            }
            _ => None,
        };
        if let Some(n) = name {
            *names.entry(n).or_insert(0) += 1;
        }
    }
    for ((x, y), count) in occupied {
        if count > 1 {
            report.push(
                Diagnostic::error(
                    codes::DUPLICATE_TILE,
                    format!("tile({x},{y})"),
                    format!("{count} tiles placed at ({x},{y})"),
                )
                .with_hint("every grid position holds at most one tile"),
            );
        }
    }
    for (name, count) in names {
        if count > 1 {
            report.push(
                Diagnostic::error(
                    codes::DUPLICATE_DEVICE_NAME,
                    format!("device {name}"),
                    format!("device name {name} is used by {count} tiles"),
                )
                .with_hint("the runtime probes devices by name; names must be unique"),
            );
        }
    }
    let view = FloorplanView::from_config(config);
    for (kind, found) in [
        ("processor", !view.processors.is_empty()),
        ("memory", !view.memories.is_empty()),
    ] {
        if !found {
            report.push(
                Diagnostic::error(
                    codes::MISSING_REQUIRED_TILE,
                    "floorplan",
                    format!("the floorplan has no {kind} tile"),
                )
                .with_hint("every ESP SoC needs at least one processor and one memory tile"),
            );
        }
    }
    for dev in &view.devices {
        if let (Some(budget), Some(footprint)) = (dev.plm_words, dev.plm_footprint_words()) {
            if footprint > budget {
                report.push(
                    Diagnostic::error(
                        codes::PLM_OVERFLOW,
                        format!("device {}", dev.name),
                        format!(
                            "PLM footprint of {footprint} words (double-buffered input + \
                             output) exceeds the declared budget of {budget} words"
                        ),
                    )
                    .with_hint("raise plm_words or reduce the model's frame size"),
                );
            }
        }
        if let (Some(inp), Some(out)) = (dev.in_values, dev.out_values) {
            let working_set = 2 * words_for(inp) + 2 * words_for(out);
            if working_set > TLB_REACH_WORDS {
                report.push(
                    Diagnostic::warning(
                        codes::TLB_PRESSURE,
                        format!("device {}", dev.name),
                        format!(
                            "per-invocation working set of {working_set} words exceeds the \
                             socket TLB reach of {TLB_REACH_WORDS} words (32 pages); \
                             expect page-walk thrashing"
                        ),
                    )
                    .with_hint("shrink the frame size or split the model across tiles"),
                );
            }
        }
    }
    report.normalize();
    report
}

/// Lints a dataflow's structure (wraps [`Dataflow::lint`]).
pub fn lint_dataflow(dataflow: &Dataflow) -> Report {
    let mut report = Report::new();
    for diag in dataflow.lint() {
        report.push(diag);
    }
    report.normalize();
    report
}

/// Lints the mapping of a dataflow onto a floorplan: every stage device
/// must exist (`E0301`), and the XY routes of the resulting traffic
/// pattern must not close a channel-dependency cycle (`E0302`).
pub fn lint_mapping(view: &FloorplanView, dataflow: &Dataflow) -> Report {
    let mut report = Report::new();
    let mut known = BTreeSet::new();
    for stage in &dataflow.stages {
        for name in &stage.devices {
            match view.device(name) {
                Some(_) => {
                    known.insert(name.as_str());
                }
                None => report.push(
                    Diagnostic::error(
                        codes::UNMAPPED_DEVICE,
                        format!("device {name}"),
                        format!("dataflow references device {name}, which the floorplan does not provide"),
                    )
                    .with_hint("add the accelerator tile or fix the device name"),
                ),
            }
        }
    }

    // Channel-dependency analysis of the p2p traffic pattern. Planes are
    // physically decoupled, so each gets its own dependency graph:
    // P2pLoadReq flows (consumer -> producer) ride the DMA-request
    // plane, DmaData replies (producer -> consumer) the DMA-response
    // plane; first-stage loads and last-stage stores add accelerator <->
    // memory flows on the same two planes.
    let coord_of = |name: &str| view.device(name).map(|d| d.coord);
    let mut req_flows: Vec<(Coord, Coord)> = Vec::new();
    let mut rsp_flows: Vec<(Coord, Coord)> = Vec::new();
    for w in dataflow.stages.windows(2) {
        for consumer in &w[1].devices {
            for producer in &w[0].devices {
                if let (Some(c), Some(p)) = (coord_of(consumer), coord_of(producer)) {
                    req_flows.push((c, p));
                    rsp_flows.push((p, c));
                }
            }
        }
    }
    if let (Some(first), Some(last)) = (dataflow.stages.first(), dataflow.stages.last()) {
        for name in first.devices.iter().chain(&last.devices) {
            if let Some(a) = coord_of(name) {
                for &m in &view.memories {
                    req_flows.push((a, m));
                    rsp_flows.push((m, a));
                }
            }
        }
    }
    for (plane, flows) in [("dma-req", req_flows), ("dma-rsp", rsp_flows)] {
        let routes = cdg::xy_routes(
            &flows
                .iter()
                .map(|&(s, d)| ((s.x, s.y), (d.x, d.y)))
                .collect::<Vec<_>>(),
        );
        if let Some(cycle) = cdg::find_cycle(&routes) {
            let links: Vec<String> = cycle.iter().map(cdg::render_link).collect();
            report.push(
                Diagnostic::error(
                    codes::CDG_CYCLE,
                    format!("plane {plane}"),
                    format!(
                        "the traffic pattern's routes close a channel-dependency cycle: {}",
                        links.join(" -> ")
                    ),
                )
                .with_hint("wormhole deadlock risk; restore XY routing or break the cycle"),
            );
        }
    }
    report.normalize();
    report
}

/// Full static lint of a configuration + dataflow pair: floorplan
/// structure, dataflow structure, and the mapping between them.
pub fn lint_all(config: &SocConfigFile, dataflow: &Dataflow) -> Report {
    let mut report = lint_config(config);
    report.merge(lint_dataflow(dataflow));
    report.merge(lint_mapping(&FloorplanView::from_config(config), dataflow));
    report.normalize();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::CaseApp;
    use crate::soc_config::TileSpec;

    fn codes_of(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn soc1_config_is_clean() {
        let report = lint_config(&SocConfigFile::soc1());
        assert!(report.is_clean(), "unexpected findings:\n{report}");
    }

    #[test]
    fn every_fig7_app_lints_clean_against_soc1() {
        let cfg = SocConfigFile::soc1();
        for app in CaseApp::all_fig7_configs() {
            if app.soc_id() != crate::apps::SocId::Soc1 {
                continue;
            }
            let df = app.dataflow();
            let report = lint_all(&cfg, &df);
            assert!(report.is_clean(), "{}: {report}", app.label());
        }
    }

    #[test]
    fn duplicate_tile_is_flagged() {
        let mut cfg = SocConfigFile::soc1();
        cfg.tiles.push(TileSpec::new(0, 0, TileSpecKind::Auxiliary));
        let report = lint_config(&cfg);
        assert!(codes_of(&report).contains(&codes::DUPLICATE_TILE));
        assert!(report.has_errors());
    }

    #[test]
    fn out_of_bounds_tile_is_flagged() {
        let mut cfg = SocConfigFile::soc1();
        cfg.tiles[0].x = 9;
        let report = lint_config(&cfg);
        assert!(codes_of(&report).contains(&codes::TILE_OUT_OF_BOUNDS));
    }

    #[test]
    fn missing_memory_is_flagged() {
        let mut cfg = SocConfigFile::soc1();
        cfg.tiles
            .retain(|t| !matches!(t.kind, TileSpecKind::Memory));
        let report = lint_config(&cfg);
        assert!(codes_of(&report).contains(&codes::MISSING_REQUIRED_TILE));
    }

    #[test]
    fn duplicate_device_name_is_flagged() {
        let mut cfg = SocConfigFile::soc1();
        cfg.tiles.push(TileSpec::new(
            4,
            2,
            TileSpecKind::NightVision { name: "nv0".into() },
        ));
        let report = lint_config(&cfg);
        assert!(codes_of(&report).contains(&codes::DUPLICATE_DEVICE_NAME));
    }

    #[test]
    fn shrunk_plm_budget_is_flagged() {
        let mut cfg = SocConfigFile::soc1();
        // The denoiser needs 2*256 + 256 = 768 words of PLM.
        let denoiser = cfg
            .tiles
            .iter_mut()
            .find(|t| matches!(&t.kind, TileSpecKind::MlModel { name, .. } if name == "denoiser"))
            .expect("denoiser tile");
        denoiser.plm_words = Some(512);
        let report = lint_config(&cfg);
        assert_eq!(codes_of(&report), vec![codes::PLM_OVERFLOW]);
        // A sufficient budget passes.
        let denoiser = cfg
            .tiles
            .iter_mut()
            .find(|t| matches!(&t.kind, TileSpecKind::MlModel { name, .. } if name == "denoiser"))
            .expect("denoiser tile");
        denoiser.plm_words = Some(768);
        assert!(lint_config(&cfg).is_clean());
    }

    #[test]
    fn unmapped_device_is_flagged() {
        let view = FloorplanView::from_config(&SocConfigFile::soc1());
        let df = Dataflow::linear(&[&["nv0"], &["ghost"]]);
        let report = lint_mapping(&view, &df);
        assert_eq!(codes_of(&report), vec![codes::UNMAPPED_DEVICE]);
        assert!(report.diagnostics[0].message.contains("ghost"));
    }

    #[test]
    fn xy_mapping_has_no_cdg_cycle() {
        let view = FloorplanView::from_config(&SocConfigFile::soc1());
        let df = Dataflow::linear(&[&["nv0", "nv1", "nv2", "nv3"], &["cl0"]]);
        assert!(lint_mapping(&view, &df).is_clean());
    }

    #[test]
    fn view_from_built_soc_matches_config_view() {
        let models = crate::apps::TrainedModels::untrained();
        let soc = SocConfigFile::soc1().build(&models).expect("soc1 builds");
        let from_soc = FloorplanView::from_soc(&soc);
        let from_cfg = FloorplanView::from_config(&SocConfigFile::soc1());
        let mut a: Vec<_> = from_soc
            .devices
            .iter()
            .map(|d| (d.name.clone(), d.coord))
            .collect();
        let mut b: Vec<_> = from_cfg
            .devices
            .iter()
            .map(|d| (d.name.clone(), d.coord))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(from_soc.memories, from_cfg.memories);
    }
}
