//! Experiment drivers regenerating every table and figure of the paper.
//!
//! * [`Table1`] — resource utilization, power and frames/s for the three
//!   application columns (paper Table I).
//! * [`Fig7`] — energy efficiency (frames/J) of base/pipe/p2p execution
//!   across the five accelerator configurations, against the i7 and
//!   Jetson baselines (paper Fig. 7).
//! * [`Fig8`] — DRAM accesses with and without p2p communication (paper
//!   Fig. 8).
//!
//! The same drivers back the `esp4ml-bench` binaries and the integration
//! tests, so the printed artifacts and the asserted behaviours cannot
//! drift apart.

use crate::apps::{argmax, decode_values, encode_image, CaseApp, TrainedModels};
use crate::faults::FaultConfig;
use crate::flow::Esp4mlFlow;
use crate::observe::{ProfileReport, TraceSession};
use esp4ml_baseline::{Platform, SoftwareApp, Workload};
use esp4ml_check::Report;
use esp4ml_runtime::{
    AppBuffers, Dataflow, EspRuntime, ExecMode, RunMetrics, RunSpec, RuntimeError,
    RuntimeSnapshot,
};
use esp4ml_soc::{SanitizerConfig, SocEngine};
use esp4ml_trace::{TileCoord, TraceEvent};
use esp4ml_vision::SvhnGenerator;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Seed used for experiment input data (fixed for reproducibility).
const DATA_SEED: u64 = 0xE5F4;

/// Errors from experiment execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// SoC construction failed.
    Build(crate::apps::BuildError),
    /// Runtime execution failed.
    Run(RuntimeError),
    /// Grid assembly was handed results that don't match the grid.
    Grid(String),
    /// The runtime sanitizer found invariant violations during a run.
    Sanitizer {
        /// Which run violated invariants.
        label: String,
        /// The violations, as typed diagnostics.
        report: Report,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Build(e) => write!(f, "build failed: {e}"),
            ExperimentError::Run(e) => write!(f, "run failed: {e}"),
            ExperimentError::Grid(msg) => write!(f, "grid assembly failed: {msg}"),
            ExperimentError::Sanitizer { label, report } => write!(
                f,
                "sanitizer found {} violation(s) in {label}:\n{report}",
                report.error_count()
            ),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Build(e) => Some(e),
            ExperimentError::Run(e) => Some(e),
            ExperimentError::Grid(_) => None,
            ExperimentError::Sanitizer { .. } => None,
        }
    }
}

impl From<crate::apps::BuildError> for ExperimentError {
    fn from(e: crate::apps::BuildError) -> Self {
        ExperimentError::Build(e)
    }
}

impl From<RuntimeError> for ExperimentError {
    fn from(e: RuntimeError) -> Self {
        ExperimentError::Run(e)
    }
}

/// One independent unit of experiment work: an SoC configuration paired
/// with an execution mode.
///
/// The figure/table drivers enumerate their work as a flat `Vec<GridPoint>`
/// ([`Fig7::grid`], [`Fig8::grid`], [`Table1::grid`]), each point runs in
/// isolation (its own SoC, its own runtime — nothing shared), and the
/// matching `assemble` function folds the per-point [`AppRun`]s — **in
/// grid order** — back into the figure. This is what lets the
/// `esp4ml-bench` harness scatter points across worker threads and still
/// collect deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPoint {
    /// The SoC configuration to build and load.
    pub app: CaseApp,
    /// The execution mode to run the dataflow in.
    pub mode: ExecMode,
}

impl GridPoint {
    /// Human label ("2NV+2Cl p2p") for progress reporting.
    pub fn label(&self) -> String {
        format!("{} {}", self.app.label(), self.mode.label())
    }

    /// Canonical config-prefix key: two points share a key exactly when
    /// their load/config phases are identical — same SoC build, same
    /// device probe, same `esp_alloc` layout, same input frames — and
    /// they differ only in execution mode. Points with equal keys can
    /// share one warm [`PreparedApp`] snapshot instead of each paying
    /// the prefix from cold. The execution mode is deliberately
    /// excluded: it only parameterizes the run suffix.
    pub fn prefix_key(&self) -> String {
        format!("{}/{}", self.app.app_name(), self.app.label())
    }

    /// Executes this point on a freshly built SoC under `engine`.
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn run(
        &self,
        models: &TrainedModels,
        frames: u64,
        engine: SocEngine,
    ) -> Result<AppRun, ExperimentError> {
        AppRun::execute_on(&self.app, models, frames, self.mode, engine)
    }

    /// [`GridPoint::run`] with the runtime sanitizer armed
    /// ([`SanitizerConfig::all`]). The run fails with
    /// [`ExperimentError::Sanitizer`] on any invariant violation;
    /// otherwise the (clean) verdict is attached to the returned
    /// [`AppRun::sanitizer`].
    ///
    /// # Errors
    ///
    /// Build, runtime, or sanitizer failures.
    pub fn run_sanitized(
        &self,
        models: &TrainedModels,
        frames: u64,
        engine: SocEngine,
    ) -> Result<AppRun, ExperimentError> {
        AppRun::execute_sanitized(&self.app, models, frames, self.mode, engine)
    }

    /// [`GridPoint::run`] under injected hardware faults
    /// ([`AppRun::execute_faulted`]): the plan is installed on the SoC
    /// and the watchdog/retry/failover recovery layer is armed.
    ///
    /// # Errors
    ///
    /// Build failures, or runtime failures recovery could not absorb.
    pub fn run_faulted(
        &self,
        models: &TrainedModels,
        frames: u64,
        engine: SocEngine,
        faults: &FaultConfig,
    ) -> Result<AppRun, ExperimentError> {
        AppRun::execute_faulted(&self.app, models, frames, self.mode, engine, faults)
    }
}

/// One measured execution of a case-study application on its SoC.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Which application configuration ran.
    pub label: String,
    /// Execution mode.
    pub mode: ExecMode,
    /// Runtime metrics (cycles, DRAM accesses, throughput).
    pub metrics: RunMetrics,
    /// SoC average dynamic power in watts (whole SoC, as the paper
    /// conservatively reports).
    pub watts: f64,
    /// Predicted class per frame.
    pub predictions: Vec<usize>,
    /// Ground-truth label per frame.
    pub labels: Vec<usize>,
    /// The sanitizer's verdict when the run was sanitized (`None` when
    /// the sanitizer was off). An attached report never carries errors —
    /// those abort the run with [`ExperimentError::Sanitizer`] — but may
    /// carry warnings.
    pub sanitizer: Option<Report>,
    /// Whether the run degraded to the processor-tile software path
    /// after the hardware pipeline proved unrecoverable (only possible
    /// under a [`FaultConfig`] with `software_fallback` enabled). When
    /// set, `metrics` and `watts` come from the Ariane platform model,
    /// not the accelerator pipeline.
    pub software_fallback: bool,
}

impl AppRun {
    /// Builds the SoC, loads the inputs, runs the dataflow and collects
    /// predictions.
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn execute(
        app: &CaseApp,
        models: &TrainedModels,
        frames: u64,
        mode: ExecMode,
    ) -> Result<AppRun, ExperimentError> {
        Self::execute_with(
            app,
            models,
            frames,
            mode,
            SocEngine::default(),
            None,
            false,
            None,
        )
    }

    /// [`AppRun::execute`] under an explicit simulation engine
    /// ([`SocEngine::Naive`] as the cycle-exact oracle,
    /// [`SocEngine::EventDriven`] for fast-forward simulation).
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn execute_on(
        app: &CaseApp,
        models: &TrainedModels,
        frames: u64,
        mode: ExecMode,
        engine: SocEngine,
    ) -> Result<AppRun, ExperimentError> {
        Self::execute_with(app, models, frames, mode, engine, None, false, None)
    }

    /// [`AppRun::execute_on`] under injected hardware faults: the
    /// config's [`esp4ml_fault::FaultPlan`] is installed on the SoC
    /// before the run, the watchdog/recovery policy is armed on the
    /// [`RunSpec`], and — when the config allows it — an unrecoverable
    /// pipeline degrades to the processor-tile software path instead of
    /// failing (flagged on the returned run's `software_fallback` field).
    ///
    /// # Errors
    ///
    /// Build failures, or runtime failures the recovery machinery could
    /// not absorb.
    pub fn execute_faulted(
        app: &CaseApp,
        models: &TrainedModels,
        frames: u64,
        mode: ExecMode,
        engine: SocEngine,
        faults: &FaultConfig,
    ) -> Result<AppRun, ExperimentError> {
        Self::execute_with(app, models, frames, mode, engine, None, false, Some(faults))
    }

    /// [`AppRun::execute_on`] with the full runtime sanitizer armed:
    /// credit/flit conservation, wormhole framing, plane discipline and
    /// DMA byte accounting are audited throughout the run (at every tick
    /// under [`SocEngine::Naive`], additionally at every fast-forward
    /// boundary under [`SocEngine::EventDriven`] — the verdicts are
    /// identical either way).
    ///
    /// # Errors
    ///
    /// Build or runtime failures, or [`ExperimentError::Sanitizer`] when
    /// any invariant was violated.
    pub fn execute_sanitized(
        app: &CaseApp,
        models: &TrainedModels,
        frames: u64,
        mode: ExecMode,
        engine: SocEngine,
    ) -> Result<AppRun, ExperimentError> {
        Self::execute_with(app, models, frames, mode, engine, None, true, None)
    }

    /// [`AppRun::execute`] with observability: events flow into the
    /// session's tracer (opened by a `RunStart` marker naming the run)
    /// and the per-run counter series and NoC summary are collected
    /// into the session. When the session profiles
    /// ([`TraceSession::profiled`]), a
    /// [`ProfileReport`] is collected too.
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn execute_traced(
        app: &CaseApp,
        models: &TrainedModels,
        frames: u64,
        mode: ExecMode,
        session: &mut TraceSession,
    ) -> Result<AppRun, ExperimentError> {
        Self::execute_with(
            app,
            models,
            frames,
            mode,
            SocEngine::default(),
            Some(session),
            false,
            None,
        )
    }

    /// [`AppRun::execute_traced`] under an explicit simulation engine —
    /// the combination the engine-equivalence suite uses to prove both
    /// engines emit identical profile reports.
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn execute_traced_on(
        app: &CaseApp,
        models: &TrainedModels,
        frames: u64,
        mode: ExecMode,
        engine: SocEngine,
        session: &mut TraceSession,
    ) -> Result<AppRun, ExperimentError> {
        Self::execute_with(
            app,
            models,
            frames,
            mode,
            engine,
            Some(session),
            false,
            None,
        )
    }

    /// [`AppRun::execute_faulted`] with observability: injected faults
    /// and the recovery layer on a traced run, so retry backoffs and
    /// failovers land in the session's event stream (and span trees).
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn execute_faulted_traced(
        app: &CaseApp,
        models: &TrainedModels,
        frames: u64,
        mode: ExecMode,
        engine: SocEngine,
        faults: &FaultConfig,
        session: &mut TraceSession,
    ) -> Result<AppRun, ExperimentError> {
        Self::execute_with(
            app,
            models,
            frames,
            mode,
            engine,
            Some(session),
            false,
            Some(faults),
        )
    }

    /// Derives profiler stage groups `(stage name, member instances)`
    /// from a dataflow, in pipeline order. Multi-instance stages are
    /// named by their kernel prefix (instance digits stripped);
    /// single-instance stages keep the device name.
    fn stage_groups(dataflow: &Dataflow) -> Vec<(String, Vec<String>)> {
        dataflow
            .stages
            .iter()
            .enumerate()
            .map(|(i, stage)| {
                let name = if stage.devices.len() == 1 {
                    stage.devices[0].clone()
                } else {
                    let stripped = stage.devices[0].trim_end_matches(|c: char| c.is_ascii_digit());
                    if stripped.is_empty() {
                        format!("stage{i}")
                    } else {
                        stripped.to_string()
                    }
                };
                (name, stage.devices.clone())
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_with(
        app: &CaseApp,
        models: &TrainedModels,
        frames: u64,
        mode: ExecMode,
        engine: SocEngine,
        mut session: Option<&mut TraceSession>,
        sanitize: bool,
        faults: Option<&FaultConfig>,
    ) -> Result<AppRun, ExperimentError> {
        let mut soc = app.build_soc(models)?;
        soc.set_engine(engine);
        if sanitize {
            soc.enable_sanitizer(SanitizerConfig::all());
        }
        if let Some(fc) = faults {
            if !fc.plan.is_empty() {
                soc.install_fault_plan(&fc.plan);
            }
        }
        let run_label = format!("{} {}", app.label(), mode.label());
        let dataflow = app.dataflow();
        if let Some(session) = session.as_deref_mut() {
            if let Some(profiler) = session.profiler() {
                profiler.set_stage_groups(Self::stage_groups(&dataflow));
            }
            if let Some(spans) = session.span_collector() {
                spans.set_stage_groups(Self::stage_groups(&dataflow));
            }
            let proc = soc.primary_proc();
            let label = run_label.clone();
            session
                .tracer()
                .emit(soc.cycle(), TileCoord::new(proc.x, proc.y), || {
                    TraceEvent::RunStart { label }
                });
            soc.set_tracer(session.tracer().clone());
            if let Some(every) = session.sample_every() {
                soc.enable_counter_sampling(every);
            }
        }
        let flow = Esp4mlFlow::new();
        let watts = flow.estimate_power(&soc).total_watts();
        let mut rt = EspRuntime::new(soc)?;
        // The runtime constructs with a disabled tracer of its own, so
        // runtime-emitted events (ioctls, retry/failover records) need
        // the session handle installed again at this level.
        if let Some(s) = session.as_deref() {
            rt.set_tracer(s.tracer().clone());
        }
        let buf = rt.prepare(&dataflow, frames)?;
        let mut gen = SvhnGenerator::new(DATA_SEED);
        let mut labels = Vec::with_capacity(frames as usize);
        for f in 0..frames {
            let (image, label) = app.input_frame(&mut gen);
            rt.write_frame(&buf, f, &encode_image(&image))?;
            labels.push(label);
        }
        let mut spec = RunSpec::new(&dataflow).mode(mode);
        if let Some(fc) = faults {
            spec = spec
                .watchdog_cycles(fc.watchdog_cycles)
                .recover(fc.recovery);
        }
        let metrics = match rt.run(&spec, &buf) {
            Ok(m) => m,
            Err(RuntimeError::Timeout { .. }) if faults.is_some_and(|fc| fc.software_fallback) => {
                // Graceful degradation: the hardware pipeline is
                // unrecoverable (retries and spares exhausted), so the
                // application reruns on the processor tile in software.
                return Self::software_fallback(app, models, frames, mode, &rt, labels);
            }
            Err(e) => return Err(e.into()),
        };
        let sanitizer = match rt.soc().sanitizer_report() {
            Some(report) if report.has_errors() => {
                return Err(ExperimentError::Sanitizer {
                    label: run_label,
                    report,
                });
            }
            verdict => verdict,
        };
        // Snapshot the profile at run completion, before prediction
        // readback (which does not simulate cycles).
        let profile = session.as_deref_mut().and_then(|s| {
            s.profiler()
                .and_then(|p| p.close_run(rt.soc().cycle()))
                .map(|run| ProfileReport {
                    run,
                    heatmap: rt.soc().noc_heatmap(),
                })
        });
        // Close the span run at the same instant, carrying over any
        // ring-buffer span losses so a saturated trace yields a report
        // flagged partial instead of a silently wrong one.
        let spans = session.as_deref_mut().and_then(|s| {
            s.span_collector().and_then(|c| {
                c.note_dropped_spans(s.tracer().dropped_spans());
                c.close_run(rt.soc().cycle())
            })
        });
        let mut predictions = Vec::with_capacity(frames as usize);
        for f in 0..frames {
            let logits = decode_values(&rt.read_frame(&buf, f)?);
            predictions.push(argmax(&logits));
        }
        if let Some(session) = session {
            let series = rt.soc_mut().take_counter_series();
            session.record_run(run_label, series, rt.soc().noc_stats().clone());
            if let Some(profile) = profile {
                session.record_profile(profile);
            }
            if let Some(spans) = spans {
                session.record_spans(spans);
            }
        }
        Ok(AppRun {
            label: app.label(),
            mode,
            metrics,
            watts,
            predictions,
            labels,
            sanitizer,
            software_fallback: false,
        })
    }

    /// The graceful-degradation path: reruns the application on the
    /// Ariane processor tile in software (float models, no
    /// accelerators) and reports metrics through the honest
    /// [`Platform::ariane`] performance/power model. Cycles are modeled
    /// at the SoC clock so throughput stays comparable with the
    /// hardware runs it replaces.
    fn software_fallback(
        app: &CaseApp,
        models: &TrainedModels,
        frames: u64,
        mode: ExecMode,
        rt: &EspRuntime,
        labels: Vec<usize>,
    ) -> Result<AppRun, ExperimentError> {
        let proc = rt.soc().primary_proc();
        let from = app.label();
        rt.soc()
            .tracer()
            .emit(rt.soc().cycle(), TileCoord::new(proc.x, proc.y), || {
                TraceEvent::FailedOver {
                    from,
                    to: "software".to_string(),
                }
            });
        let sw = SoftwareApp::new(
            Some(models.classifier.clone()),
            Some(models.denoiser.clone()),
        );
        let mut gen = SvhnGenerator::new(DATA_SEED);
        let mut predictions = Vec::with_capacity(frames as usize);
        for _ in 0..frames {
            let (image, _) = app.input_frame(&mut gen);
            predictions.push(match app {
                CaseApp::NightVisionClassifier { .. } => sw.night_vision_classify(&image),
                CaseApp::DenoiserClassifier => sw.denoise_classify(&image),
                CaseApp::MultiTileClassifier => sw.classify(&image),
            });
        }
        let ariane = Platform::ariane();
        let (_, workload) = Workload::table1_apps()
            .into_iter()
            .find(|(name, _)| *name == app.app_name())
            .expect("every case app has a Table I workload");
        let clock_hz = rt.soc().clock_hz();
        let metrics = RunMetrics {
            frames,
            cycles: (frames as f64 * ariane.frame_seconds(&workload) * clock_hz).ceil() as u64,
            clock_hz,
            faults_injected: rt.soc().faults_injected(),
            ..RunMetrics::default()
        };
        Ok(AppRun {
            label: app.label(),
            mode,
            metrics,
            watts: ariane.average_watts(&workload),
            predictions,
            labels,
            sanitizer: None,
            software_fallback: true,
        })
    }

    /// Classification accuracy of the run against ground truth.
    pub fn accuracy(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        let correct = self
            .predictions
            .iter()
            .zip(&self.labels)
            .filter(|(p, l)| p == l)
            .count();
        correct as f64 / self.labels.len() as f64
    }

    /// Energy efficiency in frames per joule.
    pub fn frames_per_joule(&self) -> f64 {
        self.metrics.frames_per_joule(self.watts)
    }
}

/// An application loaded once and forked many times.
///
/// The load/config phase of a grid point — building the SoC, probing
/// devices, `esp_alloc`, writing every input frame — is identical for
/// every execution mode of one configuration ([`GridPoint::prefix_key`]).
/// `PreparedApp` executes that shared prefix once, captures a warm
/// [`RuntimeSnapshot`], and each [`PreparedApp::run`] restores the
/// snapshot before its suffix: N modes cost one prefix instead of N.
///
/// Fork safety rests on two facts, both enforced by tests:
///
/// * the prefix simulates **zero** cycles and zero architectural events
///   (configuration and frame loading are host-side DRAM/ioctl writes),
///   so a fault plan installed after the restore
///   ([`PreparedApp::run_faulted`]) arms at exactly the same
///   architectural triggers as one installed before the prefix;
/// * [`EspRuntime::restore`] replaces machine state wholesale —
///   registers, PLM contents, sanitizer ledgers, fault trigger counts,
///   allocator and counters — so no suffix can leak into the next one,
///   which is what makes every forked run byte-identical to a cold
///   start.
pub struct PreparedApp {
    app: CaseApp,
    models: TrainedModels,
    frames: u64,
    dataflow: Dataflow,
    rt: EspRuntime,
    buf: AppBuffers,
    labels: Vec<usize>,
    watts: f64,
    warm: RuntimeSnapshot,
}

impl PreparedApp {
    /// Executes the shared load/config prefix for `app` under `engine`
    /// and captures the warm fork point. With `sanitize` set the runtime
    /// sanitizer is armed before the snapshot, so every fork audits its
    /// run and fails with [`ExperimentError::Sanitizer`] on violations.
    ///
    /// # Errors
    ///
    /// Build or runtime failures during the prefix.
    pub fn load(
        app: &CaseApp,
        models: &TrainedModels,
        frames: u64,
        engine: SocEngine,
        sanitize: bool,
    ) -> Result<PreparedApp, ExperimentError> {
        let mut soc = app.build_soc(models)?;
        soc.set_engine(engine);
        if sanitize {
            soc.enable_sanitizer(SanitizerConfig::all());
        }
        let dataflow = app.dataflow();
        // Power is structure-derived (no simulation), so the prefix can
        // price the SoC once for every fork.
        let watts = Esp4mlFlow::new().estimate_power(&soc).total_watts();
        let mut rt = EspRuntime::new(soc)?;
        let buf = rt.prepare(&dataflow, frames)?;
        let mut gen = SvhnGenerator::new(DATA_SEED);
        let mut labels = Vec::with_capacity(frames as usize);
        for f in 0..frames {
            let (image, label) = app.input_frame(&mut gen);
            rt.write_frame(&buf, f, &encode_image(&image))?;
            labels.push(label);
        }
        let warm = rt.snapshot();
        Ok(PreparedApp {
            app: *app,
            models: models.clone(),
            frames,
            dataflow,
            buf,
            labels,
            watts,
            warm,
            rt,
        })
    }

    /// The configuration this prefix was loaded for.
    pub fn app(&self) -> &CaseApp {
        &self.app
    }

    /// The dataflow the prefix prepared.
    pub fn dataflow(&self) -> &Dataflow {
        &self.dataflow
    }

    /// Forks the warm snapshot and runs the suffix in `mode`, producing
    /// the same [`AppRun`] a cold [`AppRun::execute_on`] would.
    ///
    /// # Errors
    ///
    /// Runtime failures, or [`ExperimentError::Sanitizer`] when the
    /// prefix was loaded sanitized and the run violated invariants.
    pub fn run(&mut self, mode: ExecMode) -> Result<AppRun, ExperimentError> {
        self.fork(mode, None)
    }

    /// Forks the warm snapshot and runs the suffix in `mode` under
    /// injected hardware faults, producing the same [`AppRun`] a cold
    /// [`AppRun::execute_faulted`] would: the plan is installed on the
    /// freshly restored SoC (equivalent to pre-prefix installation —
    /// the prefix fires no triggers) and the watchdog/retry/failover
    /// recovery layer is armed.
    ///
    /// # Errors
    ///
    /// Runtime failures the recovery machinery could not absorb.
    pub fn run_faulted(
        &mut self,
        mode: ExecMode,
        faults: &FaultConfig,
    ) -> Result<AppRun, ExperimentError> {
        self.fork(mode, Some(faults))
    }

    fn fork(
        &mut self,
        mode: ExecMode,
        faults: Option<&FaultConfig>,
    ) -> Result<AppRun, ExperimentError> {
        self.rt.restore(&self.warm)?;
        if let Some(fc) = faults {
            if !fc.plan.is_empty() {
                self.rt.soc_mut().install_fault_plan(&fc.plan);
            }
        }
        let run_label = format!("{} {}", self.app.label(), mode.label());
        let mut spec = RunSpec::new(&self.dataflow).mode(mode);
        if let Some(fc) = faults {
            spec = spec
                .watchdog_cycles(fc.watchdog_cycles)
                .recover(fc.recovery);
        }
        let metrics = match self.rt.run(&spec, &self.buf) {
            Ok(m) => m,
            Err(RuntimeError::Timeout { .. })
                if faults.is_some_and(|fc| fc.software_fallback) =>
            {
                return AppRun::software_fallback(
                    &self.app,
                    &self.models,
                    self.frames,
                    mode,
                    &self.rt,
                    self.labels.clone(),
                );
            }
            Err(e) => return Err(e.into()),
        };
        let sanitizer = match self.rt.soc().sanitizer_report() {
            Some(report) if report.has_errors() => {
                return Err(ExperimentError::Sanitizer {
                    label: run_label,
                    report,
                });
            }
            verdict => verdict,
        };
        let mut predictions = Vec::with_capacity(self.frames as usize);
        for f in 0..self.frames {
            let logits = decode_values(&self.rt.read_frame(&self.buf, f)?);
            predictions.push(argmax(&logits));
        }
        Ok(AppRun {
            label: self.app.label(),
            mode,
            metrics,
            watts: self.watts,
            predictions,
            labels: self.labels.clone(),
            sanitizer,
            software_fallback: false,
        })
    }
}

/// One column of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Column {
    /// Application name.
    pub app: String,
    /// LUT utilization (percent of the target device).
    pub lut_pct: f64,
    /// FF utilization.
    pub ff_pct: f64,
    /// BRAM utilization.
    pub bram_pct: f64,
    /// Whole-SoC dynamic power in watts.
    pub power_watts: f64,
    /// ESP4ML frames/s (best configuration, p2p pipeline).
    pub fps_esp4ml: f64,
    /// Intel i7-8700K frames/s (software baseline model).
    pub fps_i7: f64,
    /// Jetson TX1 frames/s (software baseline model).
    pub fps_jetson: f64,
}

/// Table I: summary of results using the best-case configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// The three application columns.
    pub columns: Vec<Table1Column>,
}

impl Table1 {
    /// The best-case configuration per column, as the paper's caption
    /// states.
    pub fn best_configs() -> [CaseApp; 3] {
        [
            CaseApp::NightVisionClassifier { nv: 4, cl: 4 },
            CaseApp::DenoiserClassifier,
            CaseApp::MultiTileClassifier,
        ]
    }

    /// The experiment grid: each best-case configuration in p2p mode.
    pub fn grid() -> Vec<GridPoint> {
        Self::best_configs()
            .iter()
            .map(|&app| GridPoint {
                app,
                mode: ExecMode::P2p,
            })
            .collect()
    }

    /// Folds per-point runs — in [`Table1::grid`] order — into the table.
    /// Utilization and power come from rebuilding each SoC (deterministic
    /// and cheap; no simulation).
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Grid`] when `runs` doesn't match the grid;
    /// build failures.
    pub fn assemble(models: &TrainedModels, runs: &[AppRun]) -> Result<Table1, ExperimentError> {
        let grid = Self::grid();
        if runs.len() != grid.len() {
            return Err(ExperimentError::Grid(format!(
                "table1 expects {} runs, got {}",
                grid.len(),
                runs.len()
            )));
        }
        let flow = Esp4mlFlow::new();
        let i7 = Platform::intel_i7_8700k();
        let tx1 = Platform::jetson_tx1();
        let workloads = Workload::table1_apps();
        let mut columns = Vec::new();
        for ((point, run), (_, workload)) in grid.iter().zip(runs).zip(workloads.iter()) {
            let soc = point.app.build_soc(models)?;
            let util = flow.utilization(&soc);
            let power = flow.estimate_power(&soc).total_watts();
            columns.push(Table1Column {
                app: point.app.app_name().to_string(),
                lut_pct: util.lut_pct,
                ff_pct: util.ff_pct,
                bram_pct: util.bram_pct,
                power_watts: power,
                fps_esp4ml: run.metrics.frames_per_second(),
                fps_i7: i7.frames_per_second(workload),
                fps_jetson: tx1.frames_per_second(workload),
            });
        }
        Ok(Table1 { columns })
    }

    /// Generates the table by running each best-case configuration in p2p
    /// mode over `frames` frames.
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn generate(models: &TrainedModels, frames: u64) -> Result<Table1, ExperimentError> {
        Self::generate_with(models, frames, None)
    }

    /// [`Table1::generate`] with every run traced into `session`.
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn generate_traced(
        models: &TrainedModels,
        frames: u64,
        session: &mut TraceSession,
    ) -> Result<Table1, ExperimentError> {
        Self::generate_with(models, frames, Some(session))
    }

    fn generate_with(
        models: &TrainedModels,
        frames: u64,
        mut session: Option<&mut TraceSession>,
    ) -> Result<Table1, ExperimentError> {
        let mut runs = Vec::new();
        for point in Self::grid() {
            runs.push(AppRun::execute_with(
                &point.app,
                models,
                frames,
                point.mode,
                SocEngine::default(),
                session.as_deref_mut(),
                false,
                None,
            )?);
        }
        Self::assemble(models, &runs)
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE I — SUMMARY OF RESULTS (BEST-CASE CONFIGURATION)")?;
        write!(f, "{:<18}", "")?;
        for c in &self.columns {
            write!(f, "{:>24}", c.app.replace(" & ", "&"))?;
        }
        writeln!(f)?;
        let row = |f: &mut fmt::Formatter<'_>, name: &str, vals: Vec<String>| -> fmt::Result {
            write!(f, "{name:<18}")?;
            for v in vals {
                write!(f, "{v:>24}")?;
            }
            writeln!(f)
        };
        row(
            f,
            "LUTS",
            self.columns
                .iter()
                .map(|c| format!("{:.0}%", c.lut_pct))
                .collect(),
        )?;
        row(
            f,
            "FFS",
            self.columns
                .iter()
                .map(|c| format!("{:.0}%", c.ff_pct))
                .collect(),
        )?;
        row(
            f,
            "BRAMS",
            self.columns
                .iter()
                .map(|c| format!("{:.0}%", c.bram_pct))
                .collect(),
        )?;
        row(
            f,
            "POWER (W)",
            self.columns
                .iter()
                .map(|c| format!("{:.2}", c.power_watts))
                .collect(),
        )?;
        row(
            f,
            "FRAMES/S ESP4ML",
            self.columns
                .iter()
                .map(|c| format!("{:.0}", c.fps_esp4ml))
                .collect(),
        )?;
        row(
            f,
            "FRAMES/S INTEL I7",
            self.columns
                .iter()
                .map(|c| format!("{:.0}", c.fps_i7))
                .collect(),
        )?;
        row(
            f,
            "FRAMES/S JETSON",
            self.columns
                .iter()
                .map(|c| format!("{:.0}", c.fps_jetson))
                .collect(),
        )
    }
}

/// One bar of Fig. 7: an execution mode of one accelerator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Bar {
    /// Configuration label ("4NV+1Cl", …).
    pub config: String,
    /// Execution mode label ("base", "pipe", "p2p").
    pub mode: String,
    /// Absolute energy efficiency in frames/J.
    pub frames_per_joule: f64,
    /// Throughput in frames/s (context for the bar).
    pub frames_per_second: f64,
}

/// One cluster of Fig. 7: an application with its configurations and the
/// two baseline lines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Cluster {
    /// Application name.
    pub app: String,
    /// Bars, in (config, mode) order.
    pub bars: Vec<Fig7Bar>,
    /// The i7 horizontal line (frames/J).
    pub i7_line: f64,
    /// The Jetson horizontal line (frames/J).
    pub jetson_line: f64,
}

/// Fig. 7: energy efficiency of ESP4ML execution modes vs CPU/GPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// The three application clusters.
    pub clusters: Vec<Fig7Cluster>,
}

impl Fig7 {
    /// The experiment grid: every accelerator configuration in every
    /// execution mode, configuration-major.
    pub fn grid() -> Vec<GridPoint> {
        CaseApp::all_fig7_configs()
            .into_iter()
            .flat_map(|app| {
                ExecMode::ALL
                    .into_iter()
                    .map(move |mode| GridPoint { app, mode })
            })
            .collect()
    }

    /// Folds per-point runs — in [`Fig7::grid`] order — into the figure.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Grid`] when `runs` doesn't match the grid.
    pub fn assemble(runs: &[AppRun]) -> Result<Fig7, ExperimentError> {
        let grid = Self::grid();
        if runs.len() != grid.len() {
            return Err(ExperimentError::Grid(format!(
                "fig7 expects {} runs, got {}",
                grid.len(),
                runs.len()
            )));
        }
        let i7 = Platform::intel_i7_8700k();
        let tx1 = Platform::jetson_tx1();
        let mut clusters: Vec<Fig7Cluster> = Workload::table1_apps()
            .iter()
            .map(|(name, w)| Fig7Cluster {
                app: name.to_string(),
                bars: Vec::new(),
                i7_line: i7.frames_per_joule(w),
                jetson_line: tx1.frames_per_joule(w),
            })
            .collect();
        for (point, run) in grid.iter().zip(runs) {
            let cluster = clusters
                .iter_mut()
                .find(|c| c.app == point.app.app_name())
                .ok_or_else(|| {
                    ExperimentError::Grid(format!("no fig7 cluster for {}", point.app.app_name()))
                })?;
            cluster.bars.push(Fig7Bar {
                config: point.app.label(),
                mode: point.mode.label().to_string(),
                frames_per_joule: run.frames_per_joule(),
                frames_per_second: run.metrics.frames_per_second(),
            });
        }
        Ok(Fig7 { clusters })
    }

    /// Generates the figure data by running every configuration in every
    /// mode over `frames` frames.
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn generate(models: &TrainedModels, frames: u64) -> Result<Fig7, ExperimentError> {
        Self::generate_with(models, frames, None)
    }

    /// [`Fig7::generate`] with every run traced into `session`.
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn generate_traced(
        models: &TrainedModels,
        frames: u64,
        session: &mut TraceSession,
    ) -> Result<Fig7, ExperimentError> {
        Self::generate_with(models, frames, Some(session))
    }

    fn generate_with(
        models: &TrainedModels,
        frames: u64,
        mut session: Option<&mut TraceSession>,
    ) -> Result<Fig7, ExperimentError> {
        let mut runs = Vec::new();
        for point in Self::grid() {
            runs.push(AppRun::execute_with(
                &point.app,
                models,
                frames,
                point.mode,
                SocEngine::default(),
                session.as_deref_mut(),
                false,
                None,
            )?);
        }
        Self::assemble(&runs)
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FIG. 7 — ENERGY EFFICIENCY (frames/J), ESP4ML base/pipe/p2p vs baselines"
        )?;
        for c in &self.clusters {
            writeln!(f, "\n[{}]", c.app)?;
            writeln!(
                f,
                "  baseline lines: i7 8700K = {:.1} f/J, Jetson TX1 = {:.1} f/J",
                c.i7_line, c.jetson_line
            )?;
            for bar in &c.bars {
                writeln!(
                    f,
                    "  {:>10} {:>5}: {:>10.1} f/J  ({:>9.0} f/s)  [{:+.1}x vs i7, {:+.1}x vs Jetson]",
                    bar.config,
                    bar.mode,
                    bar.frames_per_joule,
                    bar.frames_per_second,
                    bar.frames_per_joule / c.i7_line,
                    bar.frames_per_joule / c.jetson_line,
                )?;
            }
        }
        Ok(())
    }
}

/// One pair of Fig. 8 bars: DRAM accesses without and with p2p.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Row {
    /// Application name.
    pub app: String,
    /// Configuration label.
    pub config: String,
    /// DRAM word accesses without p2p (pipelined through memory).
    pub accesses_no_p2p: u64,
    /// DRAM word accesses with p2p.
    pub accesses_p2p: u64,
}

impl Fig8Row {
    /// The p2p bar normalized to the no-p2p bar (percent).
    pub fn p2p_pct(&self) -> f64 {
        if self.accesses_no_p2p == 0 {
            return 0.0;
        }
        100.0 * self.accesses_p2p as f64 / self.accesses_no_p2p as f64
    }

    /// The reduction factor (no-p2p / p2p).
    pub fn reduction(&self) -> f64 {
        if self.accesses_p2p == 0 {
            return 0.0;
        }
        self.accesses_no_p2p as f64 / self.accesses_p2p as f64
    }
}

/// Fig. 8: relative number of DRAM accesses with and without p2p.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// One row per application.
    pub rows: Vec<Fig8Row>,
}

impl Fig8 {
    /// The experiment grid: every best-case configuration, first
    /// pipelined through memory, then over p2p.
    pub fn grid() -> Vec<GridPoint> {
        Table1::best_configs()
            .iter()
            .flat_map(|&app| {
                [ExecMode::Pipe, ExecMode::P2p]
                    .into_iter()
                    .map(move |mode| GridPoint { app, mode })
            })
            .collect()
    }

    /// Folds per-point runs — in [`Fig8::grid`] order — into the figure.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Grid`] when `runs` doesn't match the grid.
    pub fn assemble(runs: &[AppRun]) -> Result<Fig8, ExperimentError> {
        let grid = Self::grid();
        if runs.len() != grid.len() {
            return Err(ExperimentError::Grid(format!(
                "fig8 expects {} runs, got {}",
                grid.len(),
                runs.len()
            )));
        }
        let rows = grid
            .chunks(2)
            .zip(runs.chunks(2))
            .map(|(points, pair)| Fig8Row {
                app: points[0].app.app_name().to_string(),
                config: points[0].app.label(),
                accesses_no_p2p: pair[0].metrics.dram_accesses,
                accesses_p2p: pair[1].metrics.dram_accesses,
            })
            .collect();
        Ok(Fig8 { rows })
    }

    /// Generates the figure data over `frames` frames per application.
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn generate(models: &TrainedModels, frames: u64) -> Result<Fig8, ExperimentError> {
        Self::generate_with(models, frames, None)
    }

    /// [`Fig8::generate`] with every run traced into `session`.
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn generate_traced(
        models: &TrainedModels,
        frames: u64,
        session: &mut TraceSession,
    ) -> Result<Fig8, ExperimentError> {
        Self::generate_with(models, frames, Some(session))
    }

    fn generate_with(
        models: &TrainedModels,
        frames: u64,
        mut session: Option<&mut TraceSession>,
    ) -> Result<Fig8, ExperimentError> {
        let mut runs = Vec::new();
        for point in Self::grid() {
            runs.push(AppRun::execute_with(
                &point.app,
                models,
                frames,
                point.mode,
                SocEngine::default(),
                session.as_deref_mut(),
                false,
                None,
            )?);
        }
        Self::assemble(&runs)
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FIG. 8 — DRAM ACCESSES, no-p2p vs p2p (normalized)")?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<26} ({:>9}): no-p2p 100% ({} words) | p2p {:>5.1}% ({} words) | {:.2}x reduction",
                r.app,
                r.config,
                r.accesses_no_p2p,
                r.p2p_pct(),
                r.accesses_p2p,
                r.reduction(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> TrainedModels {
        TrainedModels::untrained()
    }

    #[test]
    fn app_run_denoiser_classifier_p2p() {
        let run =
            AppRun::execute(&CaseApp::DenoiserClassifier, &models(), 3, ExecMode::P2p).unwrap();
        assert_eq!(run.metrics.frames, 3);
        assert_eq!(run.predictions.len(), 3);
        assert!(run.metrics.frames_per_second() > 0.0);
        assert!(run.watts > 0.2);
        assert!(run.predictions.iter().all(|&p| p < 10));
    }

    #[test]
    fn app_run_multi_tile_all_modes_agree() {
        let m = models();
        let mut preds = Vec::new();
        for mode in ExecMode::ALL {
            let run = AppRun::execute(&CaseApp::MultiTileClassifier, &m, 3, mode).unwrap();
            preds.push(run.predictions.clone());
        }
        assert_eq!(preds[0], preds[1]);
        assert_eq!(preds[1], preds[2]);
    }

    #[test]
    fn fig8_shows_reduction_for_denoiser() {
        let m = models();
        let no_p2p = AppRun::execute(&CaseApp::DenoiserClassifier, &m, 3, ExecMode::Pipe).unwrap();
        let p2p = AppRun::execute(&CaseApp::DenoiserClassifier, &m, 3, ExecMode::P2p).unwrap();
        let row = Fig8Row {
            app: "x".into(),
            config: "y".into(),
            accesses_no_p2p: no_p2p.metrics.dram_accesses,
            accesses_p2p: p2p.metrics.dram_accesses,
        };
        assert!(
            row.reduction() > 2.0 && row.reduction() < 3.5,
            "reduction {:.2} outside the paper's 2-3x band",
            row.reduction()
        );
    }

    #[test]
    fn profiled_session_collects_report() {
        let mut session = TraceSession::profiled(None);
        let run = AppRun::execute_traced(
            &CaseApp::DenoiserClassifier,
            &models(),
            3,
            ExecMode::P2p,
            &mut session,
        )
        .unwrap();
        assert_eq!(session.profiles().len(), 1);
        let report = &session.profiles()[0];
        assert_eq!(report.run.frames, 3);
        assert_eq!(report.run.pipeline.count(), 3);
        // Two pipeline stages, named after their kernels.
        let names: Vec<&str> = report.run.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["denoiser", "cl_de"]);
        let b = report.run.bottleneck.as_ref().expect("bottleneck report");
        assert!(names.contains(&b.limiting_stage.as_str()));
        // The stage bound can never exceed the observed period.
        assert!(b.bound_cycles_per_frame <= b.observed_cycles_per_frame);
        assert!(b.speedup_ceiling >= 1.0);
        // Every simulated cycle of each instance is attributed.
        for acc in report.run.accels.values() {
            assert_eq!(acc.breakdown.total(), report.run.cycles());
        }
        // p2p traffic shows up on the DMA planes of the heatmap.
        assert!(report.heatmap.total_flits() > 0);
        assert_eq!(run.metrics.frames, 3);
        assert!(session.profiles_json().contains("denoiser"));
        assert!(session.profile_summary().contains("bottleneck"));
    }

    #[test]
    fn multi_tile_stages_stay_distinct() {
        let mut session = TraceSession::profiled(None);
        AppRun::execute_traced(
            &CaseApp::MultiTileClassifier,
            &models(),
            2,
            ExecMode::Pipe,
            &mut session,
        )
        .unwrap();
        let report = &session.profiles()[0];
        // Five sequential single-instance stages must not be merged.
        let names: Vec<&str> = report.run.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["cls_l0", "cls_l1", "cls_l2", "cls_l3", "cls_l4"]);
        assert_eq!(report.run.frames, 2);
    }

    /// Forking one warm prefix across every execution mode reproduces
    /// each mode's cold-start run exactly.
    #[test]
    fn prepared_app_forks_match_cold_starts() {
        let m = models();
        let app = CaseApp::NightVisionClassifier { nv: 2, cl: 2 };
        let mut prepared = PreparedApp::load(&app, &m, 2, SocEngine::EventDriven, false).unwrap();
        for mode in ExecMode::ALL {
            let cold = AppRun::execute_on(&app, &m, 2, mode, SocEngine::EventDriven).unwrap();
            let forked = prepared.run(mode).unwrap();
            assert_eq!(forked.metrics, cold.metrics, "{mode:?}");
            assert_eq!(forked.predictions, cold.predictions, "{mode:?}");
            assert_eq!(forked.labels, cold.labels);
            assert_eq!(forked.watts, cold.watts);
            assert_eq!(forked.label, cold.label);
        }
    }

    /// The fig7 grid is config-major, so its 15 points collapse into 5
    /// contiguous prefix groups of 3 modes each.
    #[test]
    fn fig7_prefix_keys_form_five_groups_of_three() {
        let grid = Fig7::grid();
        assert_eq!(grid.len(), 15);
        let mut keys: Vec<String> = Vec::new();
        for p in &grid {
            let k = p.prefix_key();
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        assert_eq!(keys.len(), 5, "{keys:?}");
        for chunk in grid.chunks(3) {
            assert!(chunk
                .iter()
                .all(|p| p.prefix_key() == chunk[0].prefix_key()));
        }
    }

    #[test]
    fn night_vision_pipeline_runs_p2p() {
        let run = AppRun::execute(
            &CaseApp::NightVisionClassifier { nv: 2, cl: 2 },
            &models(),
            4,
            ExecMode::P2p,
        )
        .unwrap();
        assert_eq!(run.metrics.frames, 4);
        // p2p carries the NV output directly: DRAM sees input + labels only.
        let expected = 4 * 256 + 4 * 3;
        assert_eq!(run.metrics.dram_accesses, expected);
    }
}

/// The application-level accuracy experiment: how much classification
/// accuracy the Night-Vision and Denoiser pre-processing stages recover,
/// in float software and on the fixed-point SoC pipelines.
///
/// The paper motivates both pipelines qualitatively (dark/noisy street
/// images are "significantly more laborious"); this report quantifies the
/// mechanism end to end, including the HLS4ML quantization and the real
/// accelerator datapath.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Samples evaluated per row.
    pub n: u64,
    /// Float classifier on clean images.
    pub clean_float: f64,
    /// Float classifier applied directly to darkened images.
    pub dark_direct_float: f64,
    /// Float Night-Vision + classifier on darkened images.
    pub dark_nv_float: f64,
    /// The on-SoC fixed-point NV + classifier p2p pipeline.
    pub dark_soc_fixed: f64,
    /// Float classifier applied directly to noisy images.
    pub noisy_direct_float: f64,
    /// Float denoiser + classifier on noisy images.
    pub noisy_denoised_float: f64,
    /// The on-SoC fixed-point denoiser + classifier p2p pipeline.
    pub noisy_soc_fixed: f64,
}

impl AccuracyReport {
    /// Generates the report over `n` samples (the SoC rows simulate `n`
    /// frames each).
    ///
    /// # Errors
    ///
    /// Build or runtime failures.
    pub fn generate(models: &TrainedModels, n: u64) -> Result<AccuracyReport, ExperimentError> {
        use esp4ml_baseline::SoftwareApp;
        use esp4ml_nn::Matrix;

        let app_sw = SoftwareApp::new(
            Some(models.classifier.clone()),
            Some(models.denoiser.clone()),
        );
        let classify_float = |image: &[f32]| -> usize {
            let x = Matrix::from_vec(1, image.len(), image.to_vec());
            models.classifier.predict_classes(&x)[0]
        };

        // Replicate the exact frame sequences the SoC runs see.
        let nv_app = CaseApp::NightVisionClassifier { nv: 4, cl: 4 };
        let de_app = CaseApp::DenoiserClassifier;

        let mut hits = [0u64; 5]; // clean, dark-direct, dark-nv, noisy-direct, noisy-denoised
        let mut gen_nv = SvhnGenerator::new(DATA_SEED);
        let mut gen_de = SvhnGenerator::new(DATA_SEED);
        for _ in 0..n {
            let (dark, label_nv) = nv_app.input_frame(&mut gen_nv);
            // The clean image is the darkened one un-scaled (darken is a
            // pure multiplication by 0.25).
            let clean: Vec<f32> = dark.iter().map(|&v| (v / 0.25).min(1.0)).collect();
            if classify_float(&clean) == label_nv {
                hits[0] += 1;
            }
            if classify_float(&dark) == label_nv {
                hits[1] += 1;
            }
            if app_sw.night_vision_classify(&dark) == label_nv {
                hits[2] += 1;
            }
            let (noisy, label_de) = de_app.input_frame(&mut gen_de);
            if classify_float(&noisy) == label_de {
                hits[3] += 1;
            }
            if app_sw.denoise_classify(&noisy) == label_de {
                hits[4] += 1;
            }
        }
        let frac = |h: u64| h as f64 / n as f64;

        let soc_nv = AppRun::execute(&nv_app, models, n, ExecMode::P2p)?;
        let soc_de = AppRun::execute(&de_app, models, n, ExecMode::P2p)?;

        Ok(AccuracyReport {
            n,
            clean_float: frac(hits[0]),
            dark_direct_float: frac(hits[1]),
            dark_nv_float: frac(hits[2]),
            dark_soc_fixed: soc_nv.accuracy(),
            noisy_direct_float: frac(hits[3]),
            noisy_denoised_float: frac(hits[4]),
            noisy_soc_fixed: soc_de.accuracy(),
        })
    }
}

impl fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "APPLICATION ACCURACY over {} samples", self.n)?;
        let pct = |v: f64| format!("{:.1}%", 100.0 * v);
        writeln!(
            f,
            "  clean images, float classifier:              {:>7}",
            pct(self.clean_float)
        )?;
        writeln!(
            f,
            "  darkened, float classifier (no NV):          {:>7}",
            pct(self.dark_direct_float)
        )?;
        writeln!(
            f,
            "  darkened, float NV + classifier:             {:>7}",
            pct(self.dark_nv_float)
        )?;
        writeln!(
            f,
            "  darkened, on-SoC fixed NV + classifier:      {:>7}",
            pct(self.dark_soc_fixed)
        )?;
        writeln!(
            f,
            "  noisy, float classifier (no denoiser):       {:>7}",
            pct(self.noisy_direct_float)
        )?;
        writeln!(
            f,
            "  noisy, float denoiser + classifier:          {:>7}",
            pct(self.noisy_denoised_float)
        )?;
        writeln!(
            f,
            "  noisy, on-SoC fixed denoiser + classifier:   {:>7}",
            pct(self.noisy_soc_fixed)
        )
    }
}
