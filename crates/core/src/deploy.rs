//! Multi-tenant deployment analysis: the static admission pass behind
//! `espcheck --deployment` and the `espserve` deployment workload.
//!
//! A [`Deployment`] names one floorplan and K *tenants* — independent
//! dataflow pipelines with their own device mappings, execution modes,
//! routing disciplines and frame-rate targets — intended to run
//! concurrently on the same SoC. [`lint_deployment`] proves (or
//! refutes) three composition properties no per-tenant lint can see:
//!
//! 1. **Co-residency** (`E0701`/`E0702`): no two tenants lease the
//!    same accelerator unless every user declares it shared, and the
//!    *composed* PLM footprint of all sharers fits the tile budget.
//! 2. **Cross-tenant deadlock** (`E0703`): the *union*
//!    channel-dependency graph over every tenant's routes, per NoC
//!    plane, must stay acyclic. Each tenant alone may be acyclic
//!    (dimension-order routing always is); cycles appear only when
//!    tenants mixing disciplines compose — exactly what per-dataflow
//!    `E0302` cannot detect.
//! 3. **Bandwidth feasibility** (`E0704`): summing every tenant's
//!    static per-link flit demand (derived from stage widths, burst
//!    framing and the frame-rate target) must not exceed any link's
//!    capacity of one flit per cycle. For feasible deployments the
//!    same numbers yield a per-tenant worst-case slowdown bound,
//!    reported as structured data in [`bw::BandwidthAnalysis`].
//!
//! The demand model is deliberately an *over-approximation* — every
//! producer/consumer pair and every memory tile is charged the full
//! per-frame transfer, and per-chunk headers are rounded up — so the
//! slowdown bound is sound: [`validate_against_simulator`] runs each
//! tenant of a feasible deployment through the cycle-level simulator
//! and checks `static >= measured` on every link and every bound.

use crate::apps::TrainedModels;
use crate::check::{lint_config, lint_dataflow, lint_mapping, words_for, FloorplanView};
use crate::error::Esp4mlError;
use crate::soc_config::SocConfigFile;
use esp4ml_check::cdg::{self, Link, Node, Routing};
use esp4ml_check::{bw, codes, Diagnostic, Report};
use esp4ml_noc::{Coord, Plane, Port, LINK_CAPACITY_FLITS_PER_CYCLE};
use esp4ml_runtime::{Dataflow, EspRuntime, ExecMode, RunSpec, StageSpec};
use esp4ml_soc::SocEngine;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// DMA data packets carry at most this many payload words per packet
/// (`MAX_DMA_PACKET_WORDS` in the socket/memory tiles).
const CHUNK_WORDS: u64 = 128;

/// DMA load requests are issued per contiguous physical chunk; pages
/// are 4 KiB = 512 words, so `len/512` rounded up bounds the request
/// count even under a maximally fragmented page table.
const PAGE_WORDS: u64 = 512;

/// One tenant: a linear dataflow pipeline plus its deployment contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant name, unique within the deployment.
    pub name: String,
    /// Stage device names, outermost list in execution order — the
    /// same shape [`Dataflow::linear`] takes.
    pub stages: Vec<Vec<String>>,
    /// Execution mode: `"base"`, `"pipe"` or `"p2p"`; missing or empty
    /// means p2p, ESP4ML's headline mode.
    #[serde(default)]
    pub mode: String,
    /// The tenant's frame-rate target in frames per second.
    pub frame_rate_hz: f64,
    /// Routing discipline of all this tenant's traffic (default XY).
    #[serde(default)]
    pub routing: Routing,
    /// Devices this tenant agrees to time-share with other tenants.
    /// A device used by several tenants must appear here in *every*
    /// user, else `E0701`.
    #[serde(default)]
    pub shared_devices: Vec<String>,
}

impl TenantSpec {
    /// The tenant's pipeline as a runtime [`Dataflow`].
    pub fn dataflow(&self) -> Dataflow {
        Dataflow {
            stages: self
                .stages
                .iter()
                .map(|devices| StageSpec::new(devices.iter().map(String::as_str)))
                .collect(),
        }
    }

    /// Parses the declared execution mode.
    pub fn exec_mode(&self) -> Option<ExecMode> {
        match self.mode.as_str() {
            "base" => Some(ExecMode::Base),
            "pipe" => Some(ExecMode::Pipe),
            "" | "p2p" => Some(ExecMode::P2p),
            _ => None,
        }
    }
}

/// A floorplan plus K tenants meant to run on it concurrently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// Deployment name (report labeling only).
    pub name: String,
    /// The shared floorplan, inline — a deployment file is
    /// self-contained.
    pub soc: SocConfigFile,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
}

impl Deployment {
    /// Parses a deployment from JSON.
    ///
    /// # Errors
    ///
    /// Malformed JSON or schema mismatch.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Serializes the deployment to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("deployment serializes")
    }

    /// Per-directed-link per-plane capacity in flits per second: the
    /// clock frequency times [`LINK_CAPACITY_FLITS_PER_CYCLE`].
    pub fn capacity_flits_per_sec(&self) -> f64 {
        self.soc.clock_mhz * 1.0e6 * LINK_CAPACITY_FLITS_PER_CYCLE as f64
    }
}

/// Flits needed to *request* a load of `words` words: one 4-flit
/// `DmaLoadReq`/`P2pLoadReq` per page-sized chunk (over-approximation:
/// contiguous mappings need one request total; p2p requests are 3
/// flits).
pub fn load_req_flits(words: u64) -> u64 {
    4 * words.div_ceil(PAGE_WORDS).max(1)
}

/// Flits of the `DmaData` packets delivering `words` words: the
/// payload plus 3 header flits per 128-word chunk (actual framing is
/// 2).
pub fn load_data_flits(words: u64) -> u64 {
    words + 3 * words.div_ceil(CHUNK_WORDS).max(1)
}

/// Flits of the `DmaStoreReq` packets writing `words` words: the
/// payload plus 5 header flits per 128-word chunk (actual framing is
/// 3).
pub fn store_req_flits(words: u64) -> u64 {
    words + 5 * words.div_ceil(CHUNK_WORDS).max(1)
}

/// Flits of the `DmaStoreAck` replies for a `words`-word store: 3 per
/// chunked request (actual framing is one 2-flit ack per request).
pub fn store_ack_flits(words: u64) -> u64 {
    3 * words.div_ceil(CHUNK_WORDS).max(1)
}

/// One per-frame point-to-point transfer of a tenant, in flits, on one
/// DMA plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Plane display name (`"dma-req"` / `"dma-rsp"`).
    pub plane: &'static str,
    /// Injecting tile.
    pub src: Node,
    /// Ejecting tile.
    pub dst: Node,
    /// Over-approximated flits per frame.
    pub flits: u64,
}

fn node(c: Coord) -> Node {
    (c.x, c.y)
}

/// Every per-frame transfer of one tenant on the two DMA planes,
/// charged conservatively: each (instance, memory) and each
/// (producer, consumer) pair carries the *full* per-frame payload even
/// though round-robin distribution sends each frame over exactly one
/// pair — a sound over-approximation of any schedule.
///
/// # Errors
///
/// A stage device missing from the floorplan (already `E0301` via
/// [`lint_mapping`]), a model shape not statically known, or an
/// unknown execution mode (both `E0705` at the caller).
pub fn tenant_transfers(
    view: &FloorplanView,
    tenant: &TenantSpec,
) -> Result<Vec<Transfer>, String> {
    let mode = tenant
        .exec_mode()
        .ok_or_else(|| format!("unknown execution mode {:?}", tenant.mode))?;
    // Resolve every stage to (coord, in_words, out_words).
    let mut stages: Vec<Vec<(Node, u64, u64)>> = Vec::new();
    for (s, devices) in tenant.stages.iter().enumerate() {
        let mut resolved = Vec::new();
        for name in devices {
            let dev = view
                .device(name)
                .ok_or_else(|| format!("stage {s} device {name} is not on the floorplan"))?;
            let (inp, out) = match (dev.in_values, dev.out_values) {
                (Some(i), Some(o)) => (words_for(i), words_for(o)),
                _ => {
                    return Err(format!(
                        "the model shape of device {name} is not statically known; \
                         bandwidth demand cannot be bounded"
                    ))
                }
            };
            resolved.push((node(dev.coord), inp, out));
        }
        stages.push(resolved);
    }
    if stages.is_empty() || view.memories.is_empty() {
        return Ok(Vec::new());
    }
    let memories: Vec<Node> = view.memories.iter().copied().map(node).collect();
    let mut transfers = Vec::new();
    let mut push = |plane, src, dst, flits| {
        if src != dst && flits > 0 {
            transfers.push(Transfer {
                plane,
                src,
                dst,
                flits,
            });
        }
    };
    let frame_io = |push: &mut dyn FnMut(&'static str, Node, Node, u64),
                    instances: &[(Node, u64, u64)],
                    load: bool,
                    store: bool| {
        for &(a, inp, out) in instances {
            for &m in &memories {
                if load {
                    push("dma-req", a, m, load_req_flits(inp));
                    push("dma-rsp", m, a, load_data_flits(inp));
                }
                if store {
                    push("dma-req", a, m, store_req_flits(out));
                    push("dma-rsp", m, a, store_ack_flits(out));
                }
            }
        }
    };
    match mode {
        ExecMode::P2p => {
            // Only the pipeline edges touch memory; interior stage
            // boundaries ride the p2p service.
            frame_io(&mut push, &stages[0], true, stages.len() == 1);
            if stages.len() > 1 {
                frame_io(&mut push, stages.last().expect("non-empty"), false, true);
            }
            for w in stages.windows(2) {
                for &(c, words, _) in &w[1] {
                    for &(p, _, _) in &w[0] {
                        push("dma-req", c, p, load_req_flits(words));
                        push("dma-rsp", p, c, load_data_flits(words));
                    }
                }
            }
        }
        ExecMode::Base | ExecMode::Pipe => {
            // Every stage stages its frames through memory.
            for stage in &stages {
                frame_io(&mut push, stage, true, true);
            }
        }
    }
    Ok(transfers)
}

/// The tenant's static bandwidth demand profile: its transfers routed
/// with its own discipline, accumulated per link.
///
/// # Errors
///
/// Same conditions as [`tenant_transfers`].
pub fn tenant_demand(
    view: &FloorplanView,
    tenant: &TenantSpec,
) -> Result<bw::TenantDemand, String> {
    let mut demands = Vec::new();
    for t in tenant_transfers(view, tenant)? {
        for link in tenant.routing.route(t.src, t.dst) {
            demands.push(bw::LinkDemand {
                plane: t.plane.to_string(),
                link,
                flits_per_frame: t.flits as f64,
            });
        }
    }
    Ok(bw::TenantDemand {
        name: tenant.name.clone(),
        frame_rate_hz: tenant.frame_rate_hz,
        demands,
    })
}

/// The outcome of [`lint_deployment`]: the diagnostics plus, when the
/// demand model applied, the structured bandwidth/slowdown analysis.
#[derive(Debug, Clone, Serialize)]
pub struct DeploymentAnalysis {
    /// Every finding, normalized (sorted, de-duplicated).
    pub report: Report,
    /// The composed bandwidth picture; `None` only when no tenant's
    /// demand could be computed.
    pub bandwidth: Option<bw::BandwidthAnalysis>,
}

fn prefixed(report: Report, prefix: &str) -> Report {
    let mut out = Report::new();
    for mut d in report.diagnostics {
        d.location = format!("{prefix}/{}", d.location);
        out.push(d);
    }
    out
}

/// Statically proves or refutes that a deployment's tenants can
/// coexist: per-tenant structure and mapping, exclusive leases and
/// composed PLM budgets, union-CDG deadlock freedom per plane, and NoC
/// bandwidth feasibility — the `E07xx` family, composed with every
/// per-tenant code the single-dataflow linter already emits.
pub fn lint_deployment(deployment: &Deployment) -> DeploymentAnalysis {
    let mut report = lint_config(&deployment.soc);
    let view = FloorplanView::from_config(&deployment.soc);

    if deployment.tenants.is_empty() {
        report.push(
            Diagnostic::error(
                codes::DEPLOYMENT_MALFORMED,
                "deployment",
                "the deployment declares no tenants",
            )
            .with_hint("a deployment needs at least one tenant pipeline"),
        );
    }
    let mut names: BTreeMap<&str, usize> = BTreeMap::new();
    for t in &deployment.tenants {
        *names.entry(t.name.as_str()).or_insert(0) += 1;
    }
    for (name, count) in names {
        if count > 1 {
            report.push(
                Diagnostic::error(
                    codes::DEPLOYMENT_MALFORMED,
                    format!("tenant {name}"),
                    format!("tenant name {name} is declared {count} times"),
                )
                .with_hint("tenant names key leases and reports; make them unique"),
            );
        }
    }

    // Per-tenant structure + mapping, with tenant-scoped locations.
    let mut resolved: Vec<&TenantSpec> = Vec::new();
    for tenant in &deployment.tenants {
        let scope = format!("tenant {}", tenant.name);
        if !(tenant.frame_rate_hz.is_finite() && tenant.frame_rate_hz > 0.0) {
            report.push(
                Diagnostic::error(
                    codes::DEPLOYMENT_MALFORMED,
                    scope.clone(),
                    format!(
                        "frame-rate target {} is not a positive finite rate",
                        tenant.frame_rate_hz
                    ),
                )
                .with_hint("declare the tenant's real-time requirement in frames per second"),
            );
        }
        if tenant.exec_mode().is_none() {
            report.push(
                Diagnostic::error(
                    codes::DEPLOYMENT_MALFORMED,
                    scope.clone(),
                    format!("unknown execution mode {:?}", tenant.mode),
                )
                .with_hint("modes are base, pipe and p2p"),
            );
        }
        if tenant.routing == Routing::Yx {
            report.push(
                Diagnostic::warning(
                    codes::ROUTING_UNSUPPORTED,
                    scope.clone(),
                    "yx routing is analyzer-only; the runtime NoC implements xy",
                )
                .with_hint("a yx tenant can be admitted statically but not yet simulated"),
            );
        }
        let dataflow = tenant.dataflow();
        report.merge(prefixed(lint_dataflow(&dataflow), &scope));
        report.merge(prefixed(lint_mapping(&view, &dataflow), &scope));
        resolved.push(tenant);
    }

    // Lease analysis: exclusive by default, composed budgets when shared.
    let mut users: BTreeMap<&str, Vec<&TenantSpec>> = BTreeMap::new();
    for tenant in &deployment.tenants {
        let mut seen = BTreeSet::new();
        for stage in &tenant.stages {
            for device in stage {
                if seen.insert(device.as_str()) {
                    users.entry(device.as_str()).or_default().push(tenant);
                }
            }
        }
    }
    for (device, tenants) in &users {
        if tenants.len() < 2 {
            continue;
        }
        let holdouts: Vec<&str> = tenants
            .iter()
            .filter(|t| !t.shared_devices.iter().any(|d| d == device))
            .map(|t| t.name.as_str())
            .collect();
        let names: Vec<&str> = tenants.iter().map(|t| t.name.as_str()).collect();
        if !holdouts.is_empty() {
            report.push(
                Diagnostic::error(
                    codes::LEASE_CONFLICT,
                    format!("device {device}"),
                    format!(
                        "device {device} is leased by tenants {}, but {} did not declare it shared",
                        names.join(", "),
                        holdouts.join(", ")
                    ),
                )
                .with_hint(
                    "leases are exclusive by default; add the device to shared_devices in \
                     every tenant to time-share it, or remap one tenant",
                ),
            );
        } else if let Some(dev) = view.device(device) {
            if let (Some(budget), Some(footprint)) = (dev.plm_words, dev.plm_footprint_words()) {
                let composed = footprint * tenants.len() as u64;
                if composed > budget {
                    report.push(
                        Diagnostic::error(
                            codes::COMPOSED_PLM_OVERFLOW,
                            format!("device {device}"),
                            format!(
                                "{} tenants sharing {device} need {composed} PLM words \
                                 ({footprint} each), exceeding the declared budget of \
                                 {budget} words",
                                tenants.len()
                            ),
                        )
                        .with_hint(
                            "time-sharing does not shrink resident buffers; raise plm_words \
                             or reduce the sharers",
                        ),
                    );
                }
            }
        }
    }

    // Union channel-dependency graph, per plane, across all tenants.
    let mut plane_flows: BTreeMap<&'static str, Vec<(Node, Node, Routing, String)>> =
        BTreeMap::new();
    let mut demands: Vec<bw::TenantDemand> = Vec::new();
    for tenant in &resolved {
        match tenant_transfers(&view, tenant) {
            Ok(transfers) => {
                for t in &transfers {
                    plane_flows.entry(t.plane).or_default().push((
                        t.src,
                        t.dst,
                        tenant.routing,
                        tenant.name.clone(),
                    ));
                }
                if let Ok(demand) = tenant_demand(&view, tenant) {
                    demands.push(demand);
                }
            }
            Err(msg) => {
                // Unmapped devices are already E0301; only the
                // analyzer-specific blockers earn an E0705 here.
                if msg.contains("statically known") || msg.contains("execution mode") {
                    report.push(
                        Diagnostic::error(
                            codes::DEPLOYMENT_MALFORMED,
                            format!("tenant {}", tenant.name),
                            format!("deployment analysis cannot model this tenant: {msg}"),
                        )
                        .with_hint(
                            "deployment admission needs statically-known model shapes and \
                             a known execution mode",
                        ),
                    );
                }
            }
        }
    }
    for (plane, flows) in &plane_flows {
        let routes = cdg::union_routes(
            &flows
                .iter()
                .map(|&(s, d, r, _)| (s, d, r))
                .collect::<Vec<_>>(),
        );
        if let Some(cycle) = cdg::find_cycle(&routes) {
            let cycle_links: BTreeSet<Link> = cycle.iter().copied().collect();
            let mut tenants: BTreeSet<&str> = BTreeSet::new();
            for (i, route) in routes.iter().enumerate() {
                if route.iter().any(|l| cycle_links.contains(l)) {
                    tenants.insert(flows[i].3.as_str());
                }
            }
            let links: Vec<String> = cycle.iter().map(cdg::render_link).collect();
            report.push(
                Diagnostic::error(
                    codes::UNION_CDG_CYCLE,
                    format!("plane {plane}"),
                    format!(
                        "the union of routes from tenants {} closes a channel-dependency \
                         cycle: {}",
                        tenants.into_iter().collect::<Vec<_>>().join(", "),
                        links.join(" -> ")
                    ),
                )
                .with_hint(
                    "each tenant alone is deadlock-free; the composition is not — unify \
                     the routing discipline or remap one tenant off the cycle",
                ),
            );
        }
    }

    // Bandwidth feasibility and per-tenant slowdown bounds.
    let bandwidth = if demands.is_empty() {
        None
    } else {
        let analysis = bw::analyze(&demands, deployment.capacity_flits_per_sec());
        for lu in analysis.saturated() {
            let shares: Vec<String> = lu
                .by_tenant
                .iter()
                .map(|(t, f)| format!("{t} {f:.0} flit/s"))
                .collect();
            report.push(
                Diagnostic::error(
                    codes::BANDWIDTH_INFEASIBLE,
                    format!("plane {} link {}", lu.plane, cdg::render_link(&lu.link)),
                    format!(
                        "summed static demand of {:.0} flit/s is {:.2}x the link capacity \
                         of {:.0} flit/s ({})",
                        lu.flits_per_sec,
                        lu.utilization,
                        analysis.capacity_flits_per_sec,
                        shares.join(", ")
                    ),
                )
                .with_hint(
                    "no schedule moves more than one flit per cycle per link; lower \
                     frame-rate targets or remap tenants off the hot link",
                ),
            );
        }
        Some(analysis)
    };

    report.normalize();
    DeploymentAnalysis { report, bandwidth }
}

/// One link's static-versus-measured comparison for one tenant run
/// solo on the deployment's SoC.
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredLink {
    /// Plane display name.
    pub plane: String,
    /// The directed link.
    pub link: Link,
    /// The analyzer's per-frame demand on this link.
    pub static_flits_per_frame: f64,
    /// Flits the simulator actually moved over the link, total.
    pub measured_flits: u64,
}

/// The result of running one tenant solo through the simulator.
#[derive(Debug, Clone, Serialize)]
pub struct TenantRunCheck {
    /// Tenant name.
    pub tenant: String,
    /// Frames simulated.
    pub frames: u64,
    /// Simulated cycles the solo run took.
    pub cycles: u64,
    /// Every DMA-plane link either side touched.
    pub links: Vec<MeasuredLink>,
    /// Whether `static * frames >= measured` held on every link.
    pub conservative: bool,
}

/// The full static-versus-simulated validation of a deployment.
#[derive(Debug, Clone, Serialize)]
pub struct DeploymentValidation {
    /// Frames each tenant was simulated for.
    pub frames: u64,
    /// Engine label (`"naive"` / `"event"`).
    pub engine: String,
    /// Per-tenant link-level comparisons.
    pub tenants: Vec<TenantRunCheck>,
    /// Slowdown bounds from the static demand model.
    pub static_bounds: Vec<bw::TenantBound>,
    /// Slowdown bounds recomputed from the *measured* demands.
    pub measured_bounds: Vec<bw::TenantBound>,
    /// Whether every static bound dominates its measured counterpart.
    pub bounds_conservative: bool,
}

impl DeploymentValidation {
    /// Whether the static model was conservative everywhere: per link
    /// and per slowdown bound.
    pub fn conservative(&self) -> bool {
        self.bounds_conservative && self.tenants.iter().all(|t| t.conservative)
    }
}

/// Runs one tenant solo on the deployment's SoC and compares the
/// measured DMA-plane link traffic against the static demand model.
///
/// # Errors
///
/// SoC construction or runtime failures, or a tenant the static model
/// cannot express (unknown device/mode/shape).
pub fn check_tenant_against_simulator(
    deployment: &Deployment,
    tenant_index: usize,
    frames: u64,
    engine: SocEngine,
) -> Result<TenantRunCheck, Esp4mlError> {
    let tenant = deployment
        .tenants
        .get(tenant_index)
        .ok_or_else(|| Esp4mlError::Other(format!("no tenant #{tenant_index}")))?;
    let view = FloorplanView::from_config(&deployment.soc);
    let demand = tenant_demand(&view, tenant).map_err(Esp4mlError::Other)?;
    let mode = tenant
        .exec_mode()
        .ok_or_else(|| Esp4mlError::Other(format!("unknown mode {:?}", tenant.mode)))?;

    let models = TrainedModels::untrained();
    let mut soc = deployment
        .soc
        .build(&models)
        .map_err(|e| Esp4mlError::Other(format!("SoC build failed: {e}")))?;
    soc.set_engine(engine);
    let mut rt = EspRuntime::new(soc)?;
    let dataflow = tenant.dataflow();
    let buf = rt.prepare(&dataflow, frames)?;
    for f in 0..frames {
        // Synthetic but deterministic frame content; the traffic shape
        // is what is under test, not the math.
        let values: Vec<u64> = (0..buf.in_values)
            .map(|v| (v * 31 + f * 7) % 1000)
            .collect();
        rt.write_frame(&buf, f, &values)?;
    }
    let spec = RunSpec::new(&dataflow).mode(mode);
    let metrics = rt.run(&spec, &buf)?;

    // Aggregate the static demand per (plane, link).
    let mut static_links: BTreeMap<(String, Link), f64> = BTreeMap::new();
    for d in &demand.demands {
        *static_links.entry((d.plane.clone(), d.link)).or_insert(0.0) += d.flits_per_frame;
    }
    // Collect every measured DMA-plane link.
    let heat = rt.soc().noc_heatmap();
    let mut measured: BTreeMap<(String, Link), u64> = BTreeMap::new();
    for plane in [Plane::DmaReq, Plane::DmaRsp] {
        let ph = heat.plane(plane);
        for (y, row) in ph.links.iter().enumerate() {
            for (x, load) in row.iter().enumerate() {
                let from = Coord::new(x as u8, y as u8);
                for port in [Port::North, Port::South, Port::East, Port::West] {
                    let flits = load.port(port);
                    if flits > 0 {
                        let to = port.step(from).expect("counted links stay in the mesh");
                        *measured
                            .entry((plane.to_string(), (node(from), node(to))))
                            .or_insert(0) += flits;
                    }
                }
            }
        }
    }

    let keys: BTreeSet<(String, Link)> = static_links
        .keys()
        .cloned()
        .chain(measured.keys().cloned())
        .collect();
    let mut links = Vec::new();
    let mut conservative = true;
    for key in keys {
        let static_fpf = static_links.get(&key).copied().unwrap_or(0.0);
        let measured_flits = measured.get(&key).copied().unwrap_or(0);
        if static_fpf * frames as f64 + 1e-9 < measured_flits as f64 {
            conservative = false;
        }
        links.push(MeasuredLink {
            plane: key.0,
            link: key.1,
            static_flits_per_frame: static_fpf,
            measured_flits,
        });
    }
    Ok(TenantRunCheck {
        tenant: tenant.name.clone(),
        frames,
        cycles: metrics.cycles,
        links,
        conservative,
    })
}

/// Runs every tenant of a (feasible) deployment solo through the
/// simulator and checks that the static model is conservative: per
/// link (`static * frames >= measured`) and per slowdown bound
/// (static bound >= the bound recomputed from measured demands).
///
/// # Errors
///
/// Any per-tenant failure from [`check_tenant_against_simulator`].
pub fn validate_against_simulator(
    deployment: &Deployment,
    frames: u64,
    engine: SocEngine,
) -> Result<DeploymentValidation, Esp4mlError> {
    let view = FloorplanView::from_config(&deployment.soc);
    let capacity = deployment.capacity_flits_per_sec();
    let mut tenants = Vec::new();
    let mut measured_demands = Vec::new();
    let mut static_demands = Vec::new();
    for (i, tenant) in deployment.tenants.iter().enumerate() {
        let check = check_tenant_against_simulator(deployment, i, frames, engine)?;
        measured_demands.push(bw::TenantDemand {
            name: tenant.name.clone(),
            frame_rate_hz: tenant.frame_rate_hz,
            demands: check
                .links
                .iter()
                .filter(|l| l.measured_flits > 0)
                .map(|l| bw::LinkDemand {
                    plane: l.plane.clone(),
                    link: l.link,
                    flits_per_frame: l.measured_flits as f64 / frames.max(1) as f64,
                })
                .collect(),
        });
        static_demands.push(tenant_demand(&view, tenant).map_err(Esp4mlError::Other)?);
        tenants.push(check);
    }
    let static_bounds = bw::analyze(&static_demands, capacity).tenants;
    let measured_bounds = bw::analyze(&measured_demands, capacity).tenants;
    let bounds_conservative = static_bounds
        .iter()
        .zip(&measured_bounds)
        .all(|(s, m)| s.slowdown_bound + 1e-9 >= m.slowdown_bound);
    Ok(DeploymentValidation {
        frames,
        engine: match engine {
            SocEngine::Naive => "naive".to_string(),
            SocEngine::EventDriven => "event".to_string(),
        },
        tenants,
        static_bounds,
        measured_bounds,
        bounds_conservative,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str, stages: &[&[&str]], rate: f64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            stages: stages
                .iter()
                .map(|s| s.iter().map(|d| d.to_string()).collect())
                .collect(),
            mode: "p2p".to_string(),
            frame_rate_hz: rate,
            routing: Routing::Xy,
            shared_devices: Vec::new(),
        }
    }

    fn soc1_deployment(tenants: Vec<TenantSpec>) -> Deployment {
        Deployment {
            name: "test".to_string(),
            soc: SocConfigFile::soc1(),
            tenants,
        }
    }

    fn codes_of(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn tenant_defaults_fill_in_from_json() {
        let t: TenantSpec =
            serde_json::from_str(r#"{"name": "t", "stages": [["nv0"]], "frame_rate_hz": 30.0}"#)
                .expect("parses");
        assert_eq!(t.exec_mode(), Some(ExecMode::P2p));
        assert_eq!(t.routing, Routing::Xy);
        assert!(t.shared_devices.is_empty());
    }

    #[test]
    fn disjoint_tenants_lint_clean() {
        let d = soc1_deployment(vec![
            tenant("vision", &[&["nv0"], &["cl0"]], 30.0),
            tenant("denoise", &[&["denoiser"], &["cl_de"]], 30.0),
        ]);
        let analysis = lint_deployment(&d);
        assert!(
            analysis.report.is_clean(),
            "unexpected findings:\n{}",
            analysis.report
        );
        let bw = analysis.bandwidth.expect("analyzable");
        assert_eq!(bw.tenants.len(), 2);
        for bound in &bw.tenants {
            assert!(bound.slowdown_bound >= 1.0, "{bound:?}");
            assert!(bound.slowdown_bound.is_finite(), "{bound:?}");
        }
    }

    #[test]
    fn lease_conflict_is_flagged() {
        let d = soc1_deployment(vec![
            tenant("a", &[&["nv0"], &["cl0"]], 10.0),
            tenant("b", &[&["nv1"], &["cl0"]], 10.0),
        ]);
        let analysis = lint_deployment(&d);
        assert!(codes_of(&analysis.report).contains(&codes::LEASE_CONFLICT));
    }

    #[test]
    fn declared_sharing_clears_the_lease_conflict() {
        let mut a = tenant("a", &[&["nv0"], &["cl0"]], 10.0);
        let mut b = tenant("b", &[&["nv1"], &["cl0"]], 10.0);
        a.shared_devices = vec!["cl0".to_string()];
        b.shared_devices = vec!["cl0".to_string()];
        let analysis = lint_deployment(&soc1_deployment(vec![a, b]));
        assert!(
            !codes_of(&analysis.report).contains(&codes::LEASE_CONFLICT),
            "{}",
            analysis.report
        );
    }

    #[test]
    fn composed_plm_overflow_on_a_shared_tile() {
        let mut soc = SocConfigFile::soc1();
        // cl0's footprint is 2*256 + 3 = 515 words; give it room for
        // one tenant but not two.
        let cl0 = soc
            .tiles
            .iter_mut()
            .find(|t| matches!(&t.kind, crate::soc_config::TileSpecKind::MlModel { name, .. } if name == "cl0"))
            .expect("cl0 tile");
        cl0.plm_words = Some(600);
        let mut a = tenant("a", &[&["nv0"], &["cl0"]], 10.0);
        let mut b = tenant("b", &[&["nv1"], &["cl0"]], 10.0);
        a.shared_devices = vec!["cl0".to_string()];
        b.shared_devices = vec!["cl0".to_string()];
        let d = Deployment {
            name: "shared".to_string(),
            soc,
            tenants: vec![a, b],
        };
        let analysis = lint_deployment(&d);
        assert!(
            codes_of(&analysis.report).contains(&codes::COMPOSED_PLM_OVERFLOW),
            "{}",
            analysis.report
        );
    }

    #[test]
    fn oversubscribed_frame_rate_is_infeasible() {
        let d = soc1_deployment(vec![tenant("hog", &[&["nv0"], &["cl0"]], 1.0e6)]);
        let analysis = lint_deployment(&d);
        assert!(
            codes_of(&analysis.report).contains(&codes::BANDWIDTH_INFEASIBLE),
            "{}",
            analysis.report
        );
    }

    #[test]
    fn bad_rate_and_mode_are_malformed() {
        let mut t = tenant("t", &[&["nv0"]], 0.0);
        t.mode = "warp".to_string();
        let analysis = lint_deployment(&soc1_deployment(vec![t]));
        let codes_seen = codes_of(&analysis.report);
        assert!(codes_seen.contains(&codes::DEPLOYMENT_MALFORMED));
    }

    #[test]
    fn empty_tenant_set_is_malformed() {
        let analysis = lint_deployment(&soc1_deployment(Vec::new()));
        assert!(codes_of(&analysis.report).contains(&codes::DEPLOYMENT_MALFORMED));
    }

    #[test]
    fn mixed_routing_closes_a_union_cycle() {
        // Tenant A (xy) and tenant B (yx) on a bespoke floorplan whose
        // composed routes chase each other around the (0,0)-(1,1)
        // square on the dma-req plane; each tenant alone is acyclic.
        let d = conflict_fixture();
        let analysis = lint_deployment(&d);
        let seen = codes_of(&analysis.report);
        assert!(
            seen.contains(&codes::UNION_CDG_CYCLE),
            "{}",
            analysis.report
        );
        assert!(
            seen.contains(&codes::ROUTING_UNSUPPORTED),
            "{}",
            analysis.report
        );
        // Drop the yx tenant: the cycle disappears.
        let mut solo = d.clone();
        solo.tenants.retain(|t| t.routing == Routing::Xy);
        assert!(!codes_of(&lint_deployment(&solo).report).contains(&codes::UNION_CDG_CYCLE));
    }

    /// The in-repo twin of `configs/deploy_conflict.json`'s CDG part.
    fn conflict_fixture() -> Deployment {
        use crate::soc_config::{TileSpec, TileSpecKind};
        let nv = |x: u8, y: u8, name: &str| {
            TileSpec::new(x, y, TileSpecKind::NightVision { name: name.into() })
        };
        let soc = SocConfigFile {
            name: "conflict".to_string(),
            cols: 3,
            rows: 3,
            clock_mhz: 78.0,
            tiles: vec![
                TileSpec::new(2, 0, TileSpecKind::Processor),
                TileSpec::new(1, 2, TileSpecKind::Memory),
                nv(0, 0, "a"),
                nv(1, 1, "b"),
                nv(0, 1, "c"),
                nv(1, 0, "d"),
                nv(0, 2, "e"),
            ],
        };
        let mut yx = tenant("spin", &[&["c"], &["d"], &["e"]], 5.0);
        yx.routing = Routing::Yx;
        Deployment {
            name: "conflict".to_string(),
            soc,
            tenants: vec![tenant("flow", &[&["a"], &["b"]], 5.0), yx],
        }
    }
}
