//! Observability session shared across traced experiment runs.
//!
//! Each [`AppRun`](crate::experiments::AppRun) builds a fresh SoC, so a
//! figure-level trace needs one handle threaded through every run: the
//! [`TraceSession`] carries the shared [`Tracer`] into each SoC and
//! collects the per-run counter time-series and NoC summaries on the way
//! out. The event stream itself stays in the tracer's sink, ready for
//! [`esp4ml_trace::perfetto`] export (each run opens with a
//! [`esp4ml_trace::TraceEvent::RunStart`] marker so the exporter can
//! split runs into separate process tracks).

use esp4ml_noc::NocStats;
use esp4ml_trace::{CounterSeries, Tracer};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Shared observability state for a sequence of experiment runs.
#[derive(Debug, Default)]
pub struct TraceSession {
    tracer: Tracer,
    sample_every: Option<u64>,
    series: Vec<(String, CounterSeries)>,
    noc: Vec<(String, NocStats)>,
}

impl TraceSession {
    /// A session recording events through `tracer`, without counter
    /// sampling.
    pub fn new(tracer: Tracer) -> Self {
        TraceSession {
            tracer,
            ..Default::default()
        }
    }

    /// A session recording events and sampling the counter registry
    /// every `every` cycles of each run.
    pub fn with_sampling(tracer: Tracer, every: u64) -> Self {
        TraceSession {
            tracer,
            sample_every: Some(every),
            ..Default::default()
        }
    }

    /// A no-op session: events are discarded and nothing is sampled.
    pub fn disabled() -> Self {
        TraceSession::default()
    }

    /// The shared tracer handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The counter sampling period, when sampling is on.
    pub fn sample_every(&self) -> Option<u64> {
        self.sample_every
    }

    /// Records the observability output of one completed run.
    pub(crate) fn record_run(
        &mut self,
        label: String,
        series: Option<CounterSeries>,
        noc: NocStats,
    ) {
        if let Some(series) = series {
            self.series.push((label.clone(), series));
        }
        self.noc.push((label, noc));
    }

    /// Accumulated `(run label, counter series)` pairs, in run order.
    pub fn series(&self) -> &[(String, CounterSeries)] {
        &self.series
    }

    /// Accumulated `(run label, NoC stats)` pairs, in run order.
    pub fn noc_stats(&self) -> &[(String, NocStats)] {
        &self.noc
    }

    /// Renders every sampled counter series as one CSV with a leading
    /// `run` label column (each run's SoC restarts at cycle 0, so the
    /// label disambiguates the rows).
    pub fn counters_csv(&self) -> String {
        let mut columns = BTreeSet::new();
        for (_, series) in &self.series {
            for row in series.rows() {
                for name in row.snapshot.names() {
                    columns.insert(name.to_string());
                }
            }
        }
        let mut out = String::from("run,cycle");
        for c in &columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, series) in &self.series {
            for row in series.rows() {
                let _ = write!(out, "{label},{}", row.cycle);
                for c in &columns {
                    let _ = write!(out, ",{}", row.snapshot.get(c));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Renders the per-run NoC traffic tables as one human-readable
    /// summary.
    pub fn noc_summary(&self) -> String {
        let mut out = String::new();
        for (label, stats) in &self.noc {
            let _ = writeln!(out, "[{label}]");
            let _ = write!(out, "{stats}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_trace::CounterRegistry;

    #[test]
    fn disabled_session_has_no_output() {
        let s = TraceSession::disabled();
        assert!(!s.tracer().is_enabled());
        assert!(s.sample_every().is_none());
        assert_eq!(s.counters_csv(), "run,cycle\n");
        assert!(s.noc_summary().is_empty());
    }

    #[test]
    fn counters_csv_labels_rows_per_run() {
        let mut s = TraceSession::with_sampling(Tracer::ring_buffer(), 100);
        let mut reg = CounterRegistry::new();
        reg.set("soc.cycles", 100);
        let mut series = CounterSeries::new(100);
        series.record(100, reg.snapshot());
        s.record_run("app p2p".into(), Some(series), NocStats::new());
        let csv = s.counters_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "run,cycle,soc.cycles");
        assert_eq!(lines[1], "app p2p,100,100");
        assert_eq!(s.noc_stats().len(), 1);
    }
}
