//! Observability session shared across traced experiment runs.
//!
//! Each [`AppRun`](crate::experiments::AppRun) builds a fresh SoC, so a
//! figure-level trace needs one handle threaded through every run: the
//! [`TraceSession`] carries the shared [`Tracer`] into each SoC and
//! collects the per-run counter time-series and NoC summaries on the way
//! out. The event stream itself stays in the tracer's sink, ready for
//! [`esp4ml_trace::perfetto`] export (each run opens with a
//! [`esp4ml_trace::TraceEvent::RunStart`] marker so the exporter can
//! split runs into separate process tracks).

use esp4ml_noc::{NocHeatmap, NocStats};
use esp4ml_trace::{
    CounterSeries, ProfileCollector, RingBufferSink, RunProfile, SpanCollector, SpanReport, Tracer,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The complete profiling output of one run: the event-derived
/// [`RunProfile`] plus the link-level NoC heatmap snapshotted from the
/// run's mesh.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Frame-latency histograms, time-in-state utilization and
    /// bottleneck analysis reconstructed from the trace stream.
    pub run: RunProfile,
    /// Per-router, per-link occupancy and credit-stall counters.
    pub heatmap: NocHeatmap,
}

impl ProfileReport {
    /// Renders the bottleneck report followed by the NoC heatmap.
    pub fn render_text(&self) -> String {
        format!("{}{}", self.run.render_text(), self.heatmap.render_ascii())
    }
}

/// Shared observability state for a sequence of experiment runs.
#[derive(Debug, Default)]
pub struct TraceSession {
    tracer: Tracer,
    sample_every: Option<u64>,
    profiler: Option<ProfileCollector>,
    spans: Option<SpanCollector>,
    series: Vec<(String, CounterSeries)>,
    noc: Vec<(String, NocStats)>,
    profiles: Vec<ProfileReport>,
    span_reports: Vec<SpanReport>,
}

impl TraceSession {
    /// A session recording events through `tracer`, without counter
    /// sampling.
    pub fn new(tracer: Tracer) -> Self {
        TraceSession {
            tracer,
            ..Default::default()
        }
    }

    /// A session recording events and sampling the counter registry
    /// every `every` cycles of each run.
    pub fn with_sampling(tracer: Tracer, every: u64) -> Self {
        TraceSession {
            tracer,
            sample_every: Some(every),
            ..Default::default()
        }
    }

    /// A session that profiles every run online: events flow through a
    /// [`ProfileCollector`] into a ring-buffer sink, and each completed
    /// run leaves a [`ProfileReport`] in [`TraceSession::profiles`].
    /// `sample_every` optionally enables counter sampling as well.
    pub fn profiled(sample_every: Option<u64>) -> Self {
        let profiler = ProfileCollector::new();
        TraceSession {
            tracer: profiler.ring_buffer_tracer(),
            sample_every,
            profiler: Some(profiler),
            ..Default::default()
        }
    }

    /// A session that assembles causal frame-level span trees for every
    /// run: events flow through a [`SpanCollector`] (which embeds its own
    /// profiler for critical-path agreement) into a ring-buffer sink, and
    /// each completed run leaves a [`SpanReport`] in
    /// [`TraceSession::span_reports`]. When `profile` is also set, a
    /// [`ProfileCollector`] observes the identical stream first and each
    /// run additionally leaves a [`ProfileReport`].
    pub fn spanned(sample_every: Option<u64>, profile: bool) -> Self {
        let spans = SpanCollector::new();
        if profile {
            let profiler = ProfileCollector::new();
            let sink = profiler.sink(Box::new(spans.sink(Box::<RingBufferSink>::default())));
            TraceSession {
                tracer: Tracer::with_sink(Box::new(sink)),
                sample_every,
                profiler: Some(profiler),
                spans: Some(spans),
                ..Default::default()
            }
        } else {
            TraceSession {
                tracer: spans.ring_buffer_tracer(),
                sample_every,
                spans: Some(spans),
                ..Default::default()
            }
        }
    }

    /// A no-op session: events are discarded and nothing is sampled.
    pub fn disabled() -> Self {
        TraceSession::default()
    }

    /// The shared tracer handle.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The counter sampling period, when sampling is on.
    pub fn sample_every(&self) -> Option<u64> {
        self.sample_every
    }

    /// The online profile collector, when profiling is on.
    pub fn profiler(&self) -> Option<&ProfileCollector> {
        self.profiler.as_ref()
    }

    /// The online span collector, when span assembly is on.
    pub fn span_collector(&self) -> Option<&SpanCollector> {
        self.spans.as_ref()
    }

    /// Records the observability output of one completed run.
    pub(crate) fn record_run(
        &mut self,
        label: String,
        series: Option<CounterSeries>,
        noc: NocStats,
    ) {
        if let Some(series) = series {
            self.series.push((label.clone(), series));
        }
        self.noc.push((label, noc));
    }

    /// Records one completed run's profile.
    pub(crate) fn record_profile(&mut self, profile: ProfileReport) {
        self.profiles.push(profile);
    }

    /// Records one completed run's span report.
    pub(crate) fn record_spans(&mut self, report: SpanReport) {
        self.span_reports.push(report);
    }

    /// Accumulated per-run profile reports, in run order.
    pub fn profiles(&self) -> &[ProfileReport] {
        &self.profiles
    }

    /// Accumulated per-run span reports, in run order.
    pub fn span_reports(&self) -> &[SpanReport] {
        &self.span_reports
    }

    /// Serializes every span report as one enveloped JSON array
    /// (kind `span-reports`, see [`esp4ml_trace::schema`]).
    pub fn span_reports_json(&self) -> String {
        let payload = serde_json::to_value(&self.span_reports).expect("span serialization");
        esp4ml_trace::schema::envelope_json("span-reports", payload)
    }

    /// Renders every span report as human-readable text.
    pub fn span_summary(&self) -> String {
        let mut out = String::new();
        for r in &self.span_reports {
            out.push_str(&r.render_text());
            out.push('\n');
        }
        out
    }

    /// Serializes every profile report as one enveloped JSON array
    /// (kind `profile-reports`, see [`esp4ml_trace::schema`]).
    pub fn profiles_json(&self) -> String {
        let payload = serde_json::to_value(&self.profiles).expect("profile serialization");
        esp4ml_trace::schema::envelope_json("profile-reports", payload)
    }

    /// Renders every profile report as human-readable text.
    pub fn profile_summary(&self) -> String {
        let mut out = String::new();
        for p in &self.profiles {
            out.push_str(&p.render_text());
            out.push('\n');
        }
        out
    }

    /// Accumulated `(run label, counter series)` pairs, in run order.
    pub fn series(&self) -> &[(String, CounterSeries)] {
        &self.series
    }

    /// Accumulated `(run label, NoC stats)` pairs, in run order.
    pub fn noc_stats(&self) -> &[(String, NocStats)] {
        &self.noc
    }

    /// Renders every sampled counter series as one CSV with a leading
    /// `run` label column (each run's SoC restarts at cycle 0, so the
    /// label disambiguates the rows).
    pub fn counters_csv(&self) -> String {
        let mut columns = BTreeSet::new();
        for (_, series) in &self.series {
            for row in series.rows() {
                for name in row.snapshot.names() {
                    columns.insert(name.to_string());
                }
            }
        }
        let mut out = String::from("run,cycle");
        for c in &columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, series) in &self.series {
            for row in series.rows() {
                let _ = write!(out, "{label},{}", row.cycle);
                for c in &columns {
                    let _ = write!(out, ",{}", row.snapshot.get(c));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Renders the per-run NoC traffic tables as one human-readable
    /// summary.
    pub fn noc_summary(&self) -> String {
        let mut out = String::new();
        for (label, stats) in &self.noc {
            let _ = writeln!(out, "[{label}]");
            let _ = write!(out, "{stats}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_trace::CounterRegistry;

    #[test]
    fn disabled_session_has_no_output() {
        let s = TraceSession::disabled();
        assert!(!s.tracer().is_enabled());
        assert!(s.sample_every().is_none());
        assert_eq!(s.counters_csv(), "run,cycle\n");
        assert!(s.noc_summary().is_empty());
    }

    #[test]
    fn counters_csv_labels_rows_per_run() {
        let mut s = TraceSession::with_sampling(Tracer::ring_buffer(), 100);
        let mut reg = CounterRegistry::new();
        reg.set("soc.cycles", 100);
        let mut series = CounterSeries::new(100);
        series.record(100, reg.snapshot());
        s.record_run("app p2p".into(), Some(series), NocStats::new());
        let csv = s.counters_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "run,cycle,soc.cycles");
        assert_eq!(lines[1], "app p2p,100,100");
        assert_eq!(s.noc_stats().len(), 1);
    }
}
