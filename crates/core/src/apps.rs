//! The paper's two SoC instances and four case-study applications (Fig. 6).

use crate::flow::Esp4mlFlow;
use esp4ml_hls::FixedSpec;
use esp4ml_hls4ml::CompileError;
use esp4ml_nn::{accuracy, reconstruction_error, Sequential, TrainConfig, Trainer};
use esp4ml_noc::Coord;
use esp4ml_runtime::Dataflow;
use esp4ml_soc::{NnKernel, Soc, SocBuilder, SocError};
use esp4ml_vision::SvhnGenerator;
use std::error::Error;
use std::fmt;

/// Per-layer reuse factors of the single-tile classifier (SoC-1). Chosen,
/// as the paper does with the `hls4ml tuning` step, so four classifier
/// copies sustain the Night-Vision pipeline throughput.
pub const CLASSIFIER_REUSE: [u64; 5] = [1024, 512, 256, 128, 32];
/// Per-layer reuse factors of the denoising autoencoder (SoC-1).
pub const DENOISER_REUSE: [u64; 3] = [4096, 1024, 8192];
/// Per-layer reuse factors of the multi-tile (split) classifier (SoC-2).
pub const MULTI_TILE_REUSE: [u64; 5] = [2048, 1024, 512, 256, 64];

/// Errors raised while building a case-study SoC.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// HLS4ML compilation failed.
    Compile(CompileError),
    /// SoC integration failed.
    Soc(SocError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "accelerator compilation failed: {e}"),
            BuildError::Soc(e) => write!(f, "soc integration failed: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Compile(e) => Some(e),
            BuildError::Soc(e) => Some(e),
        }
    }
}

impl From<CompileError> for BuildError {
    fn from(e: CompileError) -> Self {
        BuildError::Compile(e)
    }
}

impl From<SocError> for BuildError {
    fn from(e: SocError) -> Self {
        BuildError::Soc(e)
    }
}

/// The two Keras-trained models of the evaluation, plus their quality
/// metrics when training was actually run.
#[derive(Debug, Clone)]
pub struct TrainedModels {
    /// The MLP digit classifier (1024×256×128×64×32×10, dropout 0.2).
    pub classifier: Sequential,
    /// The denoising autoencoder (1024×256×128×1024).
    pub denoiser: Sequential,
    /// Test accuracy of the classifier, if trained (paper: 92 %).
    pub classifier_accuracy: Option<f64>,
    /// Relative reconstruction error of the denoiser, if trained
    /// (paper: 3.1 %).
    pub denoiser_error: Option<f64>,
}

impl TrainedModels {
    /// The paper's architectures with freshly initialized weights — fast
    /// to build, functionally complete (useful for architecture-level
    /// experiments where prediction quality is irrelevant).
    pub fn untrained() -> Self {
        TrainedModels {
            classifier: Sequential::svhn_classifier(),
            denoiser: Sequential::svhn_denoiser(),
            classifier_accuracy: None,
            denoiser_error: None,
        }
    }

    /// Trains both models on the synthetic SVHN-like dataset.
    ///
    /// `samples` controls dataset size and `epochs` the training length;
    /// the defaults used by the benchmark harness (a few thousand samples,
    /// ~10 epochs) reach classifier accuracies in the high-80s/low-90s on
    /// the synthetic task, comparable in spirit to the paper's 92 % on
    /// real SVHN.
    pub fn train(samples: usize, epochs: usize, seed: u64) -> Self {
        let mut gen = SvhnGenerator::new(seed);
        let class_data = gen.classification_dataset(samples);
        let (train_c, test_c) = class_data.split(0.2);
        let mut classifier = Sequential::svhn_classifier();
        Trainer::new(TrainConfig::classifier(epochs)).fit(&mut classifier, &train_c);
        let classifier_accuracy = Some(accuracy(&classifier, &test_c));

        let noise = 0.1;
        let den_data = gen.denoising_dataset(samples.min(2000), noise);
        let (train_d, test_d) = den_data.split(0.2);
        let mut denoiser = Sequential::svhn_denoiser();
        Trainer::new(TrainConfig::autoencoder(epochs)).fit(&mut denoiser, &train_d);
        let denoiser_error = Some(reconstruction_error(&denoiser, &test_d));

        TrainedModels {
            classifier,
            denoiser,
            classifier_accuracy,
            denoiser_error,
        }
    }
}

/// The case-study applications of Fig. 6, with their accelerator
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseApp {
    /// Night-Vision preprocessing feeding the digit classifier, with `nv`
    /// Night-Vision instances and `cl` classifier instances (the paper
    /// evaluates 1NV+1Cl, 4NV+1Cl and 4NV+4Cl).
    NightVisionClassifier {
        /// Night-Vision instances (1..=4).
        nv: usize,
        /// Classifier instances (1, or equal to `nv`).
        cl: usize,
    },
    /// The denoising autoencoder feeding the classifier (1De+1Cl).
    DenoiserClassifier,
    /// The classifier partitioned across five accelerator tiles
    /// ("1Cl split").
    MultiTileClassifier,
}

impl CaseApp {
    /// The three Fig. 7 cluster representatives in paper order, expanded
    /// to every evaluated configuration.
    pub fn all_fig7_configs() -> Vec<CaseApp> {
        vec![
            CaseApp::NightVisionClassifier { nv: 1, cl: 1 },
            CaseApp::NightVisionClassifier { nv: 4, cl: 1 },
            CaseApp::NightVisionClassifier { nv: 4, cl: 4 },
            CaseApp::DenoiserClassifier,
            CaseApp::MultiTileClassifier,
        ]
    }

    /// The configuration label used in Fig. 7 ("4NV+1Cl", "1De+1Cl", …).
    pub fn label(&self) -> String {
        match self {
            CaseApp::NightVisionClassifier { nv, cl } => format!("{nv}NV+{cl}Cl"),
            CaseApp::DenoiserClassifier => "1De+1Cl".to_string(),
            CaseApp::MultiTileClassifier => "1Cl split".to_string(),
        }
    }

    /// The application (cluster) name as in Table I / Fig. 7.
    pub fn app_name(&self) -> &'static str {
        match self {
            CaseApp::NightVisionClassifier { .. } => "NightVision & Classifier",
            CaseApp::DenoiserClassifier => "Denoiser & Classifier",
            CaseApp::MultiTileClassifier => "Multi-tile Classifier",
        }
    }

    /// Which SoC instance hosts the application.
    pub fn soc_id(&self) -> SocId {
        match self {
            CaseApp::MultiTileClassifier => SocId::Soc2,
            _ => SocId::Soc1,
        }
    }

    /// Builds the hosting SoC instance.
    ///
    /// # Errors
    ///
    /// Compilation or integration failures.
    pub fn build_soc(&self, models: &TrainedModels) -> Result<Soc, BuildError> {
        match self.soc_id() {
            SocId::Soc1 => build_soc1(models),
            SocId::Soc2 => build_soc2(models),
        }
    }

    /// The user-level dataflow of the application (device names only; the
    /// floorplan stays hidden, as the paper's runtime guarantees).
    pub fn dataflow(&self) -> Dataflow {
        match *self {
            CaseApp::NightVisionClassifier { nv, cl } => {
                let nvs: Vec<String> = (0..nv).map(|i| format!("nv{i}")).collect();
                let cls: Vec<String> = (0..cl).map(|i| format!("cl{i}")).collect();
                Dataflow {
                    stages: vec![
                        esp4ml_runtime::StageSpec::new(nvs),
                        esp4ml_runtime::StageSpec::new(cls),
                    ],
                }
            }
            CaseApp::DenoiserClassifier => Dataflow::linear(&[&["denoiser"], &["cl_de"]]),
            CaseApp::MultiTileClassifier => Dataflow::linear(&[
                &["cls_l0"],
                &["cls_l1"],
                &["cls_l2"],
                &["cls_l3"],
                &["cls_l4"],
            ]),
        }
    }

    /// Generates one input frame (image) for this application plus its
    /// ground-truth label: darkened images for Night-Vision, noisy images
    /// for the denoiser, clean images for the plain classifier.
    pub fn input_frame(&self, gen: &mut SvhnGenerator) -> (Vec<f32>, usize) {
        let sample = gen.sample();
        let image = match self {
            CaseApp::NightVisionClassifier { .. } => SvhnGenerator::darken(&sample.image, 0.25),
            CaseApp::DenoiserClassifier => gen.add_noise(&sample.image, 0.1),
            CaseApp::MultiTileClassifier => sample.image,
        };
        (image, sample.label)
    }
}

/// Which of the two evaluated SoC instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocId {
    /// Hosts Night-Vision ×4, classifier ×4 and the denoiser.
    Soc1,
    /// Hosts the five-tile split classifier.
    Soc2,
}

/// Encodes a `[0, 1]` float image into the 16-bit fixed-point wire values
/// the accelerators exchange.
pub fn encode_image(image: &[f32]) -> Vec<u64> {
    let spec = FixedSpec::HLS4ML_DEFAULT;
    image
        .iter()
        .map(|&v| (spec.quantize(v as f64) as u64) & 0xffff)
        .collect()
}

/// Decodes 16-bit fixed-point wire values back to floats.
pub fn decode_values(values: &[u64]) -> Vec<f32> {
    let spec = FixedSpec::HLS4ML_DEFAULT;
    values
        .iter()
        .map(|&v| {
            let signed = ((v << 48) as i64) >> 48;
            spec.dequantize(signed) as f32
        })
        .collect()
}

/// Argmax of decoded logits.
pub fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

/// Builds SoC-1: one Ariane processor tile, one memory tile, one auxiliary
/// tile, four Night-Vision accelerators, five classifier copies and the
/// denoiser on a 5×3 mesh — ten accelerators, matching "up to ten" in §VI.
///
/// # Errors
///
/// Compilation or integration failures.
pub fn build_soc1(models: &TrainedModels) -> Result<Soc, BuildError> {
    let flow = Esp4mlFlow::new();
    let mut b = SocBuilder::new(5, 3)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0))
        .auxiliary(Coord::new(2, 0));
    let nv_coords = [
        Coord::new(3, 0),
        Coord::new(4, 0),
        Coord::new(0, 1),
        Coord::new(1, 1),
    ];
    for (i, &c) in nv_coords.iter().enumerate() {
        b = b.accelerator(c, Box::new(flow.vision_accelerator(&format!("nv{i}"))));
    }
    // Each Night-Vision instance has its classifier nearby (p2p pairs).
    let cl_coords = [
        Coord::new(2, 1),
        Coord::new(3, 1),
        Coord::new(4, 1),
        Coord::new(0, 2),
    ];
    // All classifier copies share a kind (same compiled network), so the
    // runtime can fail over between them when one breaks.
    for (i, &c) in cl_coords.iter().enumerate() {
        let kernel = flow
            .ml_accelerator(&models.classifier, &format!("cl{i}"), &CLASSIFIER_REUSE)?
            .with_kind("svhn_classifier");
        b = b.accelerator(c, Box::new(kernel));
    }
    let denoiser = flow
        .ml_accelerator(&models.denoiser, "denoiser", &DENOISER_REUSE)?
        .with_kind("svhn_denoiser");
    b = b.accelerator(Coord::new(1, 2), Box::new(denoiser));
    // The denoiser pipeline has its own downstream classifier tile (Fig. 6
    // maps the De→Cl chain onto dedicated tiles), bringing SoC-1 to the
    // paper's "up to ten" accelerators.
    let cl_de = flow
        .ml_accelerator(&models.classifier, "cl_de", &CLASSIFIER_REUSE)?
        .with_kind("svhn_classifier");
    b = b.accelerator(Coord::new(2, 2), Box::new(cl_de));
    Ok(b.build()?)
}

/// Builds SoC-2: the classifier partitioned across five accelerator tiles
/// on a 3×3 mesh.
///
/// # Errors
///
/// Compilation or integration failures.
pub fn build_soc2(models: &TrainedModels) -> Result<Soc, BuildError> {
    let flow = Esp4mlFlow::new();
    let nn = flow.compile_ml(&models.classifier, "cls", &MULTI_TILE_REUSE)?;
    let parts = nn.split_layers();
    let coords = [
        Coord::new(2, 0),
        Coord::new(0, 1),
        Coord::new(1, 1),
        Coord::new(2, 1),
        Coord::new(0, 2),
    ];
    let mut b = SocBuilder::new(3, 3)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0))
        .auxiliary(Coord::new(1, 2));
    for (part, &c) in parts.into_iter().zip(coords.iter()) {
        b = b.accelerator(c, Box::new(NnKernel::new(part)));
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soc1_hosts_ten_accelerators() {
        let soc = build_soc1(&TrainedModels::untrained()).unwrap();
        assert_eq!(soc.accel_coords().len(), 10);
        assert!(soc.accel_by_name("nv3").is_some());
        assert!(soc.accel_by_name("cl0").is_some());
        assert!(soc.accel_by_name("denoiser").is_some());
    }

    #[test]
    fn soc2_hosts_five_layer_tiles() {
        let soc = build_soc2(&TrainedModels::untrained()).unwrap();
        assert_eq!(soc.accel_coords().len(), 5);
        for i in 0..5 {
            assert!(soc.accel_by_name(&format!("cls_l{i}")).is_some(), "l{i}");
        }
    }

    #[test]
    fn dataflows_validate() {
        for app in CaseApp::all_fig7_configs() {
            assert!(app.dataflow().validate().is_ok(), "{}", app.label());
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(
            CaseApp::NightVisionClassifier { nv: 4, cl: 1 }.label(),
            "4NV+1Cl"
        );
        assert_eq!(CaseApp::DenoiserClassifier.label(), "1De+1Cl");
        assert_eq!(CaseApp::MultiTileClassifier.label(), "1Cl split");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let img = vec![0.0f32, 0.25, 0.5, 1.0];
        let decoded = decode_values(&encode_image(&img));
        for (a, b) in img.iter().zip(&decoded) {
            assert!((a - b).abs() < 1.0 / 1024.0 + 1e-6);
        }
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
    }

    #[test]
    fn input_frames_match_app_character() {
        let mut gen = SvhnGenerator::new(1);
        let (dark, _) = CaseApp::NightVisionClassifier { nv: 1, cl: 1 }.input_frame(&mut gen);
        let mean: f32 = dark.iter().sum::<f32>() / dark.len() as f32;
        assert!(mean < 0.2, "darkened mean {mean}");
        let (clean, label) = CaseApp::MultiTileClassifier.input_frame(&mut gen);
        assert!(label < 10);
        let mean_clean: f32 = clean.iter().sum::<f32>() / clean.len() as f32;
        assert!(mean_clean > mean);
    }

    #[test]
    fn untrained_models_have_paper_dims() {
        let m = TrainedModels::untrained();
        assert_eq!(m.classifier.dims(), vec![1024, 256, 128, 64, 32, 10]);
        assert_eq!(m.denoiser.dims(), vec![1024, 256, 128, 1024]);
        assert!(m.classifier_accuracy.is_none());
    }
}

impl CaseApp {
    /// Renders the application's dataflow and SoC mapping as text — the
    /// Fig. 6 analog.
    pub fn describe(&self) -> String {
        let df = self.dataflow();
        let mut out = format!(
            "{} ({}) on {:?}\n",
            self.app_name(),
            self.label(),
            self.soc_id()
        );
        let arrow = "\n      │\n      ▼\n";
        let stages: Vec<String> = df
            .stages
            .iter()
            .map(|s| format!("  [ {} ]", s.devices.join(" | ")))
            .collect();
        out.push_str("  [ input frames (DRAM) ]");
        out.push_str(arrow);
        out.push_str(&stages.join(arrow));
        out.push_str(arrow);
        out.push_str("  [ labels / output (DRAM) ]\n");
        out
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;

    #[test]
    fn describe_lists_every_stage_device() {
        let app = CaseApp::NightVisionClassifier { nv: 4, cl: 1 };
        let text = app.describe();
        for dev in ["nv0", "nv1", "nv2", "nv3", "cl0"] {
            assert!(text.contains(dev), "missing {dev} in:\n{text}");
        }
        assert!(text.contains("Soc1"));
    }

    #[test]
    fn describe_multi_tile_shows_five_stages() {
        let text = CaseApp::MultiTileClassifier.describe();
        assert_eq!(text.matches("cls_l").count(), 5);
    }
}
