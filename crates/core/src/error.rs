//! The workspace-level error type.
//!
//! Every substrate crate defines its own focused error enum
//! ([`esp4ml_noc::NocError`], [`esp4ml_soc::SocError`],
//! [`esp4ml_runtime::RuntimeError`], …), all marked `#[non_exhaustive]`
//! so variants can grow without breaking downstream matches. Application
//! code that drives the whole flow — examples, benches, integration
//! tests — crosses several of those boundaries in one function;
//! [`Esp4mlError`] is the single type such code can bubble everything
//! into with `?`.

use crate::apps::BuildError;
use crate::experiments::ExperimentError;
use esp4ml_hls4ml::CompileError;
use esp4ml_mem::AllocError;
use esp4ml_noc::NocError;
use esp4ml_runtime::RuntimeError;
use esp4ml_soc::SocError;
use std::error::Error;
use std::fmt;

/// Any error the ESP4ML reproduction can produce, one layer per variant.
#[derive(Debug)]
#[non_exhaustive]
pub enum Esp4mlError {
    /// Network-on-chip configuration or injection failure.
    Noc(NocError),
    /// SoC construction or register/DMA access failure.
    Soc(SocError),
    /// Contiguous-buffer allocation failure.
    Alloc(AllocError),
    /// Runtime (`esp_alloc`/`esp_run`) failure.
    Runtime(RuntimeError),
    /// HLS4ML model compilation failure.
    Compile(CompileError),
    /// Case-study SoC assembly failure.
    Build(BuildError),
    /// Experiment-driver failure.
    Experiment(ExperimentError),
    /// Anything else (I/O, serialization) from application code.
    Other(String),
}

impl fmt::Display for Esp4mlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Esp4mlError::Noc(e) => write!(f, "noc: {e}"),
            Esp4mlError::Soc(e) => write!(f, "soc: {e}"),
            Esp4mlError::Alloc(e) => write!(f, "alloc: {e}"),
            Esp4mlError::Runtime(e) => write!(f, "runtime: {e}"),
            Esp4mlError::Compile(e) => write!(f, "compile: {e}"),
            Esp4mlError::Build(e) => write!(f, "build: {e}"),
            Esp4mlError::Experiment(e) => write!(f, "experiment: {e}"),
            Esp4mlError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for Esp4mlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Esp4mlError::Noc(e) => Some(e),
            Esp4mlError::Soc(e) => Some(e),
            Esp4mlError::Alloc(e) => Some(e),
            Esp4mlError::Runtime(e) => Some(e),
            Esp4mlError::Compile(e) => Some(e),
            Esp4mlError::Build(e) => Some(e),
            Esp4mlError::Experiment(e) => Some(e),
            Esp4mlError::Other(_) => None,
        }
    }
}

impl From<NocError> for Esp4mlError {
    fn from(e: NocError) -> Self {
        Esp4mlError::Noc(e)
    }
}

impl From<SocError> for Esp4mlError {
    fn from(e: SocError) -> Self {
        Esp4mlError::Soc(e)
    }
}

impl From<AllocError> for Esp4mlError {
    fn from(e: AllocError) -> Self {
        Esp4mlError::Alloc(e)
    }
}

impl From<RuntimeError> for Esp4mlError {
    fn from(e: RuntimeError) -> Self {
        Esp4mlError::Runtime(e)
    }
}

impl From<CompileError> for Esp4mlError {
    fn from(e: CompileError) -> Self {
        Esp4mlError::Compile(e)
    }
}

impl From<BuildError> for Esp4mlError {
    fn from(e: BuildError) -> Self {
        Esp4mlError::Build(e)
    }
}

impl From<ExperimentError> for Esp4mlError {
    fn from(e: ExperimentError) -> Self {
        Esp4mlError::Experiment(e)
    }
}

impl From<std::io::Error> for Esp4mlError {
    fn from(e: std::io::Error) -> Self {
        Esp4mlError::Other(format!("io: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_converts_with_question_mark() {
        fn noc() -> Result<(), Esp4mlError> {
            Err(NocError::EmptyPayload)?;
            Ok(())
        }
        fn runtime() -> Result<(), Esp4mlError> {
            Err(RuntimeError::Timeout {
                cycles: 1,
                diagnosis: None,
            })?;
            Ok(())
        }
        assert!(matches!(noc().unwrap_err(), Esp4mlError::Noc(_)));
        assert!(matches!(runtime().unwrap_err(), Esp4mlError::Runtime(_)));
        let msg = format!("{}", runtime().unwrap_err());
        assert!(msg.starts_with("runtime:"), "{msg}");
    }
}
