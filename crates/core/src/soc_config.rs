//! Declarative SoC configuration files: the `.esp_config` analog.
//!
//! The ESP graphical configuration interface lets designers "pick the
//! location of each accelerator in the SoC"; the resulting configuration
//! drives SoC generation. This module provides the same capability as a
//! JSON document: a floorplan of typed tiles that [`SocConfigFile::build`]
//! turns into a running [`Soc`], compiling ML accelerators on the way.
//!
//! # Example
//!
//! ```
//! use esp4ml::soc_config::{SocConfigFile, TileSpec, TileSpecKind, MlModelRef};
//! use esp4ml::apps::TrainedModels;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let json = r#"{
//!   "name": "demo", "cols": 2, "rows": 2, "clock_mhz": 78.0,
//!   "tiles": [
//!     { "x": 0, "y": 0, "kind": { "type": "processor" } },
//!     { "x": 1, "y": 0, "kind": { "type": "memory" } },
//!     { "x": 0, "y": 1, "kind": { "type": "night_vision", "name": "nv0" } }
//!   ]
//! }"#;
//! let config = SocConfigFile::from_json(json)?;
//! let soc = config.build(&TrainedModels::untrained())?;
//! assert!(soc.accel_by_name("nv0").is_some());
//! # Ok(())
//! # }
//! ```

use crate::apps::{BuildError, TrainedModels};
use crate::flow::Esp4mlFlow;
use esp4ml_hls4ml::{Hls4mlCompiler, Hls4mlConfig};
use esp4ml_noc::Coord;
use esp4ml_soc::{NnKernel, Soc, SocBuilder};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Which trained model an ML accelerator tile hosts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "source", rename_all = "snake_case")]
pub enum MlModelRef {
    /// The SVHN digit classifier from the in-memory [`TrainedModels`].
    Classifier,
    /// The denoising autoencoder from the in-memory [`TrainedModels`].
    Denoiser,
    /// A serialized `(model.json, weights)` pair on disk.
    Files {
        /// Path to the topology JSON.
        topology: PathBuf,
        /// Path to the binary weight blob.
        weights: PathBuf,
    },
}

/// What a configured tile contains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum TileSpecKind {
    /// Processor tile (Ariane).
    Processor,
    /// Memory tile (default DRAM configuration).
    Memory,
    /// Auxiliary tile.
    Auxiliary,
    /// A Night-Vision accelerator (SystemC/Stratus path).
    NightVision {
        /// Device name.
        name: String,
    },
    /// An HLS4ML-compiled ML accelerator.
    MlModel {
        /// Device name.
        name: String,
        /// Which model to compile.
        model: MlModelRef,
        /// Per-layer reuse factors (empty = global 64).
        #[serde(default)]
        reuse: Vec<u64>,
    },
}

/// One placed tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileSpec {
    /// Column.
    pub x: u8,
    /// Row.
    pub y: u8,
    /// Contents.
    pub kind: TileSpecKind,
    /// Declared PLM budget of an accelerator tile, in 64-bit words
    /// (`None` = unconstrained). `esp4ml-check` verifies the model's
    /// buffer footprint fits (`E0304`).
    #[serde(default)]
    pub plm_words: Option<u64>,
}

impl TileSpec {
    /// A tile at `(x, y)` with no declared PLM budget.
    pub fn new(x: u8, y: u8, kind: TileSpecKind) -> Self {
        TileSpec {
            x,
            y,
            kind,
            plm_words: None,
        }
    }

    /// Declares the tile's PLM budget in words (builder style).
    pub fn with_plm_words(mut self, words: u64) -> Self {
        self.plm_words = Some(words);
        self
    }
}

/// A complete SoC configuration document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocConfigFile {
    /// Design name.
    pub name: String,
    /// Mesh columns.
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Placed tiles.
    pub tiles: Vec<TileSpec>,
}

impl SocConfigFile {
    /// Parses a configuration from JSON.
    ///
    /// # Errors
    ///
    /// Malformed JSON.
    pub fn from_json(json: &str) -> Result<SocConfigFile, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Renders the configuration as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Builds the SoC: compiles every ML accelerator, instantiates the
    /// Night-Vision kernels and assembles the floorplan.
    ///
    /// # Errors
    ///
    /// Compilation failures (including model-file loading) and floorplan
    /// violations.
    pub fn build(&self, models: &TrainedModels) -> Result<Soc, BuildError> {
        let flow = Esp4mlFlow::new();
        let mut b = SocBuilder::new(self.cols, self.rows).clock_mhz(self.clock_mhz);
        for tile in &self.tiles {
            let coord = Coord::new(tile.x, tile.y);
            b = match &tile.kind {
                TileSpecKind::Processor => b.processor(coord),
                TileSpecKind::Memory => b.memory(coord),
                TileSpecKind::Auxiliary => b.auxiliary(coord),
                TileSpecKind::NightVision { name } => {
                    b.accelerator(coord, Box::new(flow.vision_accelerator(name)))
                }
                TileSpecKind::MlModel { name, model, reuse } => {
                    let nn = match model {
                        MlModelRef::Classifier => {
                            flow.compile_ml(&models.classifier, name, &normalize(reuse))?
                        }
                        MlModelRef::Denoiser => {
                            flow.compile_ml(&models.denoiser, name, &normalize(reuse))?
                        }
                        MlModelRef::Files { topology, weights } => {
                            let cfg = if reuse.is_empty() {
                                Hls4mlConfig::with_reuse(64).named(name)
                            } else {
                                Hls4mlConfig::with_reuse(reuse.iter().copied().max().unwrap_or(64))
                                    .named(name)
                                    .with_per_layer_reuse(reuse.clone())
                            };
                            Hls4mlCompiler::compile_files(topology, weights, &cfg)?
                        }
                    };
                    b.accelerator(coord, Box::new(NnKernel::new(nn)))
                }
            };
        }
        Ok(b.build()?)
    }

    /// The canonical SoC-1 configuration (Night-Vision ×4, classifier ×5,
    /// denoiser), equivalent to [`crate::apps::build_soc1`].
    pub fn soc1() -> SocConfigFile {
        let ml = |name: &str, model: MlModelRef, reuse: &[u64]| TileSpecKind::MlModel {
            name: name.to_string(),
            model,
            reuse: reuse.to_vec(),
        };
        let mut tiles = vec![
            TileSpec::new(0, 0, TileSpecKind::Processor),
            TileSpec::new(1, 0, TileSpecKind::Memory),
            TileSpec::new(2, 0, TileSpecKind::Auxiliary),
        ];
        for (i, (x, y)) in [(3u8, 0u8), (4, 0), (0, 1), (1, 1)].into_iter().enumerate() {
            tiles.push(TileSpec::new(
                x,
                y,
                TileSpecKind::NightVision {
                    name: format!("nv{i}"),
                },
            ));
        }
        for (i, (x, y)) in [(2u8, 1u8), (3, 1), (4, 1), (0, 2)].into_iter().enumerate() {
            tiles.push(TileSpec::new(
                x,
                y,
                ml(
                    &format!("cl{i}"),
                    MlModelRef::Classifier,
                    &crate::apps::CLASSIFIER_REUSE,
                ),
            ));
        }
        tiles.push(TileSpec::new(
            1,
            2,
            ml(
                "denoiser",
                MlModelRef::Denoiser,
                &crate::apps::DENOISER_REUSE,
            ),
        ));
        tiles.push(TileSpec::new(
            2,
            2,
            ml(
                "cl_de",
                MlModelRef::Classifier,
                &crate::apps::CLASSIFIER_REUSE,
            ),
        ));
        SocConfigFile {
            name: "esp4ml-soc1".into(),
            cols: 5,
            rows: 3,
            clock_mhz: 78.0,
            tiles,
        }
    }
}

fn normalize(reuse: &[u64]) -> Vec<u64> {
    if reuse.is_empty() {
        vec![64]
    } else {
        reuse.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let cfg = SocConfigFile::soc1();
        let json = cfg.to_json();
        let back = SocConfigFile::from_json(&json).expect("parses");
        assert_eq!(back, cfg);
    }

    #[test]
    fn soc1_config_builds_equivalent_floorplan() {
        let models = TrainedModels::untrained();
        let from_config = SocConfigFile::soc1().build(&models).expect("builds");
        let direct = crate::apps::build_soc1(&models).expect("builds");
        let mut a = from_config.accel_coords();
        let mut b = direct.accel_coords();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        for name in ["nv0", "cl3", "denoiser", "cl_de"] {
            assert_eq!(from_config.accel_by_name(name), direct.accel_by_name(name));
        }
    }

    #[test]
    fn bad_floorplan_is_rejected_at_build() {
        let mut cfg = SocConfigFile::soc1();
        cfg.tiles.push(TileSpec::new(0, 0, TileSpecKind::Auxiliary));
        assert!(cfg.build(&TrainedModels::untrained()).is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(SocConfigFile::from_json("{not json").is_err());
        assert!(SocConfigFile::from_json("{}").is_err());
    }
}
