//! The ESP4ML design flow: model → accelerator → SoC (Fig. 3).

use esp4ml_hls::{FpgaDevice, PowerEstimate, PowerModel};
use esp4ml_hls4ml::{
    AcceleratorDescriptor, CompileError, CompiledNn, Hls4mlCompiler, Hls4mlConfig,
};
use esp4ml_nn::Sequential;
use esp4ml_soc::{NnKernel, Soc};
use esp4ml_vision::NightVisionKernel;

/// The front door of the ESP4ML flow.
///
/// `Esp4mlFlow` packages the two accelerator design paths of the paper's
/// Fig. 3 — the HLS4ML path for ML kernels (left) and the SystemC/Stratus
/// path for generic kernels (right) — plus the reporting glue (power,
/// utilization) used by the evaluation.
#[derive(Debug, Clone)]
pub struct Esp4mlFlow {
    /// Target FPGA device for utilization reporting.
    pub device: FpgaDevice,
    /// Power model (the Vivado power-report analog).
    pub power: PowerModel,
}

impl Esp4mlFlow {
    /// A flow targeting the paper's Ultrascale+ class device.
    pub fn new() -> Self {
        Esp4mlFlow {
            device: FpgaDevice::xcvu9p(),
            power: PowerModel::default(),
        }
    }

    /// The ML path: compiles a trained model into an accelerator kernel
    /// ready for an ESP tile, with per-layer reuse factors.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the HLS4ML stage.
    pub fn ml_accelerator(
        &self,
        model: &Sequential,
        name: &str,
        per_layer_reuse: &[u64],
    ) -> Result<NnKernel, CompileError> {
        let nn = self.compile_ml(model, name, per_layer_reuse)?;
        Ok(NnKernel::new(nn))
    }

    /// The ML path up to the compiled network (kept separate so callers
    /// can split it across tiles with [`CompiledNn::split_layers`]).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the HLS4ML stage.
    pub fn compile_ml(
        &self,
        model: &Sequential,
        name: &str,
        per_layer_reuse: &[u64],
    ) -> Result<CompiledNn, CompileError> {
        let config = Hls4mlConfig::with_reuse(per_layer_reuse.iter().copied().max().unwrap_or(64))
            .named(name)
            .with_per_layer_reuse(per_layer_reuse.to_vec());
        Hls4mlCompiler::compile(model, &config)
    }

    /// The generic-kernel path: the Night-Vision accelerator designed in
    /// SystemC and synthesized with Stratus HLS.
    pub fn vision_accelerator(&self, name: &str) -> NightVisionKernel {
        NightVisionKernel::new(name)
    }

    /// The integration descriptor (`acc.xml` analog) for a compiled
    /// network.
    pub fn descriptor(&self, nn: &CompiledNn) -> AcceleratorDescriptor {
        AcceleratorDescriptor::for_nn(nn)
    }

    /// Vivado-style dynamic power estimate for a built SoC.
    pub fn estimate_power(&self, soc: &Soc) -> PowerEstimate {
        self.power
            .estimate(soc.resources(), soc.clock_hz() / 1.0e6, 1.0)
    }

    /// Utilization of a built SoC against the flow's target device, as
    /// percentages (the Table I resource rows).
    pub fn utilization(&self, soc: &Soc) -> esp4ml_hls::Utilization {
        soc.resources().utilization(&self.device)
    }
}

impl Default for Esp4mlFlow {
    fn default() -> Self {
        Esp4mlFlow::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_nn::{Activation, LayerSpec};
    use esp4ml_soc::AcceleratorKernel;

    fn tiny_model() -> Sequential {
        let mut m = Sequential::with_seed(16, 4);
        m.push(LayerSpec::dense(8, Activation::Relu));
        m.push(LayerSpec::dense(4, Activation::Softmax));
        m
    }

    #[test]
    fn ml_path_produces_kernel() {
        let flow = Esp4mlFlow::new();
        let k = flow.ml_accelerator(&tiny_model(), "clf", &[16, 8]).unwrap();
        assert_eq!(k.name(), "clf");
        assert_eq!(k.input_values(), 16);
        assert_eq!(k.output_values(), 4);
    }

    #[test]
    fn split_path_matches_monolithic() {
        let flow = Esp4mlFlow::new();
        let nn = flow.compile_ml(&tiny_model(), "clf", &[16, 8]).unwrap();
        let parts = nn.split_layers();
        assert_eq!(parts.len(), 2);
        let x = vec![0.25f32; 16];
        let whole = nn.infer(&x);
        let mut staged = x;
        for p in &parts {
            staged = p.infer(&staged);
        }
        assert_eq!(whole, staged);
    }

    #[test]
    fn vision_path_produces_kernel() {
        let flow = Esp4mlFlow::new();
        let k = flow.vision_accelerator("nv");
        assert_eq!(k.input_values(), 1024);
    }

    #[test]
    fn descriptor_has_p2p_register() {
        let flow = Esp4mlFlow::new();
        let nn = flow.compile_ml(&tiny_model(), "clf", &[16, 8]).unwrap();
        let d = flow.descriptor(&nn);
        assert!(d.registers.iter().any(|r| r.name == "P2P_REG"));
    }
}

/// Automatic reuse-factor selection (the `hls4ml tuning` arrow of Fig. 3).
impl Esp4mlFlow {
    /// Chooses per-layer reuse factors so every dense layer meets the
    /// initiation-interval target `target_ii` (cycles/inference): each
    /// layer gets the *largest* reuse factor (fewest multipliers) that
    /// still reaches the target, clamped to its multiplication count.
    ///
    /// # Panics
    ///
    /// Panics if `target_ii` is zero.
    pub fn tune_reuse(&self, model: &Sequential, target_ii: u64) -> Vec<u64> {
        assert!(target_ii > 0, "target II must be positive");
        model
            .dense_layers()
            .iter()
            .map(|l| {
                let ops = (l.n_in() * l.n_out()) as u64;
                target_ii.min(ops).max(1)
            })
            .collect()
    }

    /// Compiles a model with reuse factors tuned for a frames-per-second
    /// target at the flow's SoC clock: the full `hls4ml tuning` loop.
    ///
    /// The cycle budget per frame is `clock / target_fps`, split evenly
    /// across the dense layers (the wrapper runs them as a dataflow chain,
    /// so one frame costs roughly the *sum* of layer IIs).
    ///
    /// # Errors
    ///
    /// Propagates compilation failures.
    ///
    /// # Panics
    ///
    /// Panics if `target_fps` or `clock_hz` is not positive.
    pub fn compile_ml_for_fps(
        &self,
        model: &Sequential,
        name: &str,
        target_fps: f64,
        clock_hz: f64,
    ) -> Result<CompiledNn, CompileError> {
        assert!(
            target_fps > 0.0 && clock_hz > 0.0,
            "targets must be positive"
        );
        let budget = (clock_hz / target_fps) as u64;
        let layers = model.dense_layers().len().max(1) as u64;
        let per_layer = (budget / layers).max(1);
        let reuse = self.tune_reuse(model, per_layer);
        self.compile_ml(model, name, &reuse)
    }
}

#[cfg(test)]
mod tuning_tests {
    use super::*;
    use esp4ml_nn::Sequential;

    #[test]
    fn tuned_layers_meet_the_ii_target() {
        let flow = Esp4mlFlow::new();
        let model = Sequential::svhn_classifier();
        let reuse = flow.tune_reuse(&model, 2048);
        let nn = flow.compile_ml(&model, "t", &reuse).expect("compiles");
        assert!(nn.initiation_interval() <= 2048);
        // Small layers are fully folded (reuse = ops), not over-parallel.
        assert_eq!(*reuse.last().expect("layers"), 320); // 32x10 layer
    }

    #[test]
    fn fps_tuning_brackets_the_target() {
        let flow = Esp4mlFlow::new();
        let model = Sequential::svhn_classifier();
        let clock = 78.0e6;
        for fps in [5_000.0f64, 20_000.0, 60_000.0] {
            let nn = flow
                .compile_ml_for_fps(&model, "t", fps, clock)
                .expect("compiles");
            let achieved = clock / nn.latency() as f64;
            assert!(
                achieved >= fps * 0.8,
                "target {fps} f/s, achieved {achieved:.0} (latency {})",
                nn.latency()
            );
        }
    }

    #[test]
    fn faster_targets_cost_more_dsps() {
        let flow = Esp4mlFlow::new();
        let model = Sequential::svhn_classifier();
        let slow = flow
            .compile_ml_for_fps(&model, "s", 2_000.0, 78.0e6)
            .expect("compiles");
        let fast = flow
            .compile_ml_for_fps(&model, "f", 50_000.0, 78.0e6)
            .expect("compiles");
        assert!(fast.resources().dsps > slow.resources().dsps);
    }
}
