//! # ESP4ML: platform-based design of SoCs for embedded machine learning
//!
//! A full reproduction, in simulation, of the ESP4ML system-level design
//! flow (Giri, Chiu, Di Guglielmo, Mantovani, Carloni — DATE 2020): an
//! open-source flow that builds and programs SoC architectures hosting
//! *reconfigurable pipelines* of machine-learning and computer-vision
//! accelerators, connected by efficient point-to-point (p2p)
//! communication over a multi-plane network-on-chip.
//!
//! The flow mirrors Fig. 3 of the paper end-to-end:
//!
//! 1. **Train** an ML model with the Keras-analog [`esp4ml_nn`] crate
//!    (MLP classifier, denoising autoencoder) on the synthetic SVHN-like
//!    dataset from [`esp4ml_vision`].
//! 2. **Compile** it with the HLS4ML-analog [`esp4ml_hls4ml`] crate:
//!    16-bit fixed-point quantization, reuse-factor parallelization, HLS
//!    latency/resource estimation.
//! 3. **Integrate** the generated accelerators — plus SystemC-style
//!    vision kernels — into an ESP SoC instance ([`esp4ml_soc`]): tile
//!    floorplan, sockets with DMA/TLB, `LOCATION_REG`/`P2P_REG`, and the
//!    receiver-initiated p2p platform service.
//! 4. **Run** embedded applications through the Linux-analog runtime
//!    ([`esp4ml_runtime`]): `esp_alloc`, a user-specified dataflow, and
//!    `esp_run` in serial, pipelined, or p2p mode.
//!
//! The [`apps`] module instantiates the paper's two SoCs and four
//! case-study applications (Fig. 6); [`experiments`] regenerates every
//! table and figure of the evaluation (Table I, Fig. 7, Fig. 8).
//!
//! # Quickstart
//!
//! ```
//! use esp4ml::apps::{CaseApp, TrainedModels};
//! use esp4ml::experiments::AppRun;
//! use esp4ml_runtime::ExecMode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Untrained weights keep the doctest fast; see `TrainedModels::train`.
//! let models = TrainedModels::untrained();
//! let app = CaseApp::DenoiserClassifier;
//! let run = AppRun::execute(&app, &models, 4, ExecMode::P2p)?;
//! assert_eq!(run.metrics.frames, 4);
//! assert!(run.metrics.frames_per_second() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod check;
pub mod deploy;
pub mod error;
pub mod experiments;
pub mod faults;
pub mod flow;
pub mod observe;
pub mod soc_config;

pub use apps::{CaseApp, TrainedModels};
pub use error::Esp4mlError;
pub use faults::{lint_fault_plan, CampaignReport, FaultConfig};
pub use flow::Esp4mlFlow;
pub use observe::{ProfileReport, TraceSession};

// Re-export the substrate crates under one roof, as the public surface of
// the reproduction.
pub use esp4ml_baseline as baseline;
pub use esp4ml_fault as fault;
pub use esp4ml_hls as hls;
pub use esp4ml_hls4ml as hls4ml;
pub use esp4ml_mem as mem;
pub use esp4ml_nn as nn;
pub use esp4ml_noc as noc;
pub use esp4ml_runtime as runtime;
pub use esp4ml_soc as soc;
pub use esp4ml_trace as trace;
pub use esp4ml_vision as vision;
