//! Ablation: memory-tile interleaving granularity. With two memory tiles,
//! the block size of the interleaved address map decides whether a DMA
//! burst is serviced by one tile (page-sized blocks) or striped across
//! both (small blocks). Striping halves per-tile queueing at the cost of
//! more, shorter bursts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esp4ml_noc::Coord;
use esp4ml_soc::{AccelConfig, ScaleKernel, SocBuilder};

fn run(mem_tiles: usize, frames: u64) -> (u64, u64) {
    let mut b = SocBuilder::new(3, 2)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0));
    if mem_tiles == 2 {
        b = b.memory(Coord::new(2, 0));
    }
    let mut soc = b
        .accelerator(
            Coord::new(0, 1),
            Box::new(ScaleKernel::new("a", 2048, 2).with_cycles_per_value(0)),
        )
        .accelerator(
            Coord::new(1, 1),
            Box::new(ScaleKernel::new("b", 2048, 3).with_cycles_per_value(0)),
        )
        .build()
        .expect("valid floorplan");
    let (a, bq) = (Coord::new(0, 1), Coord::new(1, 1));
    for f in 0..frames {
        soc.dram_write_values(f * 512, &vec![5; 2048], 16)
            .expect("init");
        soc.dram_write_values((f + 64) * 512, &vec![9; 2048], 16)
            .expect("init");
    }
    for t in [a, bq] {
        soc.map_contiguous(t, 0, 1 << 20).expect("map");
    }
    // Two independent accelerators hammering memory concurrently.
    soc.configure_accel(a, &AccelConfig::dma_to_dma(0, 256 * 512, frames))
        .expect("configure");
    soc.configure_accel(bq, &AccelConfig::dma_to_dma(64 * 512, 320 * 512, frames))
        .expect("configure");
    let start = soc.cycle();
    soc.start_accel(a).expect("start");
    soc.start_accel(bq).expect("start");
    assert!(soc.run_until_idle(100_000_000).is_idle());
    (soc.cycle() - start, soc.stats().dram_accesses())
}

fn bench_interleave(c: &mut Criterion) {
    for tiles in [1usize, 2] {
        let (cycles, dram) = run(tiles, 8);
        println!(
            "{tiles} memory tile(s): {cycles:>7} cycles, {dram:>6} DRAM word accesses \
             (two accelerators, 8 frames each)"
        );
    }
    let mut group = c.benchmark_group("ablation_interleave");
    group.sample_size(10);
    for tiles in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{tiles}mem")),
            &tiles,
            |b, &t| b.iter(|| run(t, 4)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interleave);
criterion_main!(benches);
