//! Criterion bench for the Fig. 8 measurement path: DRAM-access counting
//! with and without p2p on the Denoiser + Classifier application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esp4ml::apps::{CaseApp, TrainedModels};
use esp4ml::experiments::AppRun;
use esp4ml_runtime::ExecMode;

fn bench_fig8(c: &mut Criterion) {
    let models = TrainedModels::untrained();
    let app = CaseApp::DenoiserClassifier;
    let mut group = c.benchmark_group("fig8_dram");
    group.sample_size(10);
    for (label, mode) in [("no-p2p", ExecMode::Pipe), ("p2p", ExecMode::P2p)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let run = AppRun::execute(&app, &models, 4, mode).expect("run succeeds");
                run.metrics.dram_accesses
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
