//! Criterion bench for the Fig. 7 measurement path: the three execution
//! modes (base, pipe, p2p) of the Night-Vision + Classifier application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esp4ml::apps::{CaseApp, TrainedModels};
use esp4ml::experiments::AppRun;
use esp4ml_runtime::ExecMode;

fn bench_fig7_modes(c: &mut Criterion) {
    let models = TrainedModels::untrained();
    let app = CaseApp::NightVisionClassifier { nv: 2, cl: 2 };
    let mut group = c.benchmark_group("fig7_modes");
    group.sample_size(10);
    for mode in ExecMode::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &mode,
            |b, &mode| b.iter(|| AppRun::execute(&app, &models, 4, mode).expect("run succeeds")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7_modes);
criterion_main!(benches);
