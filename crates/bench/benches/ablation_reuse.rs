//! Ablation: the HLS4ML reuse factor. Sweeps R and benches the fixed-point
//! inference path, printing the latency/II/resource trade-off the knob
//! controls (DESIGN.md ablation 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esp4ml_hls4ml::{Hls4mlCompiler, Hls4mlConfig};
use esp4ml_nn::Sequential;

fn bench_reuse_sweep(c: &mut Criterion) {
    let model = Sequential::svhn_classifier();
    let mut group = c.benchmark_group("ablation_reuse");
    group.sample_size(20);
    for reuse in [16u64, 64, 256, 1024, 4096] {
        let nn =
            Hls4mlCompiler::compile(&model, &Hls4mlConfig::with_reuse(reuse)).expect("compiles");
        let est = nn.estimate();
        println!(
            "reuse={reuse:>5}: latency {:>6} cyc, II {:>5} cyc, {} (frames/s at 78 MHz: {:.0})",
            est.latency,
            est.initiation_interval,
            est.resources,
            78.0e6 / est.latency as f64,
        );
        let input = vec![0.1f32; 1024];
        group.bench_with_input(BenchmarkId::from_parameter(reuse), &nn, |b, nn| {
            b.iter(|| nn.infer(&input))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reuse_sweep);
criterion_main!(benches);
