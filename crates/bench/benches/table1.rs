//! Criterion bench for the Table I measurement path: the p2p execution of
//! each best-case application configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esp4ml::apps::TrainedModels;
use esp4ml::experiments::{AppRun, Table1};
use esp4ml_runtime::ExecMode;

fn bench_table1(c: &mut Criterion) {
    let models = TrainedModels::untrained();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for app in Table1::best_configs() {
        group.bench_with_input(BenchmarkId::from_parameter(app.label()), &app, |b, app| {
            b.iter(|| AppRun::execute(app, &models, 4, ExecMode::P2p).expect("run succeeds"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
