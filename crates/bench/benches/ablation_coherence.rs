//! Ablation: accelerator coherence models (DESIGN.md, §I of the paper).
//!
//! The paper positions p2p communication against "off-chip memory for
//! inter-accelerator communication, which is normally the most efficient
//! accelerator cache-coherence model" (LLC-coherent DMA, Giri et al.,
//! IEEE Micro 2018). This bench runs the same two-stage pipeline under
//! three memory organisations and prints the off-chip traffic and cycle
//! counts:
//!
//! * non-coherent DMA (every burst goes to DRAM),
//! * LLC-coherent DMA (bursts filtered by a last-level cache), and
//! * ESP4ML p2p (tile-to-tile, memory untouched by intermediates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esp4ml_mem::{CacheConfig, DramConfig};
use esp4ml_noc::Coord;
use esp4ml_runtime::{Dataflow, EspRuntime, ExecMode, RunSpec};
use esp4ml_soc::{ScaleKernel, Soc, SocBuilder};

#[derive(Clone, Copy, PartialEq)]
enum MemOrg {
    NonCoherent,
    LlcCoherent,
    P2p,
}

impl MemOrg {
    fn label(self) -> &'static str {
        match self {
            MemOrg::NonCoherent => "non-coherent",
            MemOrg::LlcCoherent => "llc-coherent",
            MemOrg::P2p => "p2p",
        }
    }
}

fn build_soc(org: MemOrg) -> Soc {
    let mut b = SocBuilder::new(3, 2).processor(Coord::new(0, 0));
    b = match org {
        MemOrg::LlcCoherent => b.memory_llc(
            Coord::new(1, 0),
            DramConfig::default(),
            CacheConfig::default(),
        ),
        _ => b.memory(Coord::new(1, 0)),
    };
    b.accelerator(
        Coord::new(0, 1),
        Box::new(ScaleKernel::new("a", 1024, 2).with_cycles_per_value(2)),
    )
    .accelerator(
        Coord::new(1, 1),
        Box::new(ScaleKernel::new("b", 1024, 3).with_cycles_per_value(2)),
    )
    .build()
    .expect("valid floorplan")
}

fn run(org: MemOrg, frames: u64) -> (u64, u64) {
    let soc = build_soc(org);
    let mut rt = EspRuntime::new(soc).expect("runtime boots");
    let df = Dataflow::linear(&[&["a"], &["b"]]);
    let buf = rt.prepare(&df, frames).expect("buffers fit");
    for f in 0..frames {
        rt.write_frame(&buf, f, &vec![f + 1; 1024]).expect("write");
    }
    let mode = if org == MemOrg::P2p {
        ExecMode::P2p
    } else {
        ExecMode::Pipe
    };
    let m = rt
        .run(&RunSpec::new(&df).mode(mode), &buf)
        .expect("run succeeds");
    (m.cycles, m.dram_accesses)
}

fn bench_coherence(c: &mut Criterion) {
    println!("two-stage pipeline, 8 frames of 1024 16-bit values:");
    for org in [MemOrg::NonCoherent, MemOrg::LlcCoherent, MemOrg::P2p] {
        let (cycles, dram) = run(org, 8);
        println!(
            "  {:<13}: {:>7} cycles, {:>6} off-chip word accesses",
            org.label(),
            cycles,
            dram
        );
    }
    let mut group = c.benchmark_group("ablation_coherence");
    group.sample_size(10);
    for org in [MemOrg::NonCoherent, MemOrg::LlcCoherent, MemOrg::P2p] {
        group.bench_with_input(BenchmarkId::from_parameter(org.label()), &org, |b, &org| {
            b.iter(|| run(org, 4))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coherence);
criterion_main!(benches);
