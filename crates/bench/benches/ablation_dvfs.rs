//! Ablation: per-tile DVFS (ESP's fine-grained frequency scaling, the
//! paper's reference [21]). In the Night-Vision-like two-stage pipeline
//! the consumer is much faster than the producer; halving the consumer's
//! datapath clock should cost (almost) no pipeline throughput — the DVFS
//! free-lunch the infrastructure exists to harvest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esp4ml_noc::Coord;
use esp4ml_soc::{AccelConfig, ScaleKernel, Soc, SocBuilder};

fn build() -> Soc {
    SocBuilder::new(3, 2)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0))
        // Slow producer (the NV-like stage)…
        .accelerator(
            Coord::new(0, 1),
            Box::new(ScaleKernel::new("slow", 1024, 2).with_cycles_per_value(8)),
        )
        // …feeding a fast consumer (the classifier-like stage).
        .accelerator(
            Coord::new(1, 1),
            Box::new(ScaleKernel::new("fast", 1024, 3).with_cycles_per_value(1)),
        )
        .build()
        .expect("valid floorplan")
}

fn run(consumer_divider: u64, frames: u64) -> u64 {
    let mut soc = build();
    let (p, c) = (Coord::new(0, 1), Coord::new(1, 1));
    for f in 0..frames {
        soc.dram_write_values(f * 256, &vec![1; 1024], 16)
            .expect("init");
    }
    for t in [p, c] {
        soc.map_contiguous(t, 0, 1 << 20).expect("map");
    }
    soc.configure_accel(p, &AccelConfig::dma_to_p2p(0, frames))
        .expect("cfg");
    soc.configure_accel(
        c,
        &AccelConfig::p2p_to_dma(vec![p], 100_000, frames).with_dvfs_divider(consumer_divider),
    )
    .expect("cfg");
    let start = soc.cycle();
    soc.start_accel(p).expect("start");
    soc.start_accel(c).expect("start");
    assert!(soc.run_until_idle(100_000_000).is_idle());
    soc.cycle() - start
}

fn bench_dvfs(c: &mut Criterion) {
    let full = run(1, 8);
    for divider in [2u64, 4, 8] {
        let scaled = run(divider, 8);
        println!(
            "consumer at f/{divider}: {scaled:>7} cycles vs {full:>7} at full speed \
             ({:+.1}% throughput cost)",
            100.0 * (scaled as f64 - full as f64) / full as f64
        );
    }
    let mut group = c.benchmark_group("ablation_dvfs");
    group.sample_size(10);
    for divider in [1u64, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("div{divider}")),
            &divider,
            |b, &d| b.iter(|| run(d, 4)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dvfs);
criterion_main!(benches);
