//! Ablation: input-PLM double buffering (the HLS dataflow ping-pong
//! buffer). The paper's accelerators overlap DMA with computation inside
//! the wrapper; this bench measures what that overlap buys on a DMA-bound
//! batch and verifies it composes with the p2p service.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esp4ml_noc::Coord;
use esp4ml_soc::{AccelConfig, ScaleKernel, Soc, SocBuilder};

fn build() -> Soc {
    SocBuilder::new(2, 2)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0))
        .accelerator(
            Coord::new(0, 1),
            Box::new(ScaleKernel::new("a", 1024, 2).with_cycles_per_value(1)),
        )
        .build()
        .expect("valid floorplan")
}

fn run(dbuf: bool, frames: u64) -> u64 {
    let mut soc = build();
    let accel = Coord::new(0, 1);
    for f in 0..frames {
        soc.dram_write_values(f * 256, &vec![3; 1024], 16)
            .expect("init");
    }
    soc.map_contiguous(accel, 0, 1 << 20).expect("map");
    let mut cfg = AccelConfig::dma_to_dma(0, 1 << 18, frames);
    if dbuf {
        cfg = cfg.with_double_buffer();
    }
    soc.configure_accel(accel, &cfg).expect("configure");
    let start = soc.cycle();
    soc.start_accel(accel).expect("start");
    assert!(soc.run_until_idle(100_000_000).is_idle());
    soc.cycle() - start
}

fn bench_dbuf(c: &mut Criterion) {
    let plain = run(false, 16);
    let dbuf = run(true, 16);
    println!(
        "16-frame batch: single-buffer {plain} cycles, double-buffer {dbuf} cycles \
         ({:.1}% saved)",
        100.0 * (plain - dbuf) as f64 / plain as f64
    );
    let mut group = c.benchmark_group("ablation_dbuf");
    group.sample_size(10);
    for (label, enabled) in [("single", false), ("double", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &enabled, |b, &e| {
            b.iter(|| run(e, 8))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dbuf);
criterion_main!(benches);
