//! Microbenchmarks of the NoC substrate: per-cycle simulation cost under
//! idle and loaded conditions, and end-to-end packet delivery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esp4ml_noc::{Coord, Mesh, MeshConfig, MsgKind, Packet, Plane};

fn bench_noc(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc");
    for size in [3usize, 5, 8] {
        group.bench_with_input(
            BenchmarkId::new("delivery", format!("{size}x{size}")),
            &size,
            |b, &size| {
                b.iter(|| {
                    let mut mesh = Mesh::new(MeshConfig::new(size, size)).expect("mesh");
                    let dst = Coord::new(size as u8 - 1, size as u8 - 1);
                    for y in 0..size as u8 {
                        mesh.inject(Packet::new(
                            Coord::new(0, y),
                            dst,
                            Plane::DmaRsp,
                            MsgKind::DmaData,
                            vec![0; 64],
                        ))
                        .expect("inject");
                    }
                    let mut delivered = 0;
                    while delivered < size {
                        mesh.tick();
                        while mesh.eject(dst, Plane::DmaRsp).is_some() {
                            delivered += 1;
                        }
                    }
                    mesh.cycle()
                })
            },
        );
    }
    group.bench_function("idle_tick_5x5", |b| {
        let mut mesh = Mesh::new(MeshConfig::new(5, 5)).expect("mesh");
        b.iter(|| mesh.tick());
    });
    group.finish();
}

criterion_group!(benches, bench_noc);
criterion_main!(benches);
