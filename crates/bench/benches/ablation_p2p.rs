//! Ablation: the receiver-initiated p2p service (DESIGN.md ablation 1).
//!
//! Compares the DMA-through-memory pipeline against the p2p pipeline on a
//! synthetic two-stage workload, printing the cycle and DRAM-access
//! deltas and benching both simulation paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esp4ml_noc::Coord;
use esp4ml_runtime::{Dataflow, EspRuntime, ExecMode, RunMetrics, RunSpec};
use esp4ml_soc::{ScaleKernel, SocBuilder};

fn run(mode: ExecMode, frames: u64) -> RunMetrics {
    let soc = SocBuilder::new(3, 2)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0))
        .accelerator(
            Coord::new(0, 1),
            Box::new(ScaleKernel::new("a", 1024, 2).with_cycles_per_value(2)),
        )
        .accelerator(
            Coord::new(1, 1),
            Box::new(ScaleKernel::new("b", 1024, 3).with_cycles_per_value(2)),
        )
        .build()
        .expect("valid floorplan");
    let mut rt = EspRuntime::new(soc).expect("runtime boots");
    let df = Dataflow::linear(&[&["a"], &["b"]]);
    let buf = rt.prepare(&df, frames).expect("buffers fit");
    for f in 0..frames {
        rt.write_frame(&buf, f, &vec![1; 1024]).expect("write");
    }
    rt.run(&RunSpec::new(&df).mode(mode), &buf)
        .expect("run succeeds")
}

fn bench_p2p_ablation(c: &mut Criterion) {
    for mode in [ExecMode::Pipe, ExecMode::P2p] {
        let m = run(mode, 8);
        println!(
            "{:<5}: {:>8} cycles, {:>6} DRAM accesses, {:>8} flit-hops for 8 frames",
            mode.label(),
            m.cycles,
            m.dram_accesses,
            m.noc_flit_hops
        );
    }
    let mut group = c.benchmark_group("ablation_p2p");
    group.sample_size(10);
    for mode in [ExecMode::Pipe, ExecMode::P2p] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &mode,
            |b, &mode| b.iter(|| run(mode, 4)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_p2p_ablation);
criterion_main!(benches);
