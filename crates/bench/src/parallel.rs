//! Parallel execution of experiment grids across OS threads.
//!
//! Every [`GridPoint`] of a figure/table is an independent simulation —
//! its own SoC, its own runtime, nothing shared but the (read-only)
//! trained models — so the harness can scatter points across a scoped
//! thread pool. Workers steal the next un-run point from a shared atomic
//! cursor; results land in index-addressed slots, so collection order is
//! the grid order regardless of which worker finished when, and the
//! assembled figure is bit-identical to a serial run.
//!
//! Tracing stays serial by design: a [`esp4ml::TraceSession`] interleaves
//! events from every run into one timeline, which only makes sense when
//! the runs execute one after another.

use crate::request::{Progress, ProgressSink};
use esp4ml::apps::TrainedModels;
use esp4ml::experiments::{AppRun, ExperimentError, GridPoint, PreparedApp};
use esp4ml::faults::FaultConfig;
use esp4ml_soc::SocEngine;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sensible worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every grid point under `engine` on up to `jobs` worker threads
/// and returns the runs **in grid order**.
///
/// `jobs <= 1` (or a single-point grid) runs serially on the calling
/// thread with no pool at all, so the serial path stays the trivially
/// auditable oracle.
///
/// With `sanitize` set, every point runs under the full runtime
/// invariant sanitizer ([`esp4ml_soc::SanitizerConfig::all`]); the first
/// violated invariant fails the grid with its typed diagnostics.
///
/// With `faults` set, every point installs the fault plan on its SoC
/// and arms the watchdog/retry/failover recovery layer
/// ([`GridPoint::run_faulted`]) — every worker injects the same plan,
/// so the grid stays deterministic.
///
/// With `fork_prefix` set, points sharing a config-prefix key
/// ([`GridPoint::prefix_key`]) are grouped: each group executes its
/// load/config phase once through a [`PreparedApp`] and forks the warm
/// snapshot across its modes. Forked runs are byte-identical to cold
/// starts (the snapshot contract), so results, figures and progress
/// snapshots do not change — only the wall clock does. Workers then
/// steal whole groups instead of single points.
///
/// With `progress` set, one cumulative [`Progress`] snapshot is
/// published per grid point **in grid order**, regardless of worker
/// scheduling: workers only publish the contiguous prefix of finished
/// slots, so the snapshot sequence is byte-identical to a serial run.
///
/// # Errors
///
/// The first (in grid order) point that failed to build or run, or whose
/// sanitizer found violations.
#[allow(clippy::too_many_arguments)] // mirrors the RunRequest field set
pub fn run_grid(
    points: &[GridPoint],
    models: &TrainedModels,
    frames: u64,
    engine: SocEngine,
    jobs: usize,
    sanitize: bool,
    faults: Option<&FaultConfig>,
    fork_prefix: bool,
    progress: Option<&dyn ProgressSink>,
) -> Result<Vec<AppRun>, ExperimentError> {
    let exec = |p: &GridPoint| {
        if sanitize {
            p.run_sanitized(models, frames, engine)
        } else if let Some(fc) = faults {
            p.run_faulted(models, frames, engine, fc)
        } else {
            p.run(models, frames, engine)
        }
    };
    let total = points.len() as u64;
    let publish = |state: &mut PublishState, run: &AppRun| {
        if let Some(sink) = progress {
            state.done += 1;
            state.frames += run.metrics.frames;
            state.cycles += run.metrics.cycles;
            sink.publish(&Progress {
                points_done: state.done,
                points_total: total,
                frames_done: state.frames,
                cycles: state.cycles,
                label: format!("{} {}", run.label, run.mode.label()),
            });
        }
    };
    let jobs = jobs.min(points.len());
    if !fork_prefix && jobs <= 1 {
        // The serial cold-start path stays the trivially auditable
        // oracle: no pool, no slots, first error short-circuits.
        let mut state = PublishState::default();
        let mut runs = Vec::with_capacity(points.len());
        for point in points {
            let run = exec(point)?;
            publish(&mut state, &run);
            runs.push(run);
        }
        return Ok(runs);
    }
    // Work units: single points when cold-starting, whole prefix groups
    // (grid indices, first-appearance order) when forking.
    let groups: Vec<Vec<usize>> = if fork_prefix {
        let mut keys: Vec<String> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let key = p.prefix_key();
            match keys.iter().position(|k| *k == key) {
                Some(g) => groups[g].push(i),
                None => {
                    keys.push(key);
                    groups.push(vec![i]);
                }
            }
        }
        groups
    } else {
        (0..points.len()).map(|i| vec![i]).collect()
    };
    let exec_group = |group: &[usize]| -> Vec<(usize, Result<AppRun, ExperimentError>)> {
        if !fork_prefix {
            return group.iter().map(|&i| (i, exec(&points[i]))).collect();
        }
        let first = &points[group[0]];
        let mut prepared = match PreparedApp::load(&first.app, models, frames, engine, sanitize) {
            Ok(p) => p,
            Err(e) => {
                // The shared prefix failed: the real error lands in the
                // group's first (lowest) slot — the one grid-order
                // collection surfaces — with placeholders behind it.
                let mut out = vec![(group[0], Err(e))];
                out.extend(group[1..].iter().map(|&i| {
                    let label = points[i].label();
                    let msg = format!("shared config prefix failed to load for {label}");
                    (i, Err(ExperimentError::Grid(msg)))
                }));
                return out;
            }
        };
        group
            .iter()
            .map(|&i| {
                let mode = points[i].mode;
                let result = match faults {
                    Some(fc) => prepared.run_faulted(mode, fc),
                    None => prepared.run(mode),
                };
                (i, result)
            })
            .collect()
    };
    let slots: Vec<Mutex<Option<Result<AppRun, ExperimentError>>>> =
        points.iter().map(|_| Mutex::new(None)).collect();
    // Publisher state shared by all workers: `next` is the first slot
    // not yet published. Whoever fills a slot advances the contiguous
    // finished prefix, so snapshots always come out in grid order.
    let publisher = Mutex::new(PublishState::default());
    let finish_group = |results: Vec<(usize, Result<AppRun, ExperimentError>)>| {
        for (i, result) in results {
            *slots[i].lock().expect("slot lock") = Some(result);
        }
        let mut state = publisher.lock().expect("publisher lock");
        while let Some(slot) = slots.get(state.next) {
            let filled = slot.lock().expect("slot lock");
            match filled.as_ref() {
                Some(Ok(run)) => publish(&mut state, run),
                // A failed point fails the whole grid; stop publishing
                // rather than skip past the error.
                Some(Err(_)) | None => break,
            }
            state.next += 1;
        }
    };
    let workers = jobs.min(groups.len()).max(1);
    if workers <= 1 {
        for group in &groups {
            finish_group(exec_group(group));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let g = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(group) = groups.get(g) else { break };
                    finish_group(exec_group(group));
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every group ran, so every slot is filled")
        })
        .collect()
}

/// Cumulative progress accumulator shared by the serial and parallel
/// paths of [`run_grid`].
#[derive(Default)]
struct PublishState {
    next: usize,
    done: u64,
    frames: u64,
    cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml::experiments::Fig8;
    use esp4ml_runtime::ExecMode;

    #[test]
    fn parallel_matches_serial_on_fig8_grid() {
        let models = TrainedModels::untrained();
        let grid = Fig8::grid();
        let serial = run_grid(
            &grid,
            &models,
            2,
            SocEngine::EventDriven,
            1,
            false,
            None,
            false,
            None,
        )
        .unwrap();
        let parallel = run_grid(
            &grid,
            &models,
            2,
            SocEngine::EventDriven,
            4,
            false,
            None,
            false,
            None,
        )
        .unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.mode, p.mode);
            assert_eq!(s.metrics, p.metrics, "{} {:?}", s.label, s.mode);
            assert_eq!(s.predictions, p.predictions);
        }
        let fig_s = Fig8::assemble(&serial).unwrap();
        let fig_p = Fig8::assemble(&parallel).unwrap();
        for (a, b) in fig_s.rows.iter().zip(&fig_p.rows) {
            assert_eq!(a.accesses_no_p2p, b.accesses_no_p2p);
            assert_eq!(a.accesses_p2p, b.accesses_p2p);
        }
    }

    /// Prefix-forked grids — serial and with groups scattered across
    /// workers — reproduce the cold-start oracle run for run.
    #[test]
    fn forked_grid_matches_cold_start_oracle() {
        let models = TrainedModels::untrained();
        let grid = Fig8::grid();
        let cold = run_grid(
            &grid,
            &models,
            2,
            SocEngine::EventDriven,
            1,
            false,
            None,
            false,
            None,
        )
        .unwrap();
        for jobs in [1, 4] {
            let forked = run_grid(
                &grid,
                &models,
                2,
                SocEngine::EventDriven,
                jobs,
                false,
                None,
                true,
                None,
            )
            .unwrap();
            assert_eq!(cold.len(), forked.len());
            for (c, f) in cold.iter().zip(&forked) {
                assert_eq!(c.label, f.label, "jobs={jobs}");
                assert_eq!(c.mode, f.mode);
                assert_eq!(c.metrics, f.metrics, "{} {:?} jobs={jobs}", c.label, c.mode);
                assert_eq!(c.predictions, f.predictions);
                assert_eq!(c.watts, f.watts);
            }
        }
    }

    #[test]
    fn grid_point_labels_are_stable() {
        let grid = Fig8::grid();
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().step_by(2).all(|p| p.mode == ExecMode::Pipe));
        assert!(grid
            .iter()
            .skip(1)
            .step_by(2)
            .all(|p| p.mode == ExecMode::P2p));
    }
}
