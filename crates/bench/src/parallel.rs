//! Parallel execution of experiment grids across OS threads.
//!
//! Every [`GridPoint`] of a figure/table is an independent simulation —
//! its own SoC, its own runtime, nothing shared but the (read-only)
//! trained models — so the harness can scatter points across a scoped
//! thread pool. Workers steal the next un-run point from a shared atomic
//! cursor; results land in index-addressed slots, so collection order is
//! the grid order regardless of which worker finished when, and the
//! assembled figure is bit-identical to a serial run.
//!
//! Tracing stays serial by design: a [`esp4ml::TraceSession`] interleaves
//! events from every run into one timeline, which only makes sense when
//! the runs execute one after another.

use crate::request::{Progress, ProgressSink};
use esp4ml::apps::TrainedModels;
use esp4ml::experiments::{AppRun, ExperimentError, GridPoint};
use esp4ml::faults::FaultConfig;
use esp4ml_soc::SocEngine;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sensible worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every grid point under `engine` on up to `jobs` worker threads
/// and returns the runs **in grid order**.
///
/// `jobs <= 1` (or a single-point grid) runs serially on the calling
/// thread with no pool at all, so the serial path stays the trivially
/// auditable oracle.
///
/// With `sanitize` set, every point runs under the full runtime
/// invariant sanitizer ([`esp4ml_soc::SanitizerConfig::all`]); the first
/// violated invariant fails the grid with its typed diagnostics.
///
/// With `faults` set, every point installs the fault plan on its SoC
/// and arms the watchdog/retry/failover recovery layer
/// ([`GridPoint::run_faulted`]) — every worker injects the same plan,
/// so the grid stays deterministic.
///
/// With `progress` set, one cumulative [`Progress`] snapshot is
/// published per grid point **in grid order**, regardless of worker
/// scheduling: workers only publish the contiguous prefix of finished
/// slots, so the snapshot sequence is byte-identical to a serial run.
///
/// # Errors
///
/// The first (in grid order) point that failed to build or run, or whose
/// sanitizer found violations.
#[allow(clippy::too_many_arguments)] // mirrors the RunRequest field set
pub fn run_grid(
    points: &[GridPoint],
    models: &TrainedModels,
    frames: u64,
    engine: SocEngine,
    jobs: usize,
    sanitize: bool,
    faults: Option<&FaultConfig>,
    progress: Option<&dyn ProgressSink>,
) -> Result<Vec<AppRun>, ExperimentError> {
    let exec = |p: &GridPoint| {
        if sanitize {
            p.run_sanitized(models, frames, engine)
        } else if let Some(fc) = faults {
            p.run_faulted(models, frames, engine, fc)
        } else {
            p.run(models, frames, engine)
        }
    };
    let total = points.len() as u64;
    let publish = |state: &mut PublishState, run: &AppRun| {
        if let Some(sink) = progress {
            state.done += 1;
            state.frames += run.metrics.frames;
            state.cycles += run.metrics.cycles;
            sink.publish(&Progress {
                points_done: state.done,
                points_total: total,
                frames_done: state.frames,
                cycles: state.cycles,
                label: format!("{} {}", run.label, run.mode.label()),
            });
        }
    };
    let jobs = jobs.min(points.len());
    if jobs <= 1 {
        let mut state = PublishState::default();
        let mut runs = Vec::with_capacity(points.len());
        for point in points {
            let run = exec(point)?;
            publish(&mut state, &run);
            runs.push(run);
        }
        return Ok(runs);
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<AppRun, ExperimentError>>>> =
        points.iter().map(|_| Mutex::new(None)).collect();
    // Publisher state shared by all workers: `next` is the first slot
    // not yet published. Whoever fills a slot advances the contiguous
    // finished prefix, so snapshots always come out in grid order.
    let publisher = Mutex::new(PublishState::default());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else { break };
                let result = exec(point);
                *slots[i].lock().expect("slot lock") = Some(result);
                let mut state = publisher.lock().expect("publisher lock");
                while let Some(slot) = slots.get(state.next) {
                    let filled = slot.lock().expect("slot lock");
                    match filled.as_ref() {
                        Some(Ok(run)) => publish(&mut state, run),
                        // A failed point fails the whole grid; stop
                        // publishing rather than skip past the error.
                        Some(Err(_)) | None => break,
                    }
                    state.next += 1;
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("scope joined every worker, so every slot is filled")
        })
        .collect()
}

/// Cumulative progress accumulator shared by the serial and parallel
/// paths of [`run_grid`].
#[derive(Default)]
struct PublishState {
    next: usize,
    done: u64,
    frames: u64,
    cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml::experiments::Fig8;
    use esp4ml_runtime::ExecMode;

    #[test]
    fn parallel_matches_serial_on_fig8_grid() {
        let models = TrainedModels::untrained();
        let grid = Fig8::grid();
        let serial = run_grid(
            &grid,
            &models,
            2,
            SocEngine::EventDriven,
            1,
            false,
            None,
            None,
        )
        .unwrap();
        let parallel = run_grid(
            &grid,
            &models,
            2,
            SocEngine::EventDriven,
            4,
            false,
            None,
            None,
        )
        .unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.mode, p.mode);
            assert_eq!(s.metrics, p.metrics, "{} {:?}", s.label, s.mode);
            assert_eq!(s.predictions, p.predictions);
        }
        let fig_s = Fig8::assemble(&serial).unwrap();
        let fig_p = Fig8::assemble(&parallel).unwrap();
        for (a, b) in fig_s.rows.iter().zip(&fig_p.rows) {
            assert_eq!(a.accesses_no_p2p, b.accesses_no_p2p);
            assert_eq!(a.accesses_p2p, b.accesses_p2p);
        }
    }

    #[test]
    fn grid_point_labels_are_stable() {
        let grid = Fig8::grid();
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().step_by(2).all(|p| p.mode == ExecMode::Pipe));
        assert!(grid
            .iter()
            .skip(1)
            .step_by(2)
            .all(|p| p.mode == ExecMode::P2p));
    }
}
