//! Text rendering of the paper's figures: log-scale horizontal bar charts
//! with baseline marker lines, so the harness output visually mirrors
//! Fig. 7.

use esp4ml::experiments::Fig7;

/// Renders a horizontal log-scale bar of `value` against `max`, `width`
/// characters wide, with `markers` (label, value) drawn as `|` ticks.
///
/// The scale starts one decade below the smallest positive value involved.
pub fn log_bar(value: f64, lo: f64, hi: f64, width: usize) -> String {
    if value <= 0.0 || hi <= lo {
        return String::new();
    }
    let pos = ((value.log10() - lo) / (hi - lo)).clamp(0.0, 1.0);
    let filled = (pos * width as f64).round() as usize;
    "█".repeat(filled)
}

/// Character position of a marker value on the same scale.
pub fn marker_pos(value: f64, lo: f64, hi: f64, width: usize) -> Option<usize> {
    if value <= 0.0 || hi <= lo {
        return None;
    }
    let pos = ((value.log10() - lo) / (hi - lo)).clamp(0.0, 1.0);
    Some((pos * width as f64).round() as usize)
}

/// Renders a Fig. 7 report as log-scale bar clusters with the i7 (`i`) and
/// Jetson (`j`) baseline ticks overlaid, mirroring the paper's figure.
pub fn render_fig7(fig: &Fig7) -> String {
    const WIDTH: usize = 56;
    let mut all: Vec<f64> = Vec::new();
    for c in &fig.clusters {
        all.push(c.i7_line);
        all.push(c.jetson_line);
        all.extend(c.bars.iter().map(|b| b.frames_per_joule));
    }
    let lo = all
        .iter()
        .copied()
        .filter(|&v| v > 0.0)
        .fold(f64::INFINITY, f64::min)
        .log10()
        .floor()
        - 0.2;
    let hi = all.iter().copied().fold(0.0f64, f64::max).log10().ceil();
    let mut out = String::new();
    for c in &fig.clusters {
        out.push_str(&format!("[{}]  (log scale, frames/J)\n", c.app));
        for bar in &c.bars {
            let mut line: Vec<char> = log_bar(bar.frames_per_joule, lo, hi, WIDTH)
                .chars()
                .collect();
            line.resize(WIDTH + 1, ' ');
            for (ch, v) in [('i', c.i7_line), ('j', c.jetson_line)] {
                if let Some(p) = marker_pos(v, lo, hi, WIDTH) {
                    line[p] = ch;
                }
            }
            let rendered: String = line.into_iter().collect();
            out.push_str(&format!(
                "  {:>10} {:>5} {rendered} {:.0}\n",
                bar.config, bar.mode, bar.frames_per_joule
            ));
        }
        out.push('\n');
    }
    out.push_str("  markers: i = Intel i7-8700K line, j = Jetson TX1 line\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_length_is_monotone_in_value() {
        let (lo, hi) = (0.0, 4.0);
        let short = log_bar(10.0, lo, hi, 40).chars().count();
        let long = log_bar(1000.0, lo, hi, 40).chars().count();
        assert!(long > short);
        assert!(long <= 40);
    }

    #[test]
    fn zero_or_negative_values_render_empty() {
        assert_eq!(log_bar(0.0, 0.0, 4.0, 40), "");
        assert_eq!(log_bar(-5.0, 0.0, 4.0, 40), "");
        assert_eq!(marker_pos(0.0, 0.0, 4.0, 40), None);
    }

    #[test]
    fn log_scale_compresses_decades_evenly() {
        let (lo, hi) = (0.0, 3.0);
        let a = log_bar(10.0, lo, hi, 60).chars().count();
        let b = log_bar(100.0, lo, hi, 60).chars().count();
        let c = log_bar(1000.0, lo, hi, 60).chars().count();
        assert_eq!(b - a, c - b, "equal decades must be equal widths");
    }

    #[test]
    fn marker_clamps_into_range() {
        assert_eq!(marker_pos(1e12, 0.0, 3.0, 40), Some(40));
        assert_eq!(marker_pos(1e-12, 0.0, 3.0, 40), Some(0));
    }
}
